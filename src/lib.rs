//! # ft-cache — fault-tolerant deep-learning cache with hash-ring load
//! balancing
//!
//! A full Rust reproduction of *"Fault-Tolerant Deep Learning Cache with
//! Hash Ring for Load Balancing in HPC Systems"* (SC'24): HVAC-style
//! distributed node-local NVMe caching for DL training data, extended
//! with timeout-based failure detection and two fault-tolerance designs —
//! PFS redirection (§IV-A) and elastic hash-ring recaching (§IV-B) — plus
//! every substrate needed to run and evaluate them on one machine.
//!
//! This crate is the umbrella: it re-exports the workspace members.
//!
//! | Crate | Role |
//! |---|---|
//! | [`hashring`] | placement: consistent hash ring + §IV-B alternatives |
//! | [`net`] | interconnect: mailbox RPC, deadlines, fault injection |
//! | [`wire`] | real TCP transport: framing, codec, pooled connections |
//! | [`storage`] | NVMe cache (LRU), PFS with read accounting, data mover |
//! | [`core`] | FT-Cache client/server/policies, threaded cluster |
//! | [`train`] | CosmoFlow-shaped workload + Horovod-elastic driver |
//! | [`sim`] | discrete-event simulator: Figures 5/6 at 64–1024 nodes |
//! | [`slurm`] | Frontier job-failure trace + Table I / Fig 1–2 analysis |
//! | [`chaos`] | seeded gray-failure campaigns with invariant checking |
//! | [`analysis`] | offline analyses: races, FSM checking, lints, linearizability |
//! | [`modelcheck`] | schedule exploration + linz checking over chaos campaigns |
//! | [`fleet`] | helpers behind the `ftc-server` / `ftc-client` binaries |
//!
//! ## Quickstart
//!
//! ```
//! use ft_cache::prelude::*;
//!
//! // A 4-node cluster running the paper's FT w/ NVMe design.
//! let cluster = Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).unwrap();
//! let paths = cluster.stage_dataset("train", 32, 128);
//! let client = cluster.client(0);
//!
//! for p in &paths { client.read(p).unwrap(); }   // epoch 1: caches fill
//! cluster.kill(NodeId(2));                        // a node dies
//! for p in &paths {
//!     let bytes = client.read(p).unwrap();        // training continues
//!     assert!(ft_cache::storage::verify_synth(p, &bytes));
//! }
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod fleet;
pub mod modelcheck;

pub use ftc_analysis as analysis;
pub use ftc_core as core;
pub use ftc_hashring as hashring;
pub use ftc_net as net;
pub use ftc_obs as obs;
pub use ftc_sim as sim;
pub use ftc_slurm as slurm;
pub use ftc_storage as storage;
pub use ftc_time as time;
pub use ftc_train as train;
pub use ftc_wire as wire;

/// The names most programs need.
pub mod prelude {
    pub use crate::chaos::{
        run_campaign, run_campaign_all_policies, run_campaign_sabotaged, run_campaign_traced,
        run_campaign_virtual, CampaignReport, ChaosPlan,
    };
    pub use ftc_core::{
        Cluster, ClusterConfig, FtConfig, FtPolicy, HvacClient, PlacementKind, ReadError, ReadVia,
    };
    pub use ftc_hashring::{HashRing, NodeId, Placement, DEFAULT_VNODES};
    pub use ftc_obs::{ObsHub, Phase as ObsPhase};
    pub use ftc_sim::{FaultEvent, SimCalibration, SimCluster, SimReport, SimWorkload};
    pub use ftc_storage::{synth_bytes, verify_synth};
    pub use ftc_time::{with_virtual, Clock, ClockHandle, VirtualClock};
    pub use ftc_train::{Dataset, FaultSpec, TrainConfig, TrainDriver, TrainReport};
}
