//! Chaos harness: seeded gray-failure campaigns with invariant checking.
//!
//! A campaign boots a real threaded [`Cluster`], samples a randomized
//! fault schedule from a seed ([`ChaosPlan::generate`]) — kills, revives,
//! flaky links, asymmetric partitions, degraded-but-alive nodes — applies
//! it between read passes, and checks four invariants:
//!
//! 1. **Integrity** — every completed read returns bytes byte-identical
//!    to the PFS ground truth (the synthetic content is self-describing).
//!    Under `NoFt`, aborting on a lossy fault is the *correct* outcome;
//!    any other failure is a violation.
//! 2. **Recache economy** — under `RingRecache`, server-mediated PFS
//!    fetches after the warm pass stay within the loss budget: at most
//!    one fetch per file whose owner was hit by a lossy or membership
//!    event (kill, revive, flaky link, partition).
//! 3. **Liveness** — no read ever exceeds the retry deadline budget by
//!    more than bounded slack: the client cannot livelock, whatever the
//!    fault pattern.
//! 4. **No false positives** — a node that is only *degraded* (served
//!    every request, with extra latency below the TTL) is never declared
//!    failed.
//!
//! The plan — and therefore the whole campaign and its verdict — is a
//! pure function of the seed, so `chaos --seed N` replays
//! byte-identically (measured latencies are wall-clock and vary). Every
//! campaign can also run on a [`ftc_time::VirtualClock`]
//! ([`run_campaign_virtual`]): the same real cluster, servers, movers and
//! recovery engine execute cooperatively in simulated time, so measured
//! latencies become deterministic too — the full rendered report
//! ([`CampaignReport::render`]) is then byte-identical across replays,
//! and a 256-node kill sweep finishes in wall milliseconds. The
//! kill schedule is additionally mirrored into a discrete-event
//! [`FaultPlan`] and cross-checked against [`SimCluster`]: the simulator
//! must agree on whether the job survives.
//!
//! Every campaign also harvests the cluster's observability hub
//! (`ftc-obs`): the degraded-window timeline yields per-kill detection
//! and recovery latencies in the report, and when any invariant fires
//! the report embeds a flight-recorder dump of the last fabric/client
//! events. [`run_campaign_sabotaged`] forces a violation on demand to
//! prove the dump path works.

use bytes::Bytes;
use ftc_core::{Cluster, ClusterConfig, FtPolicy, ReadError};
use ftc_hashring::NodeId;
use ftc_net::{OpRecord, TraceEventKind, TraceRecord};
use ftc_sim::{FaultEvent, FaultPlan, SimCalibration, SimCluster, SimWorkload};
use ftc_storage::synth_bytes;
use ftc_time::ClockHandle;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One fault action in a campaign schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Crash the node (silent; its cache contents are lost).
    Kill(NodeId),
    /// Crash whichever node currently owns the given (dead) node's key
    /// range — the recache push target. Resolved at apply time, after the
    /// ring has re-routed; a no-op until the named node has actually been
    /// declared failed by the observing client.
    KillSuccessorOf(NodeId),
    /// Repair and rejoin a crashed node (warm: its NVMe survived).
    Revive(NodeId),
    /// Duty-cycle loss on the node's ingress link: `up` deliveries ok,
    /// then `down` dropped, repeating.
    Flaky {
        /// Target node.
        node: NodeId,
        /// Deliveries that succeed per cycle.
        up: u32,
        /// Deliveries that drop per cycle.
        down: u32,
    },
    /// Remove the flaky rule from the node.
    ClearFlaky(NodeId),
    /// One-way partition: the client's requests never reach the node.
    PartitionToNode(NodeId),
    /// One-way partition: the node's replies never reach the client —
    /// the gray-failure direction (work done, answer lost).
    PartitionFromNode(NodeId),
    /// Remove every partition rule.
    HealAll,
    /// Serve everything, slowly: extra per-delivery latency strictly
    /// below the TTL. Must never lead to a failure declaration.
    Degrade {
        /// Target node.
        node: NodeId,
        /// Added one-way latency (below the detector TTL).
        extra: Duration,
    },
}

/// A fault action scheduled before a given read pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The action fires before this pass (0-based, after the warm pass).
    pub before_pass: u32,
    /// What happens.
    pub action: ChaosAction,
}

/// A complete seeded campaign schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed this plan (and everything downstream) derives from.
    pub seed: u64,
    /// Server nodes in the cluster.
    pub nodes: u32,
    /// Files staged on the PFS.
    pub files: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Read passes after the warm pass.
    pub passes: u32,
    /// The fault schedule, sorted by `before_pass`.
    pub events: Vec<ChaosEvent>,
    /// Nodes targeted exclusively by `Degrade` — invariant 4's subjects.
    pub degraded_only: Vec<NodeId>,
    /// A node no lossy event ever targets, so the ring never empties and
    /// fault-tolerant reads always have somewhere to land.
    pub clean_node: NodeId,
}

/// Deterministic SplitMix64 stream (no external RNG: the plan must be a
/// pure function of the seed).
struct Prng(u64);

impl Prng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Detector TTL used by every campaign (degrade latencies are sampled
/// strictly below this).
pub const CAMPAIGN_TTL: Duration = Duration::from_millis(15);

impl ChaosPlan {
    /// Sample a campaign schedule from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Prng(seed ^ 0xC0A5_F0F1_E5C4_A0E5);
        let nodes = 3 + rng.below(3) as u32; // 3..=5
        let files = 12 + rng.below(13) as usize; // 12..=24
        let passes = 2 + rng.below(2) as u32; // 2..=3

        // Reserve one clean node (never hit by anything lossy) and,
        // half the time, one degrade-only node.
        let clean_node = NodeId(rng.below(u64::from(nodes)) as u32);
        let degrade_node = if rng.below(2) == 0 {
            let candidates: Vec<u32> = (0..nodes).filter(|&n| NodeId(n) != clean_node).collect();
            Some(NodeId(
                candidates[rng.below(candidates.len() as u64) as usize],
            ))
        } else {
            None
        };
        let lossy_targets: Vec<NodeId> = (0..nodes)
            .map(NodeId)
            .filter(|&n| n != clean_node && Some(n) != degrade_node)
            .collect();

        let mut events = Vec::new();
        if let Some(d) = degrade_node {
            // Degradation from the very first faulted pass: 30–70% of TTL.
            let frac = 30 + rng.below(41);
            events.push(ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Degrade {
                    node: d,
                    extra: CAMPAIGN_TTL.mul_f64(frac as f64 / 100.0),
                },
            });
        }

        // Generate lossy events in chronological order so kill/revive
        // pairing stays consistent.
        let mut killed: HashSet<NodeId> = HashSet::new();
        for pass in 0..passes {
            let burst = rng.below(3); // 0..=2 events before this pass
            for _ in 0..burst {
                let target = lossy_targets[rng.below(lossy_targets.len() as u64) as usize];
                let action = match rng.below(6) {
                    0 | 1 => {
                        if killed.contains(&target) {
                            killed.remove(&target);
                            ChaosAction::Revive(target)
                        } else if killed.len() + 1 < lossy_targets.len().max(2) {
                            killed.insert(target);
                            ChaosAction::Kill(target)
                        } else {
                            ChaosAction::HealAll
                        }
                    }
                    2 => ChaosAction::Flaky {
                        node: target,
                        up: 1 + rng.below(3) as u32,
                        down: 1 + rng.below(2) as u32,
                    },
                    3 => ChaosAction::ClearFlaky(target),
                    4 => {
                        if rng.below(2) == 0 {
                            ChaosAction::PartitionToNode(target)
                        } else {
                            ChaosAction::PartitionFromNode(target)
                        }
                    }
                    _ => ChaosAction::HealAll,
                };
                events.push(ChaosEvent {
                    before_pass: pass,
                    action,
                });
            }
        }

        ChaosPlan {
            seed,
            nodes,
            files,
            file_size: 48,
            passes,
            events,
            degraded_only: degrade_node.into_iter().collect(),
            clean_node,
        }
    }

    /// True if the plan contains any event that can lose messages (and
    /// may therefore legitimately abort a `NoFt` job).
    pub fn has_lossy_events(&self) -> bool {
        self.events.iter().any(|e| {
            !matches!(
                e.action,
                ChaosAction::Degrade { .. } | ChaosAction::HealAll | ChaosAction::ClearFlaky(_)
            )
        })
    }

    /// The kill schedule mirrored into a DES [`FaultPlan`]: each node
    /// killed and never revived becomes a `FaultEvent` in the epoch after
    /// its pass (epoch 0 is the warm pass).
    pub fn mirror_fault_plan(&self) -> FaultPlan {
        let revived: HashSet<NodeId> = self
            .events
            .iter()
            .filter_map(|e| match e.action {
                ChaosAction::Revive(n) => Some(n),
                _ => None,
            })
            .collect();
        FaultPlan::new(
            self.events
                .iter()
                .filter_map(|e| match e.action {
                    ChaosAction::Kill(n) if !revived.contains(&n) => Some(FaultEvent {
                        epoch: e.before_pass + 1,
                        step: 0,
                        node: n,
                    }),
                    _ => None,
                })
                .collect(),
        )
    }

    /// Deterministic scenario: a node dies, and before its proactive
    /// recache can settle a *second, independent* node dies too. The
    /// engine must keep both jobs converging on the shrunken ring.
    pub fn scenario_failure_during_recache(seed: u64) -> Self {
        let mut plan = ChaosPlan::generate(seed);
        plan.nodes = 4;
        plan.files = 32;
        plan.passes = 3;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![
            ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Kill(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Kill(NodeId(2)),
            },
        ];
        plan
    }

    /// Deterministic scenario: a node dies, then the node that inherited
    /// its key range (the recache push target) dies as well — the
    /// double-failure case where every in-flight push must re-route.
    pub fn scenario_double_failure(seed: u64) -> Self {
        let mut plan = ChaosPlan::generate(seed);
        plan.nodes = 4;
        plan.files = 32;
        plan.passes = 3;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![
            ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Kill(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::KillSuccessorOf(NodeId(1)),
            },
        ];
        plan
    }

    /// Deterministic scenario: a node dies and rejoins (warm) while its
    /// recache may still be in flight — every stale push must be fenced
    /// by epoch, never double-served.
    pub fn scenario_revive_during_recache(seed: u64) -> Self {
        let mut plan = ChaosPlan::generate(seed);
        plan.nodes = 4;
        plan.files = 32;
        plan.passes = 3;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![
            ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Kill(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Revive(NodeId(1)),
            },
        ];
        plan
    }

    /// Deterministic shifting-intensity scenario for the adaptive
    /// controller: a quiet pass (no faults — the controller should hold
    /// the lazy posture), then a burst (a flaky link plus a kill — the
    /// failure-rate estimate spikes and the controller escalates), then a
    /// correlated kill of the node that inherited the dead range (the
    /// proactive posture earns its keep). Node 0 stays clean.
    pub fn scenario_shifting_intensity(seed: u64) -> Self {
        let mut plan = ChaosPlan::generate(seed);
        plan.nodes = 5;
        plan.files = 40;
        plan.passes = 3;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![
            // Pass 0 is quiet: no events at all.
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Flaky {
                    node: NodeId(3),
                    up: 1,
                    down: 2,
                },
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Kill(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 2,
                action: ChaosAction::ClearFlaky(NodeId(3)),
            },
            ChaosEvent {
                before_pass: 2,
                action: ChaosAction::KillSuccessorOf(NodeId(1)),
            },
        ];
        plan
    }

    /// Deterministic cascading-overload scenario for the overload armor:
    /// a warm pass, then a kill right before pass [`SURGE_PASS`] — so the
    /// recache burst from the lost range lands exactly when the campaign
    /// runner fires its open-loop client surge (armed via
    /// [`CampaignOptions::overload`]). The surviving nodes absorb
    /// failover traffic, recache pushes and the surge at once: admission
    /// control must shed rather than stall, the armored client must
    /// degrade shed reads to the PFS rather than fail them, and under
    /// [`RecoveryMode::Adaptive`] the controller must enter and then
    /// exit the brownout posture. Node 0 stays clean.
    pub fn scenario_cascading_overload(seed: u64) -> Self {
        let mut plan = ChaosPlan::generate(seed);
        plan.nodes = 4;
        plan.files = 32;
        plan.passes = 3;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![ChaosEvent {
            before_pass: SURGE_PASS,
            action: ChaosAction::Kill(NodeId(1)),
        }];
        plan
    }

    /// Deterministic large-ring sweep for virtual-time scaling runs:
    /// `nodes` servers, `files` staged keys, and a seed-chosen burst of
    /// permanent kills (one per 32 nodes, clamped to 1..=8) spread over
    /// two post-warm passes. Node 0 stays clean so the ring never
    /// empties. Meant for [`run_campaign_virtual`], where a 256-node
    /// sweep — real servers, real detector, real recache — finishes in
    /// wall milliseconds.
    ///
    /// # Panics
    /// If `nodes < 2` (there must be a clean node and a victim).
    pub fn scenario_scale_sweep(seed: u64, nodes: u32, files: usize) -> Self {
        assert!(nodes >= 2, "scale sweep needs at least 2 nodes");
        let mut rng = Prng(seed ^ 0x5CA1_AB1E_0F01_D5EE);
        let kills = (nodes / 32).clamp(1, 8) as usize;
        let mut victims: Vec<NodeId> = Vec::with_capacity(kills);
        while victims.len() < kills {
            let v = NodeId(1 + rng.below(u64::from(nodes - 1)) as u32);
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        ChaosPlan {
            seed,
            nodes,
            files,
            file_size: 48,
            passes: 2,
            events: victims
                .iter()
                .enumerate()
                .map(|(i, &v)| ChaosEvent {
                    before_pass: (i % 2) as u32,
                    action: ChaosAction::Kill(v),
                })
                .collect(),
            degraded_only: Vec::new(),
            clean_node: NodeId(0),
        }
    }

    /// One-line plan summary (stable across replays of the same seed).
    pub fn summary(&self) -> String {
        format!(
            "nodes={} files={} passes={} events={} degraded={} clean={}",
            self.nodes,
            self.files,
            self.passes,
            self.events.len(),
            self.degraded_only.len(),
            self.clean_node
        )
    }
}

/// How lost keys get back into the cache tier during a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Seed behavior: a lost key re-homes only when a foreground read
    /// touches it (demand recache).
    #[default]
    Lazy,
    /// A [`ftc_core::RecoveryEngine`] on the client pushes the dead
    /// node's keys to their new owners ahead of demand, parks hints for
    /// unreachable replicas, and reconciles warm rejoins.
    Proactive,
    /// A [`ftc_core::PolicyController`] governs the recovery engine at
    /// runtime: lazy while the failure-rate estimate is quiet, escalating
    /// to proactive recache + replication under bursts, every switch
    /// epoch-fenced.
    Adaptive,
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryMode::Lazy => write!(f, "lazy"),
            RecoveryMode::Proactive => write!(f, "proactive"),
            RecoveryMode::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// Knobs for one campaign run beyond policy and plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Lazy (seed) or proactive (recovery engine) recaching.
    pub recovery: RecoveryMode,
    /// Enable vector-clock tracing on the fabric.
    pub trace: bool,
    /// Zero the recache-economy budget so invariant 2 must fire
    /// (self-test of the violation/dump path).
    pub sabotage_economy: bool,
    /// Starve the recovery engine's token bucket (rate 0, burst 0) so the
    /// quiescence invariant must fire. Implies `Proactive`.
    pub sabotage_recovery: bool,
    /// Override the static replication factor (`None` keeps the policy
    /// default). Ignored under [`RecoveryMode::Adaptive`], where the
    /// controller owns the live RF.
    pub replication: Option<u32>,
    /// Force the policy controller to attempt the opposite posture every
    /// tick ([`RecoveryMode::Adaptive`] only): the hysteresis/cooldown
    /// must suppress the oscillation and count it, which the
    /// `--sabotage-flap` self-test asserts.
    pub sabotage_flap: bool,
    /// Record a per-key operation history on the fabric (client reads,
    /// server-side value landings, ring-epoch bumps) for offline
    /// linearizability checking (`ftc_analysis::linz`). The staged
    /// dataset is seeded as t=0 writes so warm reads have something to
    /// linearize against.
    pub history: bool,
    /// Arm the overload pipeline end to end — deadline-aware server
    /// admission with a deliberately tight foreground queue, the full
    /// client armor (breaker / retry budget / hedging), and brownout
    /// thresholds on the adaptive controller — then fire an open-loop
    /// multi-reader surge before pass [`SURGE_PASS`]'s reads. Three more
    /// invariants join the campaign: the goodput floor, shed accounting
    /// (client-observed sheds bounded by server sheds, and no
    /// shedding-but-alive node ever declared failed), and — under
    /// [`RecoveryMode::Adaptive`] — the brownout lifecycle (entered
    /// under the surge, exited once it clears). Ignored under `NoFt`
    /// (no fallback to degrade to).
    pub overload: bool,
    /// Make the client misclassify typed `Overloaded` replies as
    /// detector evidence — the exact bug the typed shed reply exists to
    /// prevent — so the shed-false-positive invariant must fire (and
    /// dump the flight recorder). Implies `overload`.
    pub sabotage_shed: bool,
    /// Fire a single-flight duplicate storm at every pass whose events
    /// include a kill: [`DUP_READERS`] tasks sharing the client read the
    /// about-to-be-orphaned keys in the same order, spawned *before* the
    /// kill lands so the flights they share are open when the ring
    /// rewires underneath them. Three invariants join the campaign: every storm read
    /// returns ground truth (a follower can never accept a stale-epoch
    /// value — integrity catches it, and with [`CampaignOptions::history`]
    /// the linearizability checker sees the coalesced reads too), every
    /// storm read resolves exactly once (leader, coalesced accept, or
    /// independent stale retry — the counters must conserve), and the
    /// storm actually coalesced (a storm the layer never saw proves
    /// nothing). Ignored under `NoFt` (a kill legitimately fails its
    /// reads) and under `overload` (which pins coalescing off so the
    /// admission queue sees real duplicate load).
    pub dup_storm: bool,
}

/// Result of running one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The plan's seed.
    pub seed: u64,
    /// Policy exercised.
    pub policy: FtPolicy,
    /// Reads attempted (warm pass included).
    pub reads_attempted: u64,
    /// True when a `NoFt` campaign aborted on a lossy fault (expected).
    pub aborted: bool,
    /// Invariant violations; empty means the campaign passed.
    pub violations: Vec<String>,
    /// Degraded-window incidents stamped during the campaign, one per
    /// kill (plus any client-observed failures the injector never
    /// announced). Each carries kill → declare → first-recached-hit
    /// offsets, so per-kill detection and recovery latencies fall out.
    pub incidents: Vec<ftc_obs::Incident>,
    /// Flight-recorder dump captured at campaign end when any invariant
    /// fired — the last ~1k fabric/client events leading up to the
    /// violation. `None` for passing campaigns.
    pub flight_dump: Option<String>,
    /// How the campaign recovered lost keys.
    pub recovery_mode: RecoveryMode,
    /// Recovery-engine counters at campaign end (`Proactive` only).
    pub recovery: Option<ftc_core::RecoveryStatsSnapshot>,
    /// Nearest-rank p99 of warm-pass (pre-fault) read latency.
    pub warm_read_p99: Option<Duration>,
    /// Nearest-rank p99 of read latency across the faulted passes.
    pub faulted_read_p99: Option<Duration>,
    /// Policy switches the controller installed ([`RecoveryMode::Adaptive`]
    /// only; the silent boot install does not count).
    pub policy_switches: u64,
    /// Posture flips suppressed by hysteresis/cooldown (`Adaptive` only).
    pub policy_flaps_suppressed: u64,
    /// Reads attributed to a retired policy epoch, from the trace scan
    /// (virtual traced campaigns only; always a violation when nonzero).
    pub retired_policy_reads: u64,
    /// Overload-armor counters ([`CampaignOptions::overload`] only).
    pub overload: Option<OverloadStats>,
}

/// Overload-armor counters harvested at campaign end, present only when
/// [`CampaignOptions::overload`] armed the pipeline. Surge reads are
/// tracked here, separate from [`CampaignReport::reads_attempted`] (which
/// keeps its pre-armor meaning: the sequential pass reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Open-loop surge reads issued.
    pub surge_reads: u64,
    /// Surge reads that completed with ground-truth bytes.
    pub surge_ok: u64,
    /// Server-side sheds at queue admission (foreground queue full).
    pub shed_capacity: u64,
    /// Server-side sheds at dequeue (deadline already hopeless).
    pub shed_deadline: u64,
    /// Typed `Overloaded` replies the client observed.
    pub observed: u64,
    /// Reads degraded to the direct PFS path by a shed or open breaker.
    pub shed_pfs_fallbacks: u64,
    /// Hedged reads launched (primary past its p99 delay).
    pub hedges_launched: u64,
    /// Hedges whose second-owner read supplied the answer.
    pub hedges_won: u64,
    /// Reads short-circuited by an open circuit breaker (no RPC sent).
    pub breaker_short_circuits: u64,
    /// Retries denied by the token budget.
    pub budget_denied: u64,
    /// Brownout postures entered ([`RecoveryMode::Adaptive`] only).
    pub brownout_entries: u64,
    /// Brownout postures exited.
    pub brownout_exits: u64,
}

impl CampaignReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-kill detection latencies (kill → declare) observed this
    /// campaign, in incident order.
    pub fn detection_latencies(&self) -> Vec<Duration> {
        self.incidents
            .iter()
            .filter_map(ftc_obs::Incident::detection_latency)
            .collect()
    }

    /// Per-kill recovery latencies (kill → first recached hit) observed
    /// this campaign, in incident order.
    pub fn recovery_latencies(&self) -> Vec<Duration> {
        self.incidents
            .iter()
            .filter_map(ftc_obs::Incident::recovery_latency)
            .collect()
    }

    /// Per-kill quiesce latencies (kill → recovery engine finished the
    /// node's recache job), in incident order. Empty under `Lazy`.
    pub fn quiesce_latencies(&self) -> Vec<Duration> {
        self.incidents
            .iter()
            .filter_map(ftc_obs::Incident::quiesce_latency)
            .collect()
    }

    /// Nearest-rank p99 of the degraded windows (kill → first recached
    /// hit) this campaign; `None` when no kill completed a window. The
    /// adaptive-vs-static comparison ranks contenders on this.
    pub fn degraded_window_p99(&self) -> Option<Duration> {
        percentile_99(&self.recovery_latencies())
    }

    /// Full rendering for replay diffing: the verdict line, read/abort
    /// counters, per-kill window latencies, quiesce latencies, read p99s
    /// and recovery-engine counters. In wall-clock campaigns the latency
    /// lines vary run to run; under [`run_campaign_virtual`] the whole
    /// string is a pure function of the seed, so CI replays a seed twice
    /// and diffs this byte-for-byte.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let ms = |d: Duration| format!("{:.3}ms", d.as_secs_f64() * 1e3);
        let opt_ms = |d: Option<Duration>| d.map_or_else(|| "-".to_owned(), ms);
        let mut out = String::new();
        let _ = writeln!(out, "{self}");
        let _ = writeln!(
            out,
            "reads_attempted={} aborted={} incidents={}",
            self.reads_attempted,
            self.aborted,
            self.incidents.len()
        );
        for line in self.latency_summary() {
            let _ = writeln!(out, "window: {line}");
        }
        for q in self.quiesce_latencies() {
            let _ = writeln!(out, "quiesce: {}", ms(q));
        }
        let _ = writeln!(
            out,
            "warm_p99={} faulted_p99={}",
            opt_ms(self.warm_read_p99),
            opt_ms(self.faulted_read_p99)
        );
        if self.recovery_mode == RecoveryMode::Adaptive {
            let _ = writeln!(
                out,
                "policy: switches={} flaps_suppressed={} retired_reads={} policy_fenced={}",
                self.policy_switches,
                self.policy_flaps_suppressed,
                self.retired_policy_reads,
                self.recovery.as_ref().map_or(0, |r| r.policy_fenced)
            );
        }
        if let Some(o) = &self.overload {
            let _ = writeln!(
                out,
                "overload: surge={}/{} sheds={}+{} observed={} fallbacks={} hedges={}/{} \
                 breaker={} budget_denied={} brownout={}/{}",
                o.surge_ok,
                o.surge_reads,
                o.shed_capacity,
                o.shed_deadline,
                o.observed,
                o.shed_pfs_fallbacks,
                o.hedges_won,
                o.hedges_launched,
                o.breaker_short_circuits,
                o.budget_denied,
                o.brownout_entries,
                o.brownout_exits
            );
        }
        if let Some(rs) = &self.recovery {
            let _ = writeln!(
                out,
                "recovery: started={} quiesced={} pushed={} throttled={} skipped={} \
                 failed={} stale_rejected={} hints_parked={} hints_drained={} \
                 probes={} rejoins={}",
                rs.recoveries_started,
                rs.recoveries_quiesced,
                rs.recache_pushed,
                rs.recache_throttled,
                rs.recache_skipped,
                rs.recache_failed,
                rs.stale_epoch_rejected,
                rs.hints_parked,
                rs.hints_drained,
                rs.probes_sent,
                rs.rejoins_detected
            );
        }
        out
    }

    /// Per-kill latency lines (`n3 det=12.4ms rec=31.0ms`), one per
    /// incident anchored by an injected kill. Empty when no kill fired.
    /// Kept out of [`fmt::Display`] so the verdict line stays a pure
    /// function of the seed; latencies are wall-clock measurements.
    pub fn latency_summary(&self) -> Vec<String> {
        self.incidents
            .iter()
            .filter(|i| i.stamp(ftc_obs::Phase::Kill).is_some())
            .map(|i| {
                let ms = |d: Option<Duration>| match d {
                    Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1e3),
                    None => "-".to_owned(),
                };
                format!(
                    "n{} det={} rec={}",
                    i.node,
                    ms(i.detection_latency()),
                    ms(i.recovery_latency())
                )
            })
            .collect()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} policy={:?} recovery={} -> {}",
            self.seed,
            self.policy,
            self.recovery_mode,
            if self.passed() { "PASS" } else { "FAIL" }
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// Wall-clock slack allowed on top of the retry deadline budget before a
/// read counts as livelocked (scheduler noise, final TTL, PFS read).
const LIVELOCK_SLACK: Duration = Duration::from_secs(2);

/// Floor for the foreground-starvation bound (invariant 7): recovery-era
/// read p99 may not exceed `max(10 × warm p99, this)`. The floor absorbs
/// detection stalls (a couple of TTLs plus retry backoff) that dominate
/// when the warm p99 is microseconds.
const STARVATION_FLOOR: Duration = Duration::from_millis(300);

/// How long a proactive campaign waits for the engine to quiesce before
/// declaring the quiescence invariant violated.
const QUIESCE_DEADLINE: Duration = Duration::from_secs(3);

/// The pass whose reads the open-loop surge precedes in an overload
/// campaign ([`CampaignOptions::overload`]); overload plans need at least
/// `SURGE_PASS + 1` post-warm passes.
pub const SURGE_PASS: u32 = 1;

/// Concurrent open-loop readers in the surge. They share one client and
/// read every path in the same order, convoying on one owner at a time so
/// the tight foreground admission queue actually sheds.
const SURGE_READERS: usize = 6;

/// Goodput floor (percent): the fraction of surge reads that must
/// complete with ground-truth bytes. The armor degrades shed reads to the
/// PFS instead of failing them, so an armored cluster holds 100%; any
/// read the surge loses outright is a real bug.
const GOODPUT_FLOOR_PCT: u64 = 99;

/// Concurrent duplicate readers in the single-flight storm
/// ([`CampaignOptions::dup_storm`]). They share one client and read the
/// doomed keys in the same order, so flights overlap on every key — the
/// shape the coalescing layer exists for.
const DUP_READERS: usize = 3;

/// Rounds each storm reader makes over the doomed keys: enough that
/// flights are still open when the kill fires, with later rounds
/// exercising fresh-epoch accepts against the rewired ring.
const DUP_ROUNDS: usize = 3;

/// How long the campaign waits after the last pass for the brownout
/// posture to decay back out once the surge pressure is gone (virtual
/// time in CI, so the wait is free).
const BROWNOUT_EXIT_DEADLINE: Duration = Duration::from_secs(5);

/// Nearest-rank p99 of a latency sample; `None` on an empty sample.
fn percentile_99(lats: &[Duration]) -> Option<Duration> {
    if lats.is_empty() {
        return None;
    }
    let mut v = lats.to_vec();
    v.sort_unstable();
    Some(v[(v.len() * 99 / 100).min(v.len() - 1)])
}

/// Controller tuning scaled to campaign time: millisecond ticks, a
/// cooldown of a few ticks, and thresholds reachable from a handful of
/// detector events, so the posture actually moves within a campaign that
/// lasts tens of virtual milliseconds. Decision presets (quiet/burst)
/// stay at the controller defaults.
fn campaign_controller_config(sabotage_flap: bool, overload: bool) -> ftc_core::ControllerConfig {
    let mut cc = ftc_core::ControllerConfig {
        tick: Duration::from_millis(5),
        cooldown: Duration::from_millis(60),
        decay: Duration::from_millis(300),
        prior_weight: 0.05,
        escalate: 2.0,
        deescalate: 0.5,
        sabotage_flap,
        ..Default::default()
    };
    if overload {
        // Brownout thresholds scaled to the surge: a convoying
        // six-reader surge sheds tens of reads within a few virtual
        // milliseconds (rate far above 50/s), and once it clears the
        // shed estimator decays below 5/s within about a virtual second
        // — comfortably inside BROWNOUT_EXIT_DEADLINE.
        cc.shed_enter = 50.0;
        cc.shed_exit = 5.0;
    }
    cc
}

/// Scan a trace for reads attributed to a policy epoch the controller had
/// already retired *at recording time* (per actor, in log order). Sound
/// only on the virtual clock: the cooperative driver makes epoch capture
/// and trace recording atomic, so any stale attribution is a real
/// fencing failure, not scheduling noise.
fn count_retired_policy_reads(log: &[TraceRecord]) -> u64 {
    let mut current: HashMap<u32, u64> = HashMap::new();
    let mut stale = 0u64;
    for r in log {
        match &r.kind {
            TraceEventKind::PolicyChange { new_epoch, .. } => {
                let e = current.entry(r.actor.0).or_insert(0);
                *e = (*e).max(*new_epoch);
            }
            TraceEventKind::PolicyRead { policy_epoch, .. }
                if *policy_epoch < current.get(&r.actor.0).copied().unwrap_or(0) =>
            {
                stale += 1;
            }
            _ => {}
        }
    }
    stale
}

/// Run one campaign of `plan` under `policy` on a real threaded cluster,
/// checking all four invariants (lazy recovery, no tracing).
pub fn run_campaign(policy: FtPolicy, plan: &ChaosPlan) -> CampaignReport {
    run_campaign_with(policy, plan, CampaignOptions::default()).0
}

/// Like [`run_campaign`], but with the recache-economy budget forced to
/// zero: any post-warm server-mediated PFS fetch then counts as a
/// violation. Under `RingRecache` with at least one kill in the plan the
/// violation is certain (the dead node's keys must refetch), so this is
/// the deterministic self-test that the flight-recorder dump path works
/// end to end — the returned report carries `flight_dump`.
pub fn run_campaign_sabotaged(policy: FtPolicy, plan: &ChaosPlan) -> CampaignReport {
    run_campaign_with(
        policy,
        plan,
        CampaignOptions {
            sabotage_economy: true,
            ..Default::default()
        },
    )
    .0
}

/// Self-test of the quiescence invariant: the recovery engine runs with a
/// starved token bucket (rate 0, burst 0), so a plan with at least one
/// kill leaves its recache job queued forever and the "recovery
/// eventually quiesces" invariant must fire — proving the new invariants
/// can actually fail.
pub fn run_campaign_recovery_sabotaged(policy: FtPolicy, plan: &ChaosPlan) -> CampaignReport {
    run_campaign_with(
        policy,
        plan,
        CampaignOptions {
            recovery: RecoveryMode::Proactive,
            sabotage_recovery: true,
            ..Default::default()
        },
    )
    .0
}

/// Like [`run_campaign`], optionally with vector-clock tracing enabled on
/// the cluster fabric. When `trace` is true the returned log carries every
/// message leg and shared-state transition of the campaign, ready for
/// offline happens-before analysis (`ftc-analysis`).
pub fn run_campaign_traced(
    policy: FtPolicy,
    plan: &ChaosPlan,
    trace: bool,
) -> (CampaignReport, Option<Vec<TraceRecord>>) {
    run_campaign_with(
        policy,
        plan,
        CampaignOptions {
            trace,
            ..Default::default()
        },
    )
}

/// Run one campaign with full control over recovery mode, tracing and
/// sabotage. Under [`RecoveryMode::Proactive`] three further invariants
/// join the four documented on the module:
///
/// 5. **No lost key served stale** — after the engine quiesces, a
///    verification sweep over every staged key must return ground-truth
///    bytes (stale recovery traffic must have been fenced, not served).
/// 6. **Recovery eventually quiesces** — the engine drains its recache
///    and rejoin queues within [`QUIESCE_DEADLINE`] of the last pass.
/// 7. **Foreground reads never starve** — read p99 across the faulted
///    passes stays within `max(10 × warm p99, STARVATION_FLOOR)`; the
///    background recache must not crowd out the training job.
pub fn run_campaign_with(
    policy: FtPolicy,
    plan: &ChaosPlan,
    opts: CampaignOptions,
) -> (CampaignReport, Option<Vec<TraceRecord>>) {
    let (report, trace, _) = run_campaign_on(policy, plan, opts, ClockHandle::wall());
    (report, trace)
}

/// Run one campaign entirely in virtual time: the same real threaded
/// stack boots on a [`ftc_time::VirtualClock`] inside a cooperative
/// driver, so every sleep, timeout, backoff and latency stamp advances
/// simulated time instead of burning wall time. Same seed ⇒ the full
/// rendered report ([`CampaignReport::render`]) is byte-identical.
pub fn run_campaign_virtual(
    policy: FtPolicy,
    plan: &ChaosPlan,
    opts: CampaignOptions,
) -> CampaignReport {
    ftc_time::with_virtual(|clock| run_campaign_on(policy, plan, opts, clock).0)
}

/// [`run_campaign_on`] under a pluggable schedule strategy: the campaign
/// runs inside [`ftc_time::with_virtual_sched`], so every point where
/// more than one task is runnable is a recorded choice point. Returns
/// the report, the recorded [`ScheduleTrace`] (replayable via
/// [`ftc_time::ForcedPrefix::replay`]), and — when `opts` asked for them
/// — the vector-clock trace and op history.
pub fn run_campaign_explored(
    policy: FtPolicy,
    plan: &ChaosPlan,
    opts: CampaignOptions,
    strategy: Box<dyn ftc_time::Scheduler>,
) -> (
    CampaignReport,
    ftc_time::ScheduleTrace,
    Option<Vec<TraceRecord>>,
    Option<Vec<OpRecord>>,
) {
    let ((report, trace, history), sched) =
        ftc_time::with_virtual_sched(strategy, |clock| run_campaign_on(policy, plan, opts, clock));
    (report, sched, trace, history)
}

/// Run one campaign in virtual time with history recording on and hand
/// back the op history alongside the report — the unit `chaos
/// --check-linz` iterates.
pub fn run_campaign_history(
    policy: FtPolicy,
    plan: &ChaosPlan,
    opts: CampaignOptions,
) -> (CampaignReport, Vec<OpRecord>) {
    let opts = CampaignOptions {
        history: true,
        ..opts
    };
    let (report, _, history) =
        ftc_time::with_virtual(|clock| run_campaign_on(policy, plan, opts, clock));
    (report, history.unwrap_or_default())
}

/// [`run_campaign_with`] on an injected clock: the cluster, its movers,
/// the client's retry/backoff/detector and the recovery engine all share
/// it, so the campaign runs identically on wall or virtual time.
pub fn run_campaign_on(
    policy: FtPolicy,
    plan: &ChaosPlan,
    opts: CampaignOptions,
    clock: ClockHandle,
) -> (
    CampaignReport,
    Option<Vec<TraceRecord>>,
    Option<Vec<OpRecord>>,
) {
    let mut cfg = ClusterConfig::small(plan.nodes, policy);
    cfg.ft.detector.ttl = CAMPAIGN_TTL;
    cfg.ft.detector.timeout_limit = 2;
    cfg.ft.detector.suspicion_window = Duration::from_secs(2);
    cfg.ft.retry.max_attempts = 16;
    cfg.ft.retry.base_backoff = Duration::from_micros(200);
    cfg.ft.retry.max_backoff = Duration::from_millis(3);
    cfg.ft.retry.deadline_budget = Duration::from_secs(2);
    if let Some(rf) = opts.replication {
        cfg.ft.replication = rf;
    }
    // Overload armor: deadline-aware admission on every server with a
    // deliberately tight foreground queue (so the convoying surge
    // actually sheds), plus the full client armor. Everything stays at
    // the disarmed defaults unless asked for, so pre-armor campaigns are
    // byte-identical. NoFt is exempt: it has no fallback to degrade to.
    let overload_on = (opts.overload || opts.sabotage_shed) && policy != FtPolicy::NoFt;
    if overload_on {
        cfg.admission = ftc_core::AdmissionConfig {
            queue_capacity: 2,
            ..ftc_core::AdmissionConfig::armored(CAMPAIGN_TTL)
        };
        cfg.ft.overload = ftc_core::OverloadConfig::armored();
        cfg.ft.overload.shed_counts_as_failure = opts.sabotage_shed;
        // The surge readers share one client and convoy on one key at a
        // time — exactly the duplicate storm single-flight exists to
        // absorb. Coalescing would collapse the surge into one RPC per
        // key and the admission queue would never shed, so overload
        // campaigns pin it off: the armor must be exercised by real
        // duplicate load, not rescued by the coalescer upstream of it.
        cfg.ft.coalesce = false;
    }
    // The duplicate storm needs the coalescer in the path (overload pins
    // it off) and reads that must succeed through a kill (NoFt's won't).
    let storm_on = opts.dup_storm && policy != FtPolicy::NoFt && !overload_on;
    cfg.seed = plan.seed;

    let cluster = match Cluster::start_with_clock(cfg.clone(), clock.clone()) {
        Ok(c) => c,
        Err(e) => {
            // A cluster that cannot boot is a failed campaign, not a
            // panic: record it so sweeps keep their exit-code contract.
            return (
                CampaignReport {
                    seed: plan.seed,
                    policy,
                    reads_attempted: 0,
                    aborted: false,
                    violations: vec![format!("boot: cluster failed to start: {e}")],
                    incidents: Vec::new(),
                    flight_dump: None,
                    recovery_mode: opts.recovery,
                    recovery: None,
                    warm_read_p99: None,
                    faulted_read_p99: None,
                    policy_switches: 0,
                    policy_flaps_suppressed: 0,
                    retired_policy_reads: 0,
                    overload: None,
                },
                None,
                None,
            );
        }
    };
    if opts.trace {
        cluster.network().enable_tracing();
    }
    if opts.history {
        cluster.network().enable_history();
    }
    let paths = cluster.stage_dataset("train", plan.files, plan.file_size);
    let truth: Vec<Bytes> = paths
        .iter()
        .map(|p| synth_bytes(p, plan.file_size))
        .collect();
    // Seed the history with the staged ground truth: every path exists
    // on the PFS at t=0, so the linearizability spec treats staging as
    // the initial write of each register.
    if let Some(h) = cluster.network().history() {
        for (p, bytes) in paths.iter().zip(&truth) {
            h.seed_write(p, ftc_net::fnv1a(bytes));
        }
    }
    let recovery_mode = if opts.sabotage_recovery {
        RecoveryMode::Proactive
    } else {
        opts.recovery
    };
    let client = match recovery_mode {
        RecoveryMode::Lazy => cluster.client(0),
        RecoveryMode::Proactive | RecoveryMode::Adaptive => {
            let rc = if opts.sabotage_recovery {
                // A bucket that never refills: the recache job can only
                // starve, so quiescence must time out.
                ftc_core::RecoveryConfig {
                    // lint:allow(policy-const): sabotage mode deliberately
                    // starves the bucket outside the governed defaults.
                    recache_rate: 0.0,
                    recache_burst: 0,
                    probe: false,
                    ..Default::default()
                }
            } else {
                ftc_core::RecoveryConfig {
                    probe: false,
                    ..Default::default()
                }
            };
            let built = if recovery_mode == RecoveryMode::Adaptive {
                cluster.client_adaptive(
                    0,
                    rc,
                    campaign_controller_config(opts.sabotage_flap, overload_on),
                )
            } else {
                cluster.client_with_recovery(0, rc)
            };
            match built {
                Ok(c) => c,
                Err(e) => {
                    cluster.shutdown();
                    return (
                        CampaignReport {
                            seed: plan.seed,
                            policy,
                            reads_attempted: 0,
                            aborted: false,
                            violations: vec![format!("boot: recovery engine failed: {e}")],
                            incidents: Vec::new(),
                            flight_dump: None,
                            recovery_mode,
                            recovery: None,
                            warm_read_p99: None,
                            faulted_read_p99: None,
                            policy_switches: 0,
                            policy_flaps_suppressed: 0,
                            retired_policy_reads: 0,
                            overload: None,
                        },
                        None,
                        None,
                    );
                }
            }
        }
    };

    let mut violations = Vec::new();
    let mut reads_attempted = 0u64;
    let mut aborted = false;
    let mut surge_issued = 0u64;
    let mut surge_ok = 0u64;
    let mut storm_keys = 0u64;

    // Warm pass: healthy cluster, every read must verify.
    let mut warm_lats: Vec<Duration> = Vec::with_capacity(paths.len());
    let mut fault_lats: Vec<Duration> = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        reads_attempted += 1;
        let t0 = clock.now();
        let result = client.read(p);
        warm_lats.push(clock.since(t0));
        match result {
            Ok(bytes) if bytes == truth[i] => {}
            Ok(_) => violations.push(format!("integrity: warm read of {p} corrupted")),
            Err(e) => violations.push(format!("integrity: warm read of {p} failed: {e}")),
        }
    }
    // Let the movers land everything before accounting starts.
    let _ = cluster.wait_movers_drained(Duration::from_secs(2));
    let warm = client.metrics().snapshot();
    // Ownership at the healthy-ring baseline: `KillSuccessorOf` resolves
    // against this snapshot to find who inherited a dead node's range.
    let start_owners: Vec<Option<NodeId>> = paths.iter().map(|p| client.owner_of(p)).collect();

    // Recache budget for invariant 2: one fetch per file whose owner was
    // hit by a membership-affecting event, counted at event time.
    let mut budget = 0u64;
    let mut lossy_applied = false;
    let owned_by = |n: NodeId| -> u64 {
        paths
            .iter()
            .filter(|p| client.owner_of(p) == Some(n))
            .count() as u64
    };

    'passes: for pass in 0..plan.passes {
        // Single-flight duplicate storm: spawn duplicate readers over
        // the keys this pass's kill is about to orphan, *before* the
        // kill lands, so the flights they share are open when the ring
        // rewires underneath them. A follower must then either accept
        // the leader's result (publish epoch still current) or retry
        // independently against the new ring — never accept a value
        // published under the old regime. The storm reads only the
        // doomed keys: hammering unrelated keys would pile timeout
        // evidence onto flaky/degraded nodes and perturb the recache
        // economy the other invariants calibrate against.
        let storm_paths: Vec<usize> = if storm_on {
            let mut doomed: Vec<NodeId> = Vec::new();
            for ev in plan.events.iter().filter(|e| e.before_pass == pass) {
                match ev.action {
                    ChaosAction::Kill(n) => doomed.push(n),
                    // Mirror the event handler's resolution below; reads
                    // of healthy keys never move ownership, so the two
                    // resolutions agree.
                    ChaosAction::KillSuccessorOf(n) => {
                        let target = paths
                            .iter()
                            .zip(&start_owners)
                            .find(|(_, o)| **o == Some(n))
                            .and_then(|(p, _)| client.owner_of(p));
                        if let Some(t) = target.filter(|&t| t != n) {
                            doomed.push(t);
                        }
                    }
                    _ => {}
                }
            }
            (0..paths.len())
                .filter(|&i| {
                    client
                        .owner_of(&paths[i])
                        .is_some_and(|o| doomed.contains(&o))
                })
                .collect()
        } else {
            Vec::new()
        };
        let storm_this_pass = !storm_paths.is_empty();
        let mut storm_workers = Vec::new();
        let storm_failed = Arc::new(AtomicU64::new(0));
        let storm_before = client.metrics().snapshot();
        if storm_this_pass {
            storm_keys += storm_paths.len() as u64;
            for r in 0..DUP_READERS {
                let client = Arc::clone(&client);
                let paths = paths.clone();
                let truth = truth.clone();
                let storm_paths = storm_paths.clone();
                let failed = Arc::clone(&storm_failed);
                let spawned = clock.spawn(&format!("dup-storm-{r}"), move || {
                    // Several rounds so flights are still open when the
                    // kill fires, and later rounds exercise fresh-epoch
                    // accepts against the rewired ring.
                    for _ in 0..DUP_ROUNDS {
                        for &i in &storm_paths {
                            if !matches!(client.read(&paths[i]), Ok(bytes) if bytes == truth[i]) {
                                // ordering: Relaxed — per-task tally folded
                                // in after join; no cross-task ordering
                                // needed.
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
                match spawned {
                    Ok(h) => storm_workers.push(h),
                    Err(e) => violations.push(format!(
                        "singleflight: storm reader {r} failed to spawn: {e}"
                    )),
                }
            }
            // Let the readers open their shared flights before the kill.
            clock.sleep(Duration::from_micros(50));
        }

        for ev in plan.events.iter().filter(|e| e.before_pass == pass) {
            match ev.action {
                ChaosAction::Kill(n) => {
                    budget += owned_by(n);
                    lossy_applied = true;
                    cluster.kill(n);
                }
                ChaosAction::KillSuccessorOf(n) => {
                    // Whoever the ring routes n's first baseline key to
                    // now inherited its range. Until the client actually
                    // declares n dead, that is still n itself — a no-op,
                    // since killing n twice is meaningless.
                    let target = paths
                        .iter()
                        .zip(&start_owners)
                        .find(|(_, o)| **o == Some(n))
                        .and_then(|(p, _)| client.owner_of(p));
                    if let Some(t) = target.filter(|&t| t != n) {
                        budget += owned_by(t);
                        lossy_applied = true;
                        cluster.kill(t);
                    }
                }
                ChaosAction::Revive(n) => {
                    if let Err(e) = cluster.revive(n) {
                        violations.push(format!("revive: node {n} failed to rejoin: {e}"));
                    }
                    // The rejoin is warm, but budget one fetch per
                    // re-owned key anyway: a mover may not have landed a
                    // key before the crash took the node out.
                    budget += owned_by(n);
                }
                ChaosAction::Flaky { node, up, down } => {
                    budget += owned_by(node);
                    lossy_applied = true;
                    cluster.network().set_flaky(node, up, down);
                }
                ChaosAction::ClearFlaky(n) => cluster.network().clear_flaky(n),
                ChaosAction::PartitionToNode(n) => {
                    budget += owned_by(n);
                    lossy_applied = true;
                    cluster.network().partition_oneway(client.node(), n);
                }
                ChaosAction::PartitionFromNode(n) => {
                    budget += owned_by(n);
                    lossy_applied = true;
                    cluster.network().partition_oneway(n, client.node());
                }
                ChaosAction::HealAll => cluster.network().heal_all_partitions(),
                ChaosAction::Degrade { node, extra } => {
                    debug_assert!(extra < CAMPAIGN_TTL);
                    cluster.network().delay_node(node, extra);
                }
            }
        }

        if storm_this_pass {
            let expected = (storm_workers.len() * storm_paths.len() * DUP_ROUNDS) as u64;
            for h in storm_workers {
                if h.join().is_err() {
                    violations.push("singleflight: a storm reader panicked".to_owned());
                }
            }
            // ordering: Relaxed — readers are joined; the tally is final.
            let failed = storm_failed.load(Ordering::Relaxed);
            if failed > 0 {
                violations.push(format!(
                    "singleflight: {failed} storm read(s) lost ground truth across the kill"
                ));
            }
            // Conservation: every storm read resolved exactly one way —
            // led its flight, accepted a fresh-epoch publish, or walked
            // the independent retry path after a stale/abandoned flight.
            // Only the storm reads between the two snapshots (the main
            // task is applying events, not reading).
            let after = client.metrics().snapshot();
            let led = after.singleflight_leaders - storm_before.singleflight_leaders;
            let accepted = after.coalesced_reads - storm_before.coalesced_reads;
            let retried = after.coalesced_stale_retries - storm_before.coalesced_stale_retries;
            if led + accepted + retried != expected {
                violations.push(format!(
                    "singleflight: {expected} storm reads but {led} led + {accepted} \
                     coalesced + {retried} stale-retried (reads unaccounted for)"
                ));
            }
            if expected > 0 && accepted + retried == 0 {
                violations.push(
                    "singleflight: the duplicate storm never engaged the coalescing layer"
                        .to_owned(),
                );
            }
        }

        // Open-loop surge (overload campaigns only): SURGE_READERS tasks
        // sharing this client hammer every path in the same order, so
        // they convoy on one owner at a time and the tight foreground
        // queue sheds. Sharing the client matters: the sheds feed the
        // controller's signals (brownout) and a single metrics snapshot
        // (accounting), and every task joins before the pass reads
        // resume — nothing leaks past the virtual driver.
        if overload_on && pass == SURGE_PASS {
            let ok = Arc::new(AtomicU64::new(0));
            let issued = Arc::new(AtomicU64::new(0));
            let mut workers = Vec::with_capacity(SURGE_READERS);
            for r in 0..SURGE_READERS {
                let client = Arc::clone(&client);
                let paths = paths.clone();
                let truth = truth.clone();
                let ok = Arc::clone(&ok);
                let issued = Arc::clone(&issued);
                let spawned = clock.spawn(&format!("surge-{r}"), move || {
                    for (p, want) in paths.iter().zip(&truth) {
                        // ordering: Relaxed — per-task tallies folded in
                        // after join; no cross-task ordering needed.
                        issued.fetch_add(1, Ordering::Relaxed);
                        if matches!(client.read(p), Ok(bytes) if bytes == *want) {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
                match spawned {
                    Ok(h) => workers.push(h),
                    Err(e) => violations.push(format!("surge: reader {r} failed to spawn: {e}")),
                }
            }
            for h in workers {
                if h.join().is_err() {
                    violations.push("surge: a reader panicked".to_owned());
                }
            }
            // ordering: Relaxed — tasks are joined; these are final.
            surge_issued = issued.load(Ordering::Relaxed);
            surge_ok = ok.load(Ordering::Relaxed);
        }

        // Deterministic per-pass read order.
        let mut order: Vec<usize> = (0..paths.len()).collect();
        let mut rng = Prng(plan.seed.wrapping_add(u64::from(pass) + 1));
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }

        for idx in order {
            let p = &paths[idx];
            reads_attempted += 1;
            let t0 = clock.now();
            let result = client.read(p);
            let took = clock.since(t0);
            fault_lats.push(took);
            if took > cfg.ft.retry.deadline_budget + LIVELOCK_SLACK {
                violations.push(format!(
                    "liveness: read of {p} took {took:?}, budget {:?}",
                    cfg.ft.retry.deadline_budget
                ));
            }
            match result {
                Ok(bytes) if bytes == truth[idx] => {}
                Ok(_) => violations.push(format!("integrity: read of {p} corrupted")),
                Err(ReadError::NodeFailed(_)) if policy == FtPolicy::NoFt && lossy_applied => {
                    // Baseline semantics: the job dies on the first
                    // detected failure. Correct — end the campaign.
                    aborted = true;
                    break 'passes;
                }
                Err(e) => violations.push(format!(
                    "integrity: read of {p} failed under {policy:?}: {e}"
                )),
            }
        }
        // Give movers a beat so recache fetches are attributed to the
        // pass that caused them.
        let _ = cluster.wait_movers_drained(Duration::from_secs(2));
    }

    // Brownout lifecycle (adaptive overload only): the surge pushed the
    // controller into brownout; once the pressure is gone the shed-rate
    // estimator must decay it back out. Give the decay the time it needs
    // — free on the virtual clock — before judging the transitions.
    if overload_on && !aborted {
        if let Some(ctl) = client.controller() {
            let waited_from = clock.now();
            while ctl.live().brownout() && clock.since(waited_from) < BROWNOUT_EXIT_DEADLINE {
                clock.sleep(Duration::from_millis(25));
            }
        }
    }

    // Invariants 5–7 (proactive recovery only, and moot after a NoFt
    // abort): quiescence, no-stale-serving, no foreground starvation.
    let recovery_stats = client.recovery().map(|engine| {
        if !aborted {
            if !engine.wait_quiesced(QUIESCE_DEADLINE) {
                violations.push(format!(
                    "recovery quiescence: engine still busy {QUIESCE_DEADLINE:?} after the \
                     last pass ({} keys queued)",
                    engine.recache_queue_depth()
                ));
            }
            // Invariant 5: post-quiesce verification sweep — every key
            // serves ground truth; anything stale was fenced, not served.
            for (i, p) in paths.iter().enumerate() {
                reads_attempted += 1;
                match client.read(p) {
                    Ok(bytes) if bytes == truth[i] => {}
                    Ok(_) => violations.push(format!(
                        "stale serve: post-recovery read of {p} not ground truth"
                    )),
                    Err(e) => violations.push(format!(
                        "stale serve: post-recovery read of {p} failed: {e}"
                    )),
                }
            }
            // Invariant 7: the training job's reads kept flowing while
            // the engine recached in the background.
            if let (Some(w), Some(f)) = (percentile_99(&warm_lats), percentile_99(&fault_lats)) {
                let bound = (w * 10).max(STARVATION_FLOOR);
                if f > bound {
                    violations.push(format!(
                        "starvation: foreground read p99 {f:?} during recovery exceeds \
                         {bound:?} (warm p99 {w:?})"
                    ));
                }
            }
        }
        engine.stats()
    });

    // Invariant 2: recache economy (RingRecache only; NoFt abort ends
    // accounting early by construction). Sabotage zeroes the budget so
    // the violation path (and its flight-recorder dump) is exercisable
    // on demand.
    let budget = if opts.sabotage_economy { 0 } else { budget };
    if policy == FtPolicy::RingRecache {
        let after = client.metrics().snapshot();
        // Overload slack: a hedged read lands on a non-owner replica,
        // which may have to fetch from the PFS once — legitimate load
        // the per-kill budget never counted.
        let budget = budget
            + if overload_on {
                after.hedges_launched
            } else {
                0
            };
        // Storm slack: a stormed key read mid-rewire can recache onto a
        // node the campaign later removes (a flaky successor, a second
        // kill) — one more fetch when it re-homes — and a follower's
        // stale-epoch retry can re-fetch a key whose leader's result
        // landed under the old regime. Both cost at most one extra
        // fetch per stormed key; sequential campaigns never race the
        // rewire this way, so the slack is storm-scoped.
        let budget = budget + if storm_on { storm_keys } else { 0 };
        let fetched = after.pfs_fetches_via_server - warm.pfs_fetches_via_server;
        if fetched > budget {
            violations.push(format!(
                "recache economy: {fetched} server PFS fetches after warm pass, budget {budget}"
            ));
        }
    }

    // Invariant 4: degraded-but-alive nodes must never be declared failed.
    let failed = client.failed_nodes();
    for &n in &plan.degraded_only {
        if failed.contains(&n) {
            violations.push(format!(
                "false positive: degraded-but-alive node {n} declared failed"
            ));
        }
    }

    // Overload invariants (armed campaigns only): the goodput floor, shed
    // accounting, shed-vs-death separation and the brownout lifecycle.
    let overload_stats = if overload_on {
        let snap = client.metrics().snapshot();
        let per_node = cluster.sheds_per_node();
        let (shed_capacity, shed_deadline) = per_node
            .iter()
            .fold((0u64, 0u64), |(c, d), (pc, pd)| (c + pc, d + pd));
        let server_sheds = shed_capacity + shed_deadline;
        // Goodput floor: the armor degrades shed reads to the PFS instead
        // of failing them, so the surge may not lose reads outright.
        if surge_issued > 0 && surge_ok * 100 < surge_issued * GOODPUT_FLOOR_PCT {
            violations.push(format!(
                "goodput: surge completed {surge_ok}/{surge_issued} reads, \
                 below the {GOODPUT_FLOOR_PCT}% floor"
            ));
        }
        // Shed accounting: the surge must actually exercise admission
        // control, and the client can never observe more typed sheds
        // than the servers issued.
        if !aborted && surge_issued > 0 && snap.overloaded_observed == 0 {
            violations.push(
                "shed accounting: the surge never produced a typed shed \
                 (admission control idle?)"
                    .to_owned(),
            );
        }
        if snap.overloaded_observed > server_sheds {
            violations.push(format!(
                "shed accounting: client observed {} typed sheds, servers \
                 issued {server_sheds}",
                snap.overloaded_observed
            ));
        }
        // A shed is a liveness signal: a node that shed but kept serving
        // must never be declared failed. (--sabotage-shed misclassifies
        // sheds on the client so this fires on demand.)
        let killed: HashSet<NodeId> = cluster.killed_nodes().into_iter().collect();
        for (i, (c, d)) in per_node.iter().enumerate() {
            let n = NodeId(i as u32);
            if c + d > 0 && !killed.contains(&n) && failed.contains(&n) {
                violations.push(format!(
                    "shed false positive: shedding-but-alive node {n} declared failed"
                ));
            }
        }
        let (brownout_entries, brownout_exits) = client
            .controller()
            .map_or((0, 0), |c| c.brownout_transitions());
        if recovery_mode == RecoveryMode::Adaptive && !opts.sabotage_shed && !aborted {
            if brownout_entries == 0 {
                violations
                    .push("brownout: the surge never entered the brownout posture".to_owned());
            } else if brownout_exits == 0 {
                violations.push(format!(
                    "brownout: posture never exited within {BROWNOUT_EXIT_DEADLINE:?} \
                     of the surge clearing"
                ));
            }
        }
        Some(OverloadStats {
            surge_reads: surge_issued,
            surge_ok,
            shed_capacity,
            shed_deadline,
            observed: snap.overloaded_observed,
            shed_pfs_fallbacks: snap.shed_pfs_fallbacks,
            hedges_launched: snap.hedges_launched,
            hedges_won: snap.hedges_won,
            breaker_short_circuits: snap.breaker_short_circuits,
            budget_denied: snap.budget_denied,
            brownout_entries,
            brownout_exits,
        })
    } else {
        None
    };

    // DES cross-check: mirror the kill schedule and ask the simulator
    // whether the job survives; the verdicts must agree.
    let mirror = plan.mirror_fault_plan();
    let workload = SimWorkload {
        samples: plan.files as u32,
        sample_bytes: plan.file_size as u64,
        epochs: plan.passes + 1,
        seed: plan.seed,
        time_compression: 1,
    };
    let sim = SimCluster::new(
        plan.nodes,
        policy,
        workload.samples,
        SimCalibration::frontier(),
    )
    .run_plan(workload, &mirror);
    let sim_should_abort = policy == FtPolicy::NoFt && !mirror.is_empty();
    if sim.aborted != sim_should_abort {
        violations.push(format!(
            "sim mirror: DES aborted={} but expected {} ({} mirrored kills)",
            sim.aborted,
            sim_should_abort,
            mirror.len()
        ));
    }

    // Controller verdicts (adaptive only): switch/flap counters, and —
    // on a traced virtual run — the retired-policy-read scan, whose only
    // acceptable count is zero.
    let (policy_switches, policy_flaps_suppressed) = client
        .controller()
        .map_or((0, 0), |c| (c.switches(), c.flaps_suppressed()));
    let trace_log = cluster.network().tracer().map(|t| t.take());
    let retired_policy_reads = match trace_log.as_deref() {
        Some(log) if clock.is_virtual() => count_retired_policy_reads(log),
        _ => 0,
    };
    if retired_policy_reads > 0 {
        violations.push(format!(
            "retired policy epoch: {retired_policy_reads} read(s) attributed to a \
             policy epoch the controller had already retired"
        ));
    }

    // Harvest observability before teardown: the degraded-window
    // incidents, and — only when an invariant fired — the flight
    // recorder's last-events dump for postmortem context.
    let incidents = cluster.obs().timeline.incidents();
    let flight_dump = if violations.is_empty() {
        None
    } else {
        cluster.obs().flight.record(
            "chaos",
            "violation",
            format!("{} invariant(s) fired, dumping", violations.len()),
        );
        Some(cluster.obs().flight.dump())
    };

    let history_log = cluster.network().history().map(|h| h.take());
    cluster.shutdown();
    (
        CampaignReport {
            seed: plan.seed,
            policy,
            reads_attempted,
            aborted,
            violations,
            incidents,
            flight_dump,
            recovery_mode,
            recovery: recovery_stats,
            warm_read_p99: percentile_99(&warm_lats),
            faulted_read_p99: percentile_99(&fault_lats),
            policy_switches,
            policy_flaps_suppressed,
            retired_policy_reads,
            overload: overload_stats,
        },
        trace_log,
        history_log,
    )
}

/// Run the same seeded plan under every policy; returns one report per
/// policy in `[NoFt, PfsRedirect, RingRecache]` order.
pub fn run_campaign_all_policies(seed: u64) -> Vec<CampaignReport> {
    let plan = ChaosPlan::generate(seed);
    [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache]
        .into_iter()
        .map(|policy| run_campaign(policy, &plan))
        .collect()
}

/// The contenders of the adaptive-vs-static table, in render order:
/// every static posture × replication-factor combination PR 4/5 measured,
/// plus the adaptive controller.
pub fn compare_adaptive_contenders() -> Vec<(RecoveryMode, Option<u32>)> {
    vec![
        (RecoveryMode::Lazy, None),
        (RecoveryMode::Proactive, None),
        (RecoveryMode::Lazy, Some(2)),
        (RecoveryMode::Proactive, Some(2)),
        (RecoveryMode::Adaptive, None),
    ]
}

/// Stable row label for a compare-table contender.
pub fn compare_label(mode: RecoveryMode, rf: Option<u32>) -> String {
    format!(
        "{mode}-rf{}",
        rf.unwrap_or(ftc_core::policy::DEFAULT_REPLICATION)
    )
}

/// The metrics on which `adaptive` failed to match or beat `static_r`,
/// empty when adaptive holds the headline claim against this contender.
///
/// The degraded-window comparison pairs incidents by killed node,
/// because the mechanisms differ in *which* windows ever complete: a
/// lazy cluster can leave a lost range unmeasured forever (no demand →
/// no first recached hit → a censored-but-unbounded window that makes
/// its p99 look fast), while a proactive engine can *eliminate* a
/// window outright (range re-homed before demand sees a single miss).
/// Neither absence is comparable to a measurement, so only windows both
/// contenders measured are compared: adaptive must not be slower than
/// the static contender on any shared incident, under a 5% + 1 ms
/// slack that absorbs stamp granularity without masking a real
/// regression. The faulted-read p99 (foreground floor) is always
/// measured on both sides and compares directly.
pub fn adaptive_losses(adaptive: &CampaignReport, static_r: &CampaignReport) -> Vec<&'static str> {
    let slack = |d: Duration| d + d / 20 + Duration::from_millis(1);
    let windows = |r: &CampaignReport| -> HashMap<u32, Duration> {
        r.incidents
            .iter()
            .filter_map(|i| Some((i.node, i.recovery_latency()?)))
            .collect()
    };
    let mut losses = Vec::new();
    let a = windows(adaptive);
    let dw_ok = windows(static_r)
        .iter()
        .all(|(node, s)| a.get(node).is_none_or(|aw| *aw <= slack(*s)));
    if !dw_ok {
        losses.push("degraded window (paired by incident)");
    }
    let fr_ok = match (adaptive.faulted_read_p99, static_r.faulted_read_p99) {
        (Some(a), Some(s)) => a <= slack(s),
        _ => true,
    };
    if !fr_ok {
        losses.push("faulted-read p99");
    }
    losses
}

/// Run the shifting-intensity scenario for `seed` under every contender
/// of [`compare_adaptive_contenders`] on the virtual clock (traced, so
/// the adaptive run also gets the retired-policy-read scan). One report
/// per contender, same order. Deterministic: same seed ⇒ byte-identical
/// renders.
pub fn run_campaign_compare_adaptive(seed: u64) -> Vec<CampaignReport> {
    let plan = ChaosPlan::scenario_shifting_intensity(seed);
    compare_adaptive_contenders()
        .into_iter()
        .map(|(mode, rf)| {
            run_campaign_virtual(
                FtPolicy::RingRecache,
                &plan,
                CampaignOptions {
                    recovery: mode,
                    replication: rf,
                    trace: true,
                    ..Default::default()
                },
            )
        })
        .collect()
}

/// Compute-phase gap used by [`run_degraded_window_probe`]: the window
/// between failure detection and the next epoch's reads, during which a
/// proactive engine can re-home lost keys while a lazy cluster does
/// nothing.
const PROBE_COMPUTE_GAP: Duration = Duration::from_millis(150);

/// One measured epoch-after-failure experiment (see
/// [`run_degraded_window_probe`]).
#[derive(Debug, Clone)]
pub struct DegradedWindowReport {
    /// Seed the probe cluster booted with.
    pub seed: u64,
    /// Recovery mode the probe measured.
    pub mode: RecoveryMode,
    /// Keys owned by the killed node at the healthy-ring baseline.
    pub lost_keys: u64,
    /// Demand-visible PFS fetches during the post-gap epoch: the reads
    /// that stalled on a cold miss because the lost key had not been
    /// re-homed yet.
    pub cold_reads: u64,
    /// Kill → declared-failed, as seen by the probing client.
    pub detect: Duration,
    /// Kill → recovery engine drained (proactive only).
    pub quiesce: Option<Duration>,
    /// Read p99 of the post-gap epoch (the first full sweep after the
    /// compute phase).
    pub epoch_p99: Option<Duration>,
    /// Read p99 of the healthy warm pass, for scale.
    pub warm_p99: Option<Duration>,
    /// Integrity or liveness failures observed during the probe.
    pub violations: Vec<String>,
}

/// Measure the *demand-visible* degraded window the way a training job
/// sees it: kill a node, let the detector declare it, then idle through a
/// compute phase ([`PROBE_COMPUTE_GAP`]) before the next epoch sweeps
/// every key.
///
/// The kill→first-recached-hit latency cannot distinguish the two modes —
/// the read that trips the declaration fails over inline, so both modes
/// stamp the first hit at detection time. What differs is the rest of the
/// window: a lazy cluster re-homes a lost key only when demand asks for
/// it, so the post-gap epoch pays one cold PFS fetch per lost key, while
/// the proactive engine re-homes the whole range during the gap and the
/// epoch runs warm. `cold_reads` and `epoch_p99` capture exactly that.
pub fn run_degraded_window_probe(mode: RecoveryMode, seed: u64) -> DegradedWindowReport {
    run_degraded_window_probe_on(mode, seed, ClockHandle::wall())
}

/// [`run_degraded_window_probe`] in virtual time: deterministic detect /
/// quiesce / epoch numbers for the same seed, in wall milliseconds.
pub fn run_degraded_window_probe_virtual(mode: RecoveryMode, seed: u64) -> DegradedWindowReport {
    ftc_time::with_virtual(|clock| run_degraded_window_probe_on(mode, seed, clock))
}

/// [`run_degraded_window_probe`] on an injected clock.
pub fn run_degraded_window_probe_on(
    mode: RecoveryMode,
    seed: u64,
    clock: ClockHandle,
) -> DegradedWindowReport {
    let nodes = 4;
    let files = 64;
    let file_size = 48;
    let mut cfg = ClusterConfig::small(nodes, FtPolicy::RingRecache);
    cfg.ft.detector.ttl = CAMPAIGN_TTL;
    cfg.ft.detector.timeout_limit = 2;
    cfg.ft.retry.max_attempts = 16;
    cfg.ft.retry.base_backoff = Duration::from_micros(200);
    cfg.ft.retry.max_backoff = Duration::from_millis(3);
    cfg.ft.retry.deadline_budget = Duration::from_secs(2);
    cfg.seed = seed;

    let mut report = DegradedWindowReport {
        seed,
        mode,
        lost_keys: 0,
        cold_reads: 0,
        detect: Duration::ZERO,
        quiesce: None,
        epoch_p99: None,
        warm_p99: None,
        violations: Vec::new(),
    };
    let cluster = match Cluster::start_with_clock(cfg, clock.clone()) {
        Ok(c) => c,
        Err(e) => {
            report
                .violations
                .push(format!("boot: cluster failed to start: {e}"));
            return report;
        }
    };
    let paths = cluster.stage_dataset("probe", files, file_size);
    let truth: Vec<Bytes> = paths.iter().map(|p| synth_bytes(p, file_size)).collect();
    let client = match mode {
        RecoveryMode::Lazy => cluster.client(0),
        RecoveryMode::Proactive | RecoveryMode::Adaptive => {
            let rc = ftc_core::RecoveryConfig {
                probe: false,
                ..Default::default()
            };
            let built = if mode == RecoveryMode::Adaptive {
                cluster.client_adaptive(0, rc, campaign_controller_config(false, false))
            } else {
                cluster.client_with_recovery(0, rc)
            };
            match built {
                Ok(c) => c,
                Err(e) => {
                    cluster.shutdown();
                    report
                        .violations
                        .push(format!("boot: recovery engine failed: {e}"));
                    return report;
                }
            }
        }
    };

    // Warm pass: every read verified, latencies kept for scale.
    let mut warm_lats = Vec::with_capacity(paths.len());
    for (i, p) in paths.iter().enumerate() {
        let t0 = clock.now();
        let result = client.read(p);
        warm_lats.push(clock.since(t0));
        match result {
            Ok(bytes) if bytes == truth[i] => {}
            _ => report.violations.push(format!("warm read of {p} wrong")),
        }
    }
    report.warm_p99 = percentile_99(&warm_lats);
    let _ = cluster.wait_movers_drained(Duration::from_secs(2));

    let victim = NodeId(1);
    let lost: Vec<&String> = paths
        .iter()
        .filter(|p| client.owner_of(p) == Some(victim))
        .collect();
    report.lost_keys = lost.len() as u64;
    let Some(probe_key) = lost.first() else {
        cluster.shutdown();
        report
            .violations
            .push("victim owned no keys at baseline".into());
        return report;
    };

    // Kill, then drive detection with a single probe key so at most one
    // lost key is re-homed by demand before the compute gap.
    let killed_at = clock.now();
    cluster.kill(victim);
    while client.live_nodes().contains(&victim) {
        if clock.since(killed_at) > Duration::from_secs(10) {
            cluster.shutdown();
            report.violations.push("victim was never declared".into());
            return report;
        }
        let _ = client.read(probe_key);
    }
    report.detect = clock.since(killed_at);

    // Compute phase: the job crunches, the cluster idles. A proactive
    // engine re-homes the dead range now; a lazy one waits for demand.
    if let Some(engine) = client.recovery() {
        if engine.wait_quiesced(QUIESCE_DEADLINE) {
            report.quiesce = Some(clock.since(killed_at));
        } else {
            report.violations.push(format!(
                "engine failed to quiesce within {QUIESCE_DEADLINE:?}"
            ));
        }
    }
    let elapsed = clock.since(killed_at);
    if elapsed < PROBE_COMPUTE_GAP {
        clock.sleep(PROBE_COMPUTE_GAP - elapsed);
    }

    // Next epoch: sweep everything; count the reads that stalled on PFS.
    cluster.pfs().reset_read_counters();
    let mut epoch_lats = Vec::with_capacity(paths.len());
    for (i, p) in paths.iter().enumerate() {
        let t0 = clock.now();
        let result = client.read(p);
        epoch_lats.push(clock.since(t0));
        match result {
            Ok(bytes) if bytes == truth[i] => {}
            _ => report
                .violations
                .push(format!("post-gap read of {p} wrong")),
        }
    }
    report.epoch_p99 = percentile_99(&epoch_lats);
    report.cold_reads = cluster.pfs().total_reads();
    cluster.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in [0, 1, 7, 42, 0xDEAD_BEEF] {
            assert_eq!(ChaosPlan::generate(seed), ChaosPlan::generate(seed));
        }
        assert_ne!(ChaosPlan::generate(1), ChaosPlan::generate(2));
    }

    #[test]
    fn plans_respect_structural_constraints() {
        for seed in 0..200u64 {
            let plan = ChaosPlan::generate(seed);
            assert!((3..=5).contains(&plan.nodes), "seed {seed}");
            assert!((12..=24).contains(&plan.files), "seed {seed}");
            assert!((2..=3).contains(&plan.passes), "seed {seed}");
            for ev in &plan.events {
                assert!(ev.before_pass < plan.passes, "seed {seed}");
                // The clean node is never targeted by anything lossy.
                match ev.action {
                    ChaosAction::Kill(n)
                    | ChaosAction::Revive(n)
                    | ChaosAction::Flaky { node: n, .. }
                    | ChaosAction::PartitionToNode(n)
                    | ChaosAction::PartitionFromNode(n) => {
                        assert_ne!(n, plan.clean_node, "seed {seed}");
                        assert!(!plan.degraded_only.contains(&n), "seed {seed}");
                    }
                    ChaosAction::Degrade { node, extra } => {
                        assert!(extra < CAMPAIGN_TTL, "seed {seed}");
                        assert!(plan.degraded_only.contains(&node), "seed {seed}");
                    }
                    ChaosAction::ClearFlaky(_) | ChaosAction::HealAll => {}
                    // The generator never emits apply-time-resolved kills;
                    // only the named scenarios do.
                    ChaosAction::KillSuccessorOf(_) => {
                        panic!("seed {seed}: generator emitted KillSuccessorOf")
                    }
                }
            }
        }
    }

    #[test]
    fn mirror_excludes_revived_nodes() {
        // Construct a plan with a kill+revive pair and a permanent kill.
        let mut plan = ChaosPlan::generate(3);
        plan.events = vec![
            ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Kill(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Revive(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Kill(NodeId(2)),
            },
        ];
        let mirror = plan.mirror_fault_plan();
        assert_eq!(mirror.len(), 1);
        assert_eq!(mirror.events()[0].node, NodeId(2));
        assert_eq!(mirror.events()[0].epoch, 2);
    }

    #[test]
    fn campaign_passes_for_every_policy_on_a_few_seeds() {
        for seed in [11u64, 12] {
            for report in run_campaign_all_policies(seed) {
                assert!(report.passed(), "campaign failed: {report}");
            }
        }
    }

    /// A plan whose only fault is a guaranteed kill of node 1 before the
    /// first post-warm pass (node 0 stays clean so the ring never
    /// empties). Enough files that node 1 owns some with near-certainty.
    fn plan_with_one_kill() -> ChaosPlan {
        let mut plan = ChaosPlan::generate(3);
        plan.nodes = 3;
        plan.files = 24;
        plan.passes = 2;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![ChaosEvent {
            before_pass: 0,
            action: ChaosAction::Kill(NodeId(1)),
        }];
        plan
    }

    #[test]
    fn report_carries_per_kill_latencies() {
        let report = run_campaign(FtPolicy::RingRecache, &plan_with_one_kill());
        assert!(report.passed(), "campaign failed: {report}");
        assert!(report.flight_dump.is_none(), "no dump on a passing run");
        let det = report.detection_latencies();
        let rec = report.recovery_latencies();
        assert_eq!(det.len(), 1, "one kill -> one detection latency");
        assert_eq!(rec.len(), 1, "one kill -> one recovery latency");
        assert!(det[0] <= rec[0], "declare precedes recached serving");
        let summary = report.latency_summary();
        assert_eq!(summary.len(), 1);
        assert!(summary[0].starts_with("n1 det="), "got {:?}", summary[0]);
    }

    #[test]
    fn recovery_scenarios_are_deterministic_and_well_formed() {
        for make in [
            ChaosPlan::scenario_failure_during_recache,
            ChaosPlan::scenario_double_failure,
            ChaosPlan::scenario_revive_during_recache,
        ] {
            let plan = make(7);
            assert_eq!(
                plan,
                make(7),
                "scenario must be a pure function of the seed"
            );
            assert_eq!(plan.nodes, 4);
            assert!(plan.has_lossy_events());
            assert!(plan.events.iter().all(|e| e.before_pass < plan.passes));
        }
    }

    #[test]
    fn proactive_recovery_passes_the_new_scenarios() {
        for (name, plan) in [
            (
                "failure_during_recache",
                ChaosPlan::scenario_failure_during_recache(21),
            ),
            ("double_failure", ChaosPlan::scenario_double_failure(22)),
            (
                "revive_during_recache",
                ChaosPlan::scenario_revive_during_recache(23),
            ),
        ] {
            let (report, _) = run_campaign_with(
                FtPolicy::RingRecache,
                &plan,
                CampaignOptions {
                    recovery: RecoveryMode::Proactive,
                    ..Default::default()
                },
            );
            assert!(report.passed(), "{name} failed: {report}");
            let stats = report.recovery.as_ref().expect("proactive stats");
            assert!(
                stats.recoveries_started >= 1,
                "{name}: engine never started a recache job"
            );
            assert_eq!(
                stats.recoveries_started, stats.recoveries_quiesced,
                "{name}: every started recovery must quiesce"
            );
        }
    }

    #[test]
    fn recovery_sabotage_fires_the_quiescence_invariant() {
        let report = run_campaign_recovery_sabotaged(FtPolicy::RingRecache, &plan_with_one_kill());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("recovery quiescence")),
            "starved bucket must fail quiescence: {report}"
        );
        assert!(
            report.flight_dump.is_some(),
            "violation must carry a flight dump"
        );
        let stats = report.recovery.as_ref().expect("proactive stats");
        // The bucket clamps burst to one initial token, so at most one
        // key sneaks through before starvation takes hold.
        assert!(
            stats.recache_pushed <= 1,
            "a rate-0 bucket pushes at most its single clamped-burst token"
        );
        assert!(stats.recache_throttled >= 1, "the bucket did the starving");
    }

    #[test]
    fn degraded_window_probe_differentiates_the_modes() {
        let lazy = run_degraded_window_probe(RecoveryMode::Lazy, 7);
        let pro = run_degraded_window_probe(RecoveryMode::Proactive, 7);
        assert!(lazy.violations.is_empty(), "{:?}", lazy.violations);
        assert!(pro.violations.is_empty(), "{:?}", pro.violations);
        assert!(lazy.lost_keys > 0, "victim must own keys");
        assert_eq!(lazy.lost_keys, pro.lost_keys, "same seed, same ring");
        // Lazy pays a demand-visible cold fetch for every lost key except
        // the detection probe key (re-homed by its own failover)...
        assert_eq!(
            lazy.cold_reads,
            lazy.lost_keys - 1,
            "lazy re-homes only on demand"
        );
        // ...while the proactive engine re-homed the range during the
        // compute gap, so the next epoch runs warm.
        assert_eq!(pro.cold_reads, 0, "proactive pre-positions every key");
        assert!(pro.quiesce.is_some(), "engine quiesced inside the gap");
    }

    #[test]
    fn virtual_campaign_replays_byte_identically() {
        let plan = plan_with_one_kill();
        let opts = CampaignOptions {
            recovery: RecoveryMode::Proactive,
            ..Default::default()
        };
        let a = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        let b = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        assert!(a.passed(), "virtual campaign failed: {a}");
        assert_eq!(
            a.render(),
            b.render(),
            "same seed on the virtual clock must replay byte-identically"
        );
        // Latency stamps are simulated, not measured: they exist and are
        // identical across the replays.
        assert_eq!(a.detection_latencies(), b.detection_latencies());
        assert!(a.warm_read_p99.is_some());
    }

    #[test]
    fn singleflight_storm_survives_a_kill_and_replays_byte_identically() {
        let plan = ChaosPlan::scenario_failure_during_recache(17);
        let opts = CampaignOptions {
            recovery: RecoveryMode::Proactive,
            dup_storm: true,
            ..Default::default()
        };
        let a = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        // passed() covers the storm invariants too: ground truth across
        // the kill, leader/coalesced/stale-retry conservation, and the
        // storm actually engaging the coalescing layer.
        assert!(a.passed(), "storm campaign failed: {a}");
        let b = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        assert_eq!(
            a.render(),
            b.render(),
            "the duplicate storm must not break byte-identical replay"
        );
    }

    #[test]
    fn scale_sweep_plans_are_well_formed() {
        for (nodes, kills) in [(2u32, 1usize), (64, 2), (256, 8)] {
            let plan = ChaosPlan::scenario_scale_sweep(9, nodes, 128);
            assert_eq!(plan, ChaosPlan::scenario_scale_sweep(9, nodes, 128));
            assert_eq!(plan.nodes, nodes);
            assert_eq!(plan.events.len(), kills);
            for ev in &plan.events {
                match ev.action {
                    ChaosAction::Kill(n) => assert_ne!(n, plan.clean_node),
                    other => panic!("scale sweep emitted {other:?}"),
                }
            }
        }
    }

    #[test]
    fn sabotaged_campaign_emits_flight_dump() {
        let report = run_campaign_sabotaged(FtPolicy::RingRecache, &plan_with_one_kill());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("recache economy")),
            "sabotage must fire the economy invariant: {report}"
        );
        let dump = report.flight_dump.as_deref().expect("dump on violation");
        assert!(dump.contains("flight recorder"), "dump header present");
        assert!(dump.contains("violation"), "dump records the trigger");
        assert!(dump.contains("kill"), "dump retains the kill event");
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn shifting_intensity_plan_is_deterministic_and_well_formed() {
        let plan = ChaosPlan::scenario_shifting_intensity(7);
        assert_eq!(
            plan,
            ChaosPlan::scenario_shifting_intensity(7),
            "scenario must be a pure function of the seed"
        );
        assert_eq!(plan.nodes, 5);
        assert_eq!(plan.passes, 3);
        assert_eq!(plan.clean_node, NodeId(0));
        // Pass 0 is quiet; the burst and the correlated kill come later.
        assert!(plan.events.iter().all(|e| e.before_pass >= 1));
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::KillSuccessorOf(_))));
    }

    #[test]
    fn adaptive_virtual_campaign_is_clean_and_replays_byte_identically() {
        let plan = ChaosPlan::scenario_shifting_intensity(7);
        let opts = CampaignOptions {
            recovery: RecoveryMode::Adaptive,
            trace: true,
            ..Default::default()
        };
        let a = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        let b = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        assert!(a.passed(), "adaptive campaign failed: {a}");
        assert_eq!(
            a.render(),
            b.render(),
            "adaptive campaign must replay byte-identically on the virtual clock"
        );
        assert!(
            a.policy_switches >= 1,
            "the burst must move the controller off the quiet posture"
        );
        assert_eq!(
            a.retired_policy_reads, 0,
            "no read may be attributed to a retired policy epoch"
        );
        assert!(
            a.render().contains("policy: switches="),
            "adaptive renders carry the policy line"
        );
    }

    #[test]
    fn flap_sabotage_trips_the_suppressor_without_breaking_invariants() {
        let plan = ChaosPlan::scenario_shifting_intensity(7);
        let report = run_campaign_virtual(
            FtPolicy::RingRecache,
            &plan,
            CampaignOptions {
                recovery: RecoveryMode::Adaptive,
                sabotage_flap: true,
                trace: true,
                ..Default::default()
            },
        );
        assert!(
            report.policy_flaps_suppressed > 0,
            "a flapping controller must hit the cooldown: {report}"
        );
        assert!(
            report.passed(),
            "hysteresis must keep a flapping controller invariant-clean: {report}"
        );
        assert_eq!(report.retired_policy_reads, 0);
    }

    #[test]
    fn adaptive_matches_or_beats_every_static_contender() {
        let reports = run_campaign_compare_adaptive(7);
        let contenders = compare_adaptive_contenders();
        assert_eq!(reports.len(), contenders.len());
        let adaptive = reports.last().expect("adaptive is the last contender");
        assert_eq!(adaptive.recovery_mode, RecoveryMode::Adaptive);
        assert!(adaptive.policy_switches >= 1, "{adaptive}");
        assert_eq!(adaptive.retired_policy_reads, 0, "{adaptive}");
        assert!(adaptive.degraded_window_p99().is_some(), "kills completed");
        for ((mode, rf), r) in contenders.iter().zip(&reports) {
            let label = compare_label(*mode, *rf);
            assert!(r.passed(), "{label} failed: {r}");
            if *mode == RecoveryMode::Adaptive {
                continue;
            }
            let losses = adaptive_losses(adaptive, r);
            assert!(
                losses.is_empty(),
                "adaptive lost to {label} on {losses:?} (adaptive {:?}/{:?} vs {:?}/{:?})",
                adaptive.degraded_window_p99(),
                adaptive.faulted_read_p99,
                r.degraded_window_p99(),
                r.faulted_read_p99,
            );
        }
    }

    #[test]
    fn degraded_window_comparison_pairs_incidents_by_node() {
        // Windows only one side measured (lazy censoring, proactive
        // elimination) must not decide the verdict; shared incidents
        // compare directly.
        let mk = |mode: RecoveryMode, windows: &[(u32, u64)]| {
            // Stamp the windows through a virtual-clock timeline (the
            // only way to construct incidents), all anchored at the
            // same kill instant.
            let incidents = ftc_time::with_virtual(|clock| {
                let tl = ftc_obs::TimelineRecorder::with_clock(clock.clone());
                for &(node, _) in windows {
                    tl.mark(node, ftc_obs::Phase::Kill);
                }
                let mut order = windows.to_vec();
                order.sort_by_key(|&(_, ms)| ms);
                let mut elapsed = 0u64;
                for (node, ms) in order {
                    clock.sleep(Duration::from_millis(ms - elapsed));
                    elapsed = ms;
                    tl.mark(node, ftc_obs::Phase::FirstRecachedHit);
                }
                tl.incidents()
            });
            CampaignReport {
                seed: 0,
                policy: FtPolicy::RingRecache,
                reads_attempted: 0,
                aborted: false,
                violations: Vec::new(),
                incidents,
                flight_dump: None,
                recovery_mode: mode,
                recovery: None,
                warm_read_p99: None,
                faulted_read_p99: Some(Duration::from_millis(15)),
                policy_switches: 0,
                policy_flaps_suppressed: 0,
                retired_policy_reads: 0,
                overload: None,
            }
        };
        let adaptive = mk(RecoveryMode::Adaptive, &[(1, 50), (2, 35)]);
        // Lazy never measured n1's window (censored): only n2 compares.
        let censored = mk(RecoveryMode::Lazy, &[(2, 35)]);
        // Adaptive never measured n3's window (eliminated before demand).
        let eliminated = mk(RecoveryMode::Lazy, &[(1, 50), (2, 35), (3, 10)]);
        // Shared incident n1 is strictly faster on the static side.
        let slower = mk(RecoveryMode::Lazy, &[(1, 20), (2, 35)]);
        assert!(adaptive_losses(&adaptive, &censored).is_empty());
        assert!(adaptive_losses(&adaptive, &eliminated).is_empty());
        assert_eq!(
            adaptive_losses(&adaptive, &slower),
            vec!["degraded window (paired by incident)"]
        );
        // Equal windows tie under the slack.
        assert!(adaptive_losses(&adaptive, &adaptive).is_empty());
    }

    #[test]
    fn retired_policy_read_scan_counts_per_actor() {
        let mk = |seq: u64, actor: u32, kind: TraceEventKind| TraceRecord {
            seq,
            actor: NodeId(actor),
            clock: ftc_net::VClock::new(),
            kind,
        };
        let read = |seq, actor, epoch| {
            mk(
                seq,
                actor,
                TraceEventKind::PolicyRead {
                    key: format!("k{seq}"),
                    policy_epoch: epoch,
                },
            )
        };
        let change = |seq, actor, old, new| {
            mk(
                seq,
                actor,
                TraceEventKind::PolicyChange {
                    old_epoch: old,
                    new_epoch: new,
                },
            )
        };
        // Actor 0 reads under epoch 1, switches to 2, then serves one
        // stale epoch-1 read; actor 1's epoch-1 reads stay clean because
        // the switch belongs to actor 0.
        let log = vec![
            read(0, 0, 1),
            change(1, 0, 1, 2),
            read(2, 0, 2),
            read(3, 0, 1),
            read(4, 1, 1),
        ];
        assert_eq!(count_retired_policy_reads(&log), 1);
        assert_eq!(count_retired_policy_reads(&log[..3]), 0);
        assert_eq!(count_retired_policy_reads(&[]), 0);
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;

    #[test]
    fn cascading_overload_plan_is_deterministic_and_well_formed() {
        let plan = ChaosPlan::scenario_cascading_overload(7);
        assert_eq!(
            plan,
            ChaosPlan::scenario_cascading_overload(7),
            "scenario must be a pure function of the seed"
        );
        assert_eq!(plan.nodes, 4);
        assert_eq!(plan.clean_node, NodeId(0));
        assert!(
            plan.passes > SURGE_PASS,
            "the surge needs a pass to precede"
        );
        assert!(plan.has_lossy_events(), "the kill is the recache burst");
        assert!(plan.degraded_only.is_empty());
    }

    #[test]
    fn cascading_overload_campaign_holds_the_goodput_floor_and_replays() {
        let plan = ChaosPlan::scenario_cascading_overload(7);
        let opts = CampaignOptions {
            recovery: RecoveryMode::Adaptive,
            overload: true,
            trace: true,
            ..Default::default()
        };
        let a = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        let b = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
        assert!(a.passed(), "overload campaign failed: {a}");
        assert_eq!(
            a.render(),
            b.render(),
            "overload campaign must replay byte-identically on the virtual clock"
        );
        let o = a.overload.expect("overload stats present");
        assert!(o.surge_reads > 0, "the surge ran");
        assert_eq!(
            o.surge_ok, o.surge_reads,
            "armor degrades shed reads, it never loses them: {o:?}"
        );
        assert!(o.observed > 0, "the surge must actually shed: {o:?}");
        assert!(
            o.observed <= o.shed_capacity + o.shed_deadline,
            "client cannot observe more sheds than servers issued: {o:?}"
        );
        assert!(
            o.brownout_entries >= 1,
            "the surge must enter brownout: {o:?}"
        );
        assert!(
            o.brownout_exits >= 1,
            "brownout must exit once the surge clears: {o:?}"
        );
        assert!(a.render().contains("overload: surge="));
        assert_eq!(a.retired_policy_reads, 0);
    }

    #[test]
    fn unarmed_campaigns_render_without_an_overload_line() {
        let mut plan = ChaosPlan::generate(3);
        plan.nodes = 3;
        plan.files = 24;
        plan.passes = 2;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![ChaosEvent {
            before_pass: 0,
            action: ChaosAction::Kill(NodeId(1)),
        }];
        let report = run_campaign_virtual(FtPolicy::RingRecache, &plan, CampaignOptions::default());
        assert!(report.passed(), "{report}");
        assert!(report.overload.is_none());
        assert!(
            !report.render().contains("overload:"),
            "pre-armor renders must stay byte-identical"
        );
    }

    #[test]
    fn shed_sabotage_fires_the_false_positive_invariant() {
        let plan = ChaosPlan::scenario_cascading_overload(7);
        let report = run_campaign_virtual(
            FtPolicy::RingRecache,
            &plan,
            CampaignOptions {
                sabotage_shed: true,
                ..Default::default()
            },
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("shed false positive")),
            "misclassified sheds must declare a live node dead: {report}"
        );
        assert!(
            report.flight_dump.is_some(),
            "violation must carry a flight dump"
        );
    }
}
