//! Chaos harness: seeded gray-failure campaigns with invariant checking.
//!
//! A campaign boots a real threaded [`Cluster`], samples a randomized
//! fault schedule from a seed ([`ChaosPlan::generate`]) — kills, revives,
//! flaky links, asymmetric partitions, degraded-but-alive nodes — applies
//! it between read passes, and checks four invariants:
//!
//! 1. **Integrity** — every completed read returns bytes byte-identical
//!    to the PFS ground truth (the synthetic content is self-describing).
//!    Under `NoFt`, aborting on a lossy fault is the *correct* outcome;
//!    any other failure is a violation.
//! 2. **Recache economy** — under `RingRecache`, server-mediated PFS
//!    fetches after the warm pass stay within the loss budget: at most
//!    one fetch per file whose owner was hit by a lossy or membership
//!    event (kill, revive, flaky link, partition).
//! 3. **Liveness** — no read ever exceeds the retry deadline budget by
//!    more than bounded slack: the client cannot livelock, whatever the
//!    fault pattern.
//! 4. **No false positives** — a node that is only *degraded* (served
//!    every request, with extra latency below the TTL) is never declared
//!    failed.
//!
//! The plan — and therefore the whole campaign and its verdict — is a
//! pure function of the seed, so `chaos --seed N` replays
//! byte-identically (measured latencies are wall-clock and vary). The
//! kill schedule is additionally mirrored into a discrete-event
//! [`FaultPlan`] and cross-checked against [`SimCluster`]: the simulator
//! must agree on whether the job survives.
//!
//! Every campaign also harvests the cluster's observability hub
//! (`ftc-obs`): the degraded-window timeline yields per-kill detection
//! and recovery latencies in the report, and when any invariant fires
//! the report embeds a flight-recorder dump of the last fabric/client
//! events. [`run_campaign_sabotaged`] forces a violation on demand to
//! prove the dump path works.

use bytes::Bytes;
use ftc_core::{Cluster, ClusterConfig, FtPolicy, ReadError};
use ftc_hashring::NodeId;
use ftc_net::TraceRecord;
use ftc_sim::{FaultEvent, FaultPlan, SimCalibration, SimCluster, SimWorkload};
use ftc_storage::synth_bytes;
use std::collections::HashSet;
use std::fmt;
use std::time::{Duration, Instant};

/// One fault action in a campaign schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Crash the node (silent; its cache contents are lost).
    Kill(NodeId),
    /// Repair and rejoin a crashed node with a cold cache.
    Revive(NodeId),
    /// Duty-cycle loss on the node's ingress link: `up` deliveries ok,
    /// then `down` dropped, repeating.
    Flaky {
        /// Target node.
        node: NodeId,
        /// Deliveries that succeed per cycle.
        up: u32,
        /// Deliveries that drop per cycle.
        down: u32,
    },
    /// Remove the flaky rule from the node.
    ClearFlaky(NodeId),
    /// One-way partition: the client's requests never reach the node.
    PartitionToNode(NodeId),
    /// One-way partition: the node's replies never reach the client —
    /// the gray-failure direction (work done, answer lost).
    PartitionFromNode(NodeId),
    /// Remove every partition rule.
    HealAll,
    /// Serve everything, slowly: extra per-delivery latency strictly
    /// below the TTL. Must never lead to a failure declaration.
    Degrade {
        /// Target node.
        node: NodeId,
        /// Added one-way latency (below the detector TTL).
        extra: Duration,
    },
}

/// A fault action scheduled before a given read pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The action fires before this pass (0-based, after the warm pass).
    pub before_pass: u32,
    /// What happens.
    pub action: ChaosAction,
}

/// A complete seeded campaign schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed this plan (and everything downstream) derives from.
    pub seed: u64,
    /// Server nodes in the cluster.
    pub nodes: u32,
    /// Files staged on the PFS.
    pub files: usize,
    /// Bytes per file.
    pub file_size: usize,
    /// Read passes after the warm pass.
    pub passes: u32,
    /// The fault schedule, sorted by `before_pass`.
    pub events: Vec<ChaosEvent>,
    /// Nodes targeted exclusively by `Degrade` — invariant 4's subjects.
    pub degraded_only: Vec<NodeId>,
    /// A node no lossy event ever targets, so the ring never empties and
    /// fault-tolerant reads always have somewhere to land.
    pub clean_node: NodeId,
}

/// Deterministic SplitMix64 stream (no external RNG: the plan must be a
/// pure function of the seed).
struct Prng(u64);

impl Prng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Detector TTL used by every campaign (degrade latencies are sampled
/// strictly below this).
pub const CAMPAIGN_TTL: Duration = Duration::from_millis(15);

impl ChaosPlan {
    /// Sample a campaign schedule from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = Prng(seed ^ 0xC0A5_F0F1_E5C4_A0E5);
        let nodes = 3 + rng.below(3) as u32; // 3..=5
        let files = 12 + rng.below(13) as usize; // 12..=24
        let passes = 2 + rng.below(2) as u32; // 2..=3

        // Reserve one clean node (never hit by anything lossy) and,
        // half the time, one degrade-only node.
        let clean_node = NodeId(rng.below(u64::from(nodes)) as u32);
        let degrade_node = if rng.below(2) == 0 {
            let candidates: Vec<u32> = (0..nodes).filter(|&n| NodeId(n) != clean_node).collect();
            Some(NodeId(
                candidates[rng.below(candidates.len() as u64) as usize],
            ))
        } else {
            None
        };
        let lossy_targets: Vec<NodeId> = (0..nodes)
            .map(NodeId)
            .filter(|&n| n != clean_node && Some(n) != degrade_node)
            .collect();

        let mut events = Vec::new();
        if let Some(d) = degrade_node {
            // Degradation from the very first faulted pass: 30–70% of TTL.
            let frac = 30 + rng.below(41);
            events.push(ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Degrade {
                    node: d,
                    extra: CAMPAIGN_TTL.mul_f64(frac as f64 / 100.0),
                },
            });
        }

        // Generate lossy events in chronological order so kill/revive
        // pairing stays consistent.
        let mut killed: HashSet<NodeId> = HashSet::new();
        for pass in 0..passes {
            let burst = rng.below(3); // 0..=2 events before this pass
            for _ in 0..burst {
                let target = lossy_targets[rng.below(lossy_targets.len() as u64) as usize];
                let action = match rng.below(6) {
                    0 | 1 => {
                        if killed.contains(&target) {
                            killed.remove(&target);
                            ChaosAction::Revive(target)
                        } else if killed.len() + 1 < lossy_targets.len().max(2) {
                            killed.insert(target);
                            ChaosAction::Kill(target)
                        } else {
                            ChaosAction::HealAll
                        }
                    }
                    2 => ChaosAction::Flaky {
                        node: target,
                        up: 1 + rng.below(3) as u32,
                        down: 1 + rng.below(2) as u32,
                    },
                    3 => ChaosAction::ClearFlaky(target),
                    4 => {
                        if rng.below(2) == 0 {
                            ChaosAction::PartitionToNode(target)
                        } else {
                            ChaosAction::PartitionFromNode(target)
                        }
                    }
                    _ => ChaosAction::HealAll,
                };
                events.push(ChaosEvent {
                    before_pass: pass,
                    action,
                });
            }
        }

        ChaosPlan {
            seed,
            nodes,
            files,
            file_size: 48,
            passes,
            events,
            degraded_only: degrade_node.into_iter().collect(),
            clean_node,
        }
    }

    /// True if the plan contains any event that can lose messages (and
    /// may therefore legitimately abort a `NoFt` job).
    pub fn has_lossy_events(&self) -> bool {
        self.events.iter().any(|e| {
            !matches!(
                e.action,
                ChaosAction::Degrade { .. } | ChaosAction::HealAll | ChaosAction::ClearFlaky(_)
            )
        })
    }

    /// The kill schedule mirrored into a DES [`FaultPlan`]: each node
    /// killed and never revived becomes a `FaultEvent` in the epoch after
    /// its pass (epoch 0 is the warm pass).
    pub fn mirror_fault_plan(&self) -> FaultPlan {
        let revived: HashSet<NodeId> = self
            .events
            .iter()
            .filter_map(|e| match e.action {
                ChaosAction::Revive(n) => Some(n),
                _ => None,
            })
            .collect();
        FaultPlan::new(
            self.events
                .iter()
                .filter_map(|e| match e.action {
                    ChaosAction::Kill(n) if !revived.contains(&n) => Some(FaultEvent {
                        epoch: e.before_pass + 1,
                        step: 0,
                        node: n,
                    }),
                    _ => None,
                })
                .collect(),
        )
    }

    /// One-line plan summary (stable across replays of the same seed).
    pub fn summary(&self) -> String {
        format!(
            "nodes={} files={} passes={} events={} degraded={} clean={}",
            self.nodes,
            self.files,
            self.passes,
            self.events.len(),
            self.degraded_only.len(),
            self.clean_node
        )
    }
}

/// Result of running one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The plan's seed.
    pub seed: u64,
    /// Policy exercised.
    pub policy: FtPolicy,
    /// Reads attempted (warm pass included).
    pub reads_attempted: u64,
    /// True when a `NoFt` campaign aborted on a lossy fault (expected).
    pub aborted: bool,
    /// Invariant violations; empty means the campaign passed.
    pub violations: Vec<String>,
    /// Degraded-window incidents stamped during the campaign, one per
    /// kill (plus any client-observed failures the injector never
    /// announced). Each carries kill → declare → first-recached-hit
    /// offsets, so per-kill detection and recovery latencies fall out.
    pub incidents: Vec<ftc_obs::Incident>,
    /// Flight-recorder dump captured at campaign end when any invariant
    /// fired — the last ~1k fabric/client events leading up to the
    /// violation. `None` for passing campaigns.
    pub flight_dump: Option<String>,
}

impl CampaignReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-kill detection latencies (kill → declare) observed this
    /// campaign, in incident order.
    pub fn detection_latencies(&self) -> Vec<Duration> {
        self.incidents
            .iter()
            .filter_map(ftc_obs::Incident::detection_latency)
            .collect()
    }

    /// Per-kill recovery latencies (kill → first recached hit) observed
    /// this campaign, in incident order.
    pub fn recovery_latencies(&self) -> Vec<Duration> {
        self.incidents
            .iter()
            .filter_map(ftc_obs::Incident::recovery_latency)
            .collect()
    }

    /// Per-kill latency lines (`n3 det=12.4ms rec=31.0ms`), one per
    /// incident anchored by an injected kill. Empty when no kill fired.
    /// Kept out of [`fmt::Display`] so the verdict line stays a pure
    /// function of the seed; latencies are wall-clock measurements.
    pub fn latency_summary(&self) -> Vec<String> {
        self.incidents
            .iter()
            .filter(|i| i.stamp(ftc_obs::Phase::Kill).is_some())
            .map(|i| {
                let ms = |d: Option<Duration>| match d {
                    Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1e3),
                    None => "-".to_owned(),
                };
                format!(
                    "n{} det={} rec={}",
                    i.node,
                    ms(i.detection_latency()),
                    ms(i.recovery_latency())
                )
            })
            .collect()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} policy={:?} -> {}",
            self.seed,
            self.policy,
            if self.passed() { "PASS" } else { "FAIL" }
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// Wall-clock slack allowed on top of the retry deadline budget before a
/// read counts as livelocked (scheduler noise, final TTL, PFS read).
const LIVELOCK_SLACK: Duration = Duration::from_secs(2);

/// Run one campaign of `plan` under `policy` on a real threaded cluster,
/// checking all four invariants.
pub fn run_campaign(policy: FtPolicy, plan: &ChaosPlan) -> CampaignReport {
    run_campaign_traced(policy, plan, false).0
}

/// Like [`run_campaign`], but with the recache-economy budget forced to
/// zero: any post-warm server-mediated PFS fetch then counts as a
/// violation. Under `RingRecache` with at least one kill in the plan the
/// violation is certain (the dead node's keys must refetch), so this is
/// the deterministic self-test that the flight-recorder dump path works
/// end to end — the returned report carries `flight_dump`.
pub fn run_campaign_sabotaged(policy: FtPolicy, plan: &ChaosPlan) -> CampaignReport {
    run_campaign_inner(policy, plan, false, true).0
}

/// Like [`run_campaign`], optionally with vector-clock tracing enabled on
/// the cluster fabric. When `trace` is true the returned log carries every
/// message leg and shared-state transition of the campaign, ready for
/// offline happens-before analysis (`ftc-analysis`).
pub fn run_campaign_traced(
    policy: FtPolicy,
    plan: &ChaosPlan,
    trace: bool,
) -> (CampaignReport, Option<Vec<TraceRecord>>) {
    run_campaign_inner(policy, plan, trace, false)
}

fn run_campaign_inner(
    policy: FtPolicy,
    plan: &ChaosPlan,
    trace: bool,
    sabotage: bool,
) -> (CampaignReport, Option<Vec<TraceRecord>>) {
    let mut cfg = ClusterConfig::small(plan.nodes, policy);
    cfg.ft.detector.ttl = CAMPAIGN_TTL;
    cfg.ft.detector.timeout_limit = 2;
    cfg.ft.detector.suspicion_window = Duration::from_secs(2);
    cfg.ft.retry.max_attempts = 16;
    cfg.ft.retry.base_backoff = Duration::from_micros(200);
    cfg.ft.retry.max_backoff = Duration::from_millis(3);
    cfg.ft.retry.deadline_budget = Duration::from_secs(2);
    cfg.seed = plan.seed;

    let cluster = match Cluster::start(cfg.clone()) {
        Ok(c) => c,
        Err(e) => {
            // A cluster that cannot boot is a failed campaign, not a
            // panic: record it so sweeps keep their exit-code contract.
            return (
                CampaignReport {
                    seed: plan.seed,
                    policy,
                    reads_attempted: 0,
                    aborted: false,
                    violations: vec![format!("boot: cluster failed to start: {e}")],
                    incidents: Vec::new(),
                    flight_dump: None,
                },
                None,
            );
        }
    };
    if trace {
        cluster.network().enable_tracing();
    }
    let paths = cluster.stage_dataset("train", plan.files, plan.file_size);
    let truth: Vec<Bytes> = paths
        .iter()
        .map(|p| synth_bytes(p, plan.file_size))
        .collect();
    let client = cluster.client(0);

    let mut violations = Vec::new();
    let mut reads_attempted = 0u64;
    let mut aborted = false;

    // Warm pass: healthy cluster, every read must verify.
    for (i, p) in paths.iter().enumerate() {
        reads_attempted += 1;
        match client.read(p) {
            Ok(bytes) if bytes == truth[i] => {}
            Ok(_) => violations.push(format!("integrity: warm read of {p} corrupted")),
            Err(e) => violations.push(format!("integrity: warm read of {p} failed: {e}")),
        }
    }
    // Let the movers land everything before accounting starts.
    std::thread::sleep(Duration::from_millis(60));
    let warm = client.metrics().snapshot();

    // Recache budget for invariant 2: one fetch per file whose owner was
    // hit by a membership-affecting event, counted at event time.
    let mut budget = 0u64;
    let mut lossy_applied = false;
    let owned_by = |n: NodeId| -> u64 {
        paths
            .iter()
            .filter(|p| client.owner_of(p) == Some(n))
            .count() as u64
    };

    'passes: for pass in 0..plan.passes {
        for ev in plan.events.iter().filter(|e| e.before_pass == pass) {
            match ev.action {
                ChaosAction::Kill(n) => {
                    budget += owned_by(n);
                    lossy_applied = true;
                    cluster.kill(n);
                }
                ChaosAction::Revive(n) => {
                    if let Err(e) = cluster.revive(n) {
                        violations.push(format!("revive: node {n} failed to rejoin: {e}"));
                    }
                    // The rejoined node is cold: its re-owned keys refetch.
                    budget += owned_by(n);
                }
                ChaosAction::Flaky { node, up, down } => {
                    budget += owned_by(node);
                    lossy_applied = true;
                    cluster.network().set_flaky(node, up, down);
                }
                ChaosAction::ClearFlaky(n) => cluster.network().clear_flaky(n),
                ChaosAction::PartitionToNode(n) => {
                    budget += owned_by(n);
                    lossy_applied = true;
                    cluster.network().partition_oneway(client.node(), n);
                }
                ChaosAction::PartitionFromNode(n) => {
                    budget += owned_by(n);
                    lossy_applied = true;
                    cluster.network().partition_oneway(n, client.node());
                }
                ChaosAction::HealAll => cluster.network().heal_all_partitions(),
                ChaosAction::Degrade { node, extra } => {
                    debug_assert!(extra < CAMPAIGN_TTL);
                    cluster.network().delay_node(node, extra);
                }
            }
        }

        // Deterministic per-pass read order.
        let mut order: Vec<usize> = (0..paths.len()).collect();
        let mut rng = Prng(plan.seed.wrapping_add(u64::from(pass) + 1));
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }

        for idx in order {
            let p = &paths[idx];
            reads_attempted += 1;
            let t0 = Instant::now();
            let result = client.read(p);
            let took = t0.elapsed();
            if took > cfg.ft.retry.deadline_budget + LIVELOCK_SLACK {
                violations.push(format!(
                    "liveness: read of {p} took {took:?}, budget {:?}",
                    cfg.ft.retry.deadline_budget
                ));
            }
            match result {
                Ok(bytes) if bytes == truth[idx] => {}
                Ok(_) => violations.push(format!("integrity: read of {p} corrupted")),
                Err(ReadError::NodeFailed(_)) if policy == FtPolicy::NoFt && lossy_applied => {
                    // Baseline semantics: the job dies on the first
                    // detected failure. Correct — end the campaign.
                    aborted = true;
                    break 'passes;
                }
                Err(e) => violations.push(format!(
                    "integrity: read of {p} failed under {policy:?}: {e}"
                )),
            }
        }
        // Give movers a beat so recache fetches are attributed to the
        // pass that caused them.
        std::thread::sleep(Duration::from_millis(40));
    }

    // Invariant 2: recache economy (RingRecache only; NoFt abort ends
    // accounting early by construction). Sabotage zeroes the budget so
    // the violation path (and its flight-recorder dump) is exercisable
    // on demand.
    let budget = if sabotage { 0 } else { budget };
    if policy == FtPolicy::RingRecache {
        let after = client.metrics().snapshot();
        let fetched = after.pfs_fetches_via_server - warm.pfs_fetches_via_server;
        if fetched > budget {
            violations.push(format!(
                "recache economy: {fetched} server PFS fetches after warm pass, budget {budget}"
            ));
        }
    }

    // Invariant 4: degraded-but-alive nodes must never be declared failed.
    let failed = client.failed_nodes();
    for &n in &plan.degraded_only {
        if failed.contains(&n) {
            violations.push(format!(
                "false positive: degraded-but-alive node {n} declared failed"
            ));
        }
    }

    // DES cross-check: mirror the kill schedule and ask the simulator
    // whether the job survives; the verdicts must agree.
    let mirror = plan.mirror_fault_plan();
    let workload = SimWorkload {
        samples: plan.files as u32,
        sample_bytes: plan.file_size as u64,
        epochs: plan.passes + 1,
        seed: plan.seed,
        time_compression: 1,
    };
    let sim = SimCluster::new(
        plan.nodes,
        policy,
        workload.samples,
        SimCalibration::frontier(),
    )
    .run_plan(workload, &mirror);
    let sim_should_abort = policy == FtPolicy::NoFt && !mirror.is_empty();
    if sim.aborted != sim_should_abort {
        violations.push(format!(
            "sim mirror: DES aborted={} but expected {} ({} mirrored kills)",
            sim.aborted,
            sim_should_abort,
            mirror.len()
        ));
    }

    // Harvest observability before teardown: the degraded-window
    // incidents, and — only when an invariant fired — the flight
    // recorder's last-events dump for postmortem context.
    let incidents = cluster.obs().timeline.incidents();
    let flight_dump = if violations.is_empty() {
        None
    } else {
        cluster.obs().flight.record(
            "chaos",
            "violation",
            format!("{} invariant(s) fired, dumping", violations.len()),
        );
        Some(cluster.obs().flight.dump())
    };

    let trace_log = cluster.network().tracer().map(|t| t.take());
    cluster.shutdown();
    (
        CampaignReport {
            seed: plan.seed,
            policy,
            reads_attempted,
            aborted,
            violations,
            incidents,
            flight_dump,
        },
        trace_log,
    )
}

/// Run the same seeded plan under every policy; returns one report per
/// policy in `[NoFt, PfsRedirect, RingRecache]` order.
pub fn run_campaign_all_policies(seed: u64) -> Vec<CampaignReport> {
    let plan = ChaosPlan::generate(seed);
    [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache]
        .into_iter()
        .map(|policy| run_campaign(policy, &plan))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in [0, 1, 7, 42, 0xDEAD_BEEF] {
            assert_eq!(ChaosPlan::generate(seed), ChaosPlan::generate(seed));
        }
        assert_ne!(ChaosPlan::generate(1), ChaosPlan::generate(2));
    }

    #[test]
    fn plans_respect_structural_constraints() {
        for seed in 0..200u64 {
            let plan = ChaosPlan::generate(seed);
            assert!((3..=5).contains(&plan.nodes), "seed {seed}");
            assert!((12..=24).contains(&plan.files), "seed {seed}");
            assert!((2..=3).contains(&plan.passes), "seed {seed}");
            for ev in &plan.events {
                assert!(ev.before_pass < plan.passes, "seed {seed}");
                // The clean node is never targeted by anything lossy.
                match ev.action {
                    ChaosAction::Kill(n)
                    | ChaosAction::Revive(n)
                    | ChaosAction::Flaky { node: n, .. }
                    | ChaosAction::PartitionToNode(n)
                    | ChaosAction::PartitionFromNode(n) => {
                        assert_ne!(n, plan.clean_node, "seed {seed}");
                        assert!(!plan.degraded_only.contains(&n), "seed {seed}");
                    }
                    ChaosAction::Degrade { node, extra } => {
                        assert!(extra < CAMPAIGN_TTL, "seed {seed}");
                        assert!(plan.degraded_only.contains(&node), "seed {seed}");
                    }
                    ChaosAction::ClearFlaky(_) | ChaosAction::HealAll => {}
                }
            }
        }
    }

    #[test]
    fn mirror_excludes_revived_nodes() {
        // Construct a plan with a kill+revive pair and a permanent kill.
        let mut plan = ChaosPlan::generate(3);
        plan.events = vec![
            ChaosEvent {
                before_pass: 0,
                action: ChaosAction::Kill(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Revive(NodeId(1)),
            },
            ChaosEvent {
                before_pass: 1,
                action: ChaosAction::Kill(NodeId(2)),
            },
        ];
        let mirror = plan.mirror_fault_plan();
        assert_eq!(mirror.len(), 1);
        assert_eq!(mirror.events()[0].node, NodeId(2));
        assert_eq!(mirror.events()[0].epoch, 2);
    }

    #[test]
    fn campaign_passes_for_every_policy_on_a_few_seeds() {
        for seed in [11u64, 12] {
            for report in run_campaign_all_policies(seed) {
                assert!(report.passed(), "campaign failed: {report}");
            }
        }
    }

    /// A plan whose only fault is a guaranteed kill of node 1 before the
    /// first post-warm pass (node 0 stays clean so the ring never
    /// empties). Enough files that node 1 owns some with near-certainty.
    fn plan_with_one_kill() -> ChaosPlan {
        let mut plan = ChaosPlan::generate(3);
        plan.nodes = 3;
        plan.files = 24;
        plan.passes = 2;
        plan.clean_node = NodeId(0);
        plan.degraded_only.clear();
        plan.events = vec![ChaosEvent {
            before_pass: 0,
            action: ChaosAction::Kill(NodeId(1)),
        }];
        plan
    }

    #[test]
    fn report_carries_per_kill_latencies() {
        let report = run_campaign(FtPolicy::RingRecache, &plan_with_one_kill());
        assert!(report.passed(), "campaign failed: {report}");
        assert!(report.flight_dump.is_none(), "no dump on a passing run");
        let det = report.detection_latencies();
        let rec = report.recovery_latencies();
        assert_eq!(det.len(), 1, "one kill -> one detection latency");
        assert_eq!(rec.len(), 1, "one kill -> one recovery latency");
        assert!(det[0] <= rec[0], "declare precedes recached serving");
        let summary = report.latency_summary();
        assert_eq!(summary.len(), 1);
        assert!(summary[0].starts_with("n1 det="), "got {:?}", summary[0]);
    }

    #[test]
    fn sabotaged_campaign_emits_flight_dump() {
        let report = run_campaign_sabotaged(FtPolicy::RingRecache, &plan_with_one_kill());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("recache economy")),
            "sabotage must fire the economy invariant: {report}"
        );
        let dump = report.flight_dump.as_deref().expect("dump on violation");
        assert!(dump.contains("flight recorder"), "dump header present");
        assert!(dump.contains("violation"), "dump records the trigger");
        assert!(dump.contains("kill"), "dump retains the kill event");
    }
}
