//! Model checking the chaos harness: schedule exploration and
//! linearizability over recorded op histories.
//!
//! The chaos harness replays one schedule per seed — the FIFO order the
//! virtual-time driver happens to produce. This module turns that single
//! trajectory into a searched *space*:
//!
//! * [`explore_campaign`] re-runs a campaign under pluggable schedule
//!   strategies (`ftc_time::{RandomWalk, Pct}` smoke, or the bounded DFS
//!   in `ftc_analysis::explore`) and asserts the campaign invariants
//!   under every explored interleaving. Any violation ships with a
//!   schedule file (`ftc_analysis::replay`) that re-runs the exact
//!   interleaving byte-identically.
//! * [`check_linz_campaigns`] runs whole campaigns with the fabric's op
//!   history recorder on ([`CampaignOptions::history`]) and feeds each
//!   history through `ftc_analysis::linz`: per-key register
//!   linearizability plus the epoch-freshness rule.
//! * [`sabotage_atomicity`] and [`sabotage_linz`] are the self-tests:
//!   the first seeds a known check-then-act bug whose bad interleaving
//!   FIFO never takes and requires the explorer to find and replay it;
//!   the second forges a stale-epoch read into a clean history and
//!   requires the checker to flag it. A checker that cannot fail is not
//!   checking anything.

use crate::chaos::{
    run_campaign_explored, run_campaign_history, CampaignOptions, ChaosPlan, RecoveryMode,
};
use ftc_analysis::explore::{bounded_dfs, fingerprint_trace, DfsConfig, RunOutcome};
use ftc_analysis::linz::check_history;
use ftc_analysis::replay::Replayable;
use ftc_analysis::Violation;
use ftc_core::FtPolicy;
use ftc_time::{ForcedPrefix, Pct, RandomWalk, ScheduleTrace, Scheduler};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which schedule-space search to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreStrategy {
    /// Independent seeded random walks: each schedule picks uniformly at
    /// every choice point. Cheap, broad, no systematic guarantee.
    RandomWalk,
    /// Probabilistic concurrency testing: random task priorities plus
    /// `d` priority-change points per schedule — high probability of
    /// hitting any bug of depth ≤ d (Burckhardt et al.).
    Pct {
        /// Priority-change points per schedule.
        d: usize,
    },
    /// Bounded depth-first enumeration of the schedule tree with
    /// partial-order-reduction-lite pruning.
    Dfs,
}

impl fmt::Display for ExploreStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreStrategy::RandomWalk => write!(f, "random-walk"),
            ExploreStrategy::Pct { d } => write!(f, "pct-d{d}"),
            ExploreStrategy::Dfs => write!(f, "dfs"),
        }
    }
}

/// What one exploration covered, across every strategy.
pub struct ExploreSummary {
    /// Strategy explored with.
    pub strategy: ExploreStrategy,
    /// Schedules executed.
    pub runs: usize,
    /// Choice points recorded across all runs.
    pub choice_points: u64,
    /// Distinct execution fingerprints seen (0 when fingerprinting was
    /// off, i.e. non-DFS smoke runs without tracing).
    pub distinct: usize,
    /// Violating runs: `(campaign verdict, replayable schedule file)`.
    pub violations: Vec<(String, String)>,
}

impl ExploreSummary {
    /// True when every explored schedule kept the invariants.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ExploreSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "explore[{}]: {} schedule(s), {} choice point(s), {} distinct, {} violation(s)",
            self.strategy,
            self.runs,
            self.choice_points,
            self.distinct,
            self.violations.len()
        )
    }
}

/// Deterministic one-line verdict for an explored campaign run: seed,
/// policy and the invariant violations (empty ⇒ pass). Latency fields
/// are deliberately excluded — under a virtual clock they are
/// deterministic too, but the verdict is what replay must reproduce and
/// shorter is easier to eyeball.
fn run_verdict(report: &crate::chaos::CampaignReport) -> String {
    format!(
        "seed={} policy={:?} reads={} aborted={} violations=[{}]",
        report.seed,
        report.policy,
        report.reads_attempted,
        report.aborted,
        report.violations.join("; ")
    )
}

/// Explore one campaign's schedule space under `strategy`, asserting the
/// chaos invariants under every schedule. `schedules` bounds the run
/// count (for DFS it is the `max_runs` budget; `depth` bounds where new
/// branches open).
pub fn explore_campaign(
    policy: FtPolicy,
    plan: &ChaosPlan,
    opts: CampaignOptions,
    strategy: ExploreStrategy,
    schedules: usize,
    depth: usize,
    seed: u64,
) -> ExploreSummary {
    match strategy {
        ExploreStrategy::RandomWalk | ExploreStrategy::Pct { .. } => {
            let mut summary = ExploreSummary {
                strategy,
                runs: 0,
                choice_points: 0,
                distinct: 0,
                violations: Vec::new(),
            };
            let mut seen = std::collections::HashSet::new();
            let opts = CampaignOptions {
                trace: true,
                ..opts
            };
            for i in 0..schedules {
                let run_seed = seed.wrapping_add(i as u64);
                let boxed: Box<dyn Scheduler> = match strategy {
                    ExploreStrategy::Pct { d } => Box::new(Pct::new(run_seed, d, 1 << 16)),
                    _ => Box::new(RandomWalk::new(run_seed)),
                };
                let (report, sched, trace, _) = run_campaign_explored(policy, plan, opts, boxed);
                summary.runs += 1;
                summary.choice_points += sched.len() as u64;
                if let Some(t) = &trace {
                    if seen.insert(fingerprint_trace(t)) {
                        summary.distinct += 1;
                    }
                }
                if !report.passed() && !report.aborted {
                    let file = Replayable::from_schedule(&sched, &strategy.to_string(), run_seed)
                        .to_text();
                    summary.violations.push((run_verdict(&report), file));
                }
            }
            summary
        }
        ExploreStrategy::Dfs => {
            let opts = CampaignOptions {
                trace: true,
                ..opts
            };
            let dfs = bounded_dfs(
                |prefix| {
                    let (report, sched, trace, _) = run_campaign_explored(
                        policy,
                        plan,
                        opts,
                        Box::new(ForcedPrefix::new(prefix)),
                    );
                    let fingerprint = trace.as_deref().map(fingerprint_trace);
                    (
                        sched,
                        RunOutcome {
                            ok: report.passed() || report.aborted,
                            report: run_verdict(&report),
                            fingerprint,
                        },
                    )
                },
                &DfsConfig {
                    max_runs: schedules,
                    depth,
                    stop_on_violation: true,
                },
            );
            ExploreSummary {
                strategy,
                runs: dfs.runs,
                choice_points: dfs.choice_points,
                distinct: dfs.distinct,
                violations: dfs
                    .violations
                    .iter()
                    .map(|v| {
                        (
                            v.report.clone(),
                            ftc_analysis::explore::schedule_file(v, "dfs", seed),
                        )
                    })
                    .collect(),
            }
        }
    }
}

/// The seeded atomicity bug behind `chaos --explore --sabotage-atomicity`:
/// two flush tasks wake at the same virtual instant and update a shared
/// counter — one atomically, one with a check-then-act split across a
/// yield. Spawn-order FIFO always runs the atomic task first and hides
/// the lost update; only a schedule that runs the split task's read
/// before the atomic increment loses one. Returns the recorded schedule
/// and a deterministic verdict line.
pub fn seeded_atomicity_bug(prefix: Vec<u32>) -> (ScheduleTrace, RunOutcome) {
    let (total, trace) =
        ftc_time::with_virtual_sched(Box::new(ForcedPrefix::new(prefix)), |clock| {
            let cell = Arc::new(AtomicU64::new(0));
            let c1 = clock.clone();
            let cell1 = Arc::clone(&cell);
            let safe = clock.spawn("flush-atomic", move || {
                c1.sleep(Duration::from_millis(1));
                // ordering: Relaxed — the cooperative driver runs one
                // task at a time; the atomic exists for the shared-cell
                // shape, not real parallelism.
                cell1.fetch_add(1, Ordering::Relaxed);
            });
            let c2 = clock.clone();
            let cell2 = Arc::clone(&cell);
            let racy = clock.spawn("flush-split", move || {
                c2.sleep(Duration::from_millis(1));
                // ordering: Relaxed — see above, single running task.
                let read = cell2.load(Ordering::Relaxed);
                c2.sleep(Duration::from_nanos(1)); // the seeded bug: yield inside the RMW
                                                   // ordering: Relaxed — see above, single running task.
                cell2.store(read + 1, Ordering::Relaxed);
            });
            match (safe, racy) {
                (Ok(a), Ok(b)) => {
                    if a.join().is_err() || b.join().is_err() {
                        return u64::MAX;
                    }
                }
                _ => return u64::MAX,
            }
            // ordering: Relaxed — both writers joined; only reader left.
            cell.load(Ordering::Relaxed)
        });
    (
        trace,
        RunOutcome {
            ok: total == 2,
            report: format!("sabotage-atomicity: flushed={total} (expect 2)"),
            fingerprint: None,
        },
    )
}

/// Self-test: the explorer must find the seeded atomicity bug (which
/// FIFO never exhibits), emit a schedule file, and that schedule must
/// replay to a byte-identical verdict and re-record the identical
/// schedule. Returns `(schedule file text, violating verdict)`.
pub fn sabotage_atomicity() -> Result<(String, String), String> {
    // FIFO (empty prefix) must hide the bug, or the test proves nothing.
    let (_, fifo) = seeded_atomicity_bug(Vec::new());
    if !fifo.ok {
        return Err(format!(
            "seeded bug fired under FIFO — not schedule-dependent: {}",
            fifo.report
        ));
    }
    let dfs = bounded_dfs(seeded_atomicity_bug, &DfsConfig::default());
    let Some(v) = dfs.violations.first() else {
        return Err(format!(
            "explorer failed to find the seeded atomicity bug ({dfs})"
        ));
    };
    // Byte-identical replay: force the recorded choices, compare verdict
    // and re-recorded schedule.
    let forced: Vec<u32> = v.schedule.choices.iter().map(|&(c, _)| c).collect();
    let (trace2, again) = seeded_atomicity_bug(forced);
    if again.report != v.report {
        return Err(format!(
            "replay diverged: explorer saw {:?}, replay saw {:?}",
            v.report, again.report
        ));
    }
    if trace2 != v.schedule {
        return Err(format!(
            "replay re-recorded a different schedule: {} vs {}",
            trace2.render(),
            v.schedule.render()
        ));
    }
    Ok((
        ftc_analysis::explore::schedule_file(v, "dfs", 0),
        v.report.clone(),
    ))
}

/// Parse a schedule file (the text [`sabotage_atomicity`] /
/// [`explore_campaign`] emit) back into the forced choice list it
/// replays with.
pub fn parse_schedule_file(text: &str) -> Result<Vec<u32>, String> {
    let r = Replayable::parse(text)?;
    if r.kind != "schedule" {
        return Err(format!("replay file is a {:?}, not a schedule", r.kind));
    }
    Ok(r.schedule_trace()?
        .choices
        .iter()
        .map(|&(c, _)| c)
        .collect())
}

/// One linearizability sweep over many campaigns.
pub struct LinzSummary {
    /// Campaigns run with history recording on.
    pub campaigns: usize,
    /// Total ops checked across all histories.
    pub ops: usize,
    /// Total reads / writes / epoch bumps.
    pub reads: usize,
    /// Writes (including t=0 dataset seeds).
    pub writes: usize,
    /// Ring-epoch bumps.
    pub bumps: usize,
    /// Reads exempted via the hinted-handoff exception.
    pub handoff_exempt: usize,
    /// Key partitions whose search hit its budget.
    pub inconclusive: usize,
    /// Per-campaign linearizability violations, rendered.
    pub violations: Vec<String>,
    /// Campaigns whose *chaos invariants* fired (not a linz violation,
    /// but a sweep with broken campaigns proves less).
    pub campaign_failures: Vec<String>,
}

impl LinzSummary {
    /// True when no history had a linearizability violation and every
    /// campaign kept its invariants.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.campaign_failures.is_empty()
    }
}

impl fmt::Display for LinzSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "linz sweep: {} campaign(s), {} op(s) ({} read / {} write / {} bump, \
             {} handoff-exempt), {} inconclusive partition(s), {} linz violation(s), \
             {} campaign failure(s)",
            self.campaigns,
            self.ops,
            self.reads,
            self.writes,
            self.bumps,
            self.handoff_exempt,
            self.inconclusive,
            self.violations.len(),
            self.campaign_failures.len()
        )
    }
}

/// The campaign mix one linz sweep covers: the three named recovery
/// scenarios (kill-during-recache, double failure, revive-during-recache)
/// under proactive recovery, then generated plans cycling recovery mode
/// lazy → proactive → adaptive, all under `RingRecache` (the policy whose
/// reads must always succeed, so histories are dense).
fn linz_plan_mix(count: usize, base_seed: u64) -> Vec<(ChaosPlan, RecoveryMode)> {
    let mut mix = vec![
        (
            ChaosPlan::scenario_failure_during_recache(base_seed),
            RecoveryMode::Proactive,
        ),
        (
            ChaosPlan::scenario_double_failure(base_seed.wrapping_add(1)),
            RecoveryMode::Proactive,
        ),
        (
            ChaosPlan::scenario_revive_during_recache(base_seed.wrapping_add(2)),
            RecoveryMode::Proactive,
        ),
    ];
    while mix.len() < count {
        let i = mix.len() as u64;
        let mode = match i % 3 {
            0 => RecoveryMode::Lazy,
            1 => RecoveryMode::Proactive,
            _ => RecoveryMode::Adaptive,
        };
        mix.push((ChaosPlan::generate(base_seed.wrapping_add(100 + i)), mode));
    }
    mix
}

/// Run `count` virtual campaigns with history recording and check every
/// history for linearizability. The mix always includes the three named
/// kill/revive scenarios and cycles lazy/proactive/adaptive recovery;
/// every campaign runs the single-flight duplicate storm
/// ([`CampaignOptions::dup_storm`]) so coalesced reads are part of the
/// checked histories.
pub fn check_linz_campaigns(count: usize, base_seed: u64) -> LinzSummary {
    let mut summary = LinzSummary {
        campaigns: 0,
        ops: 0,
        reads: 0,
        writes: 0,
        bumps: 0,
        handoff_exempt: 0,
        inconclusive: 0,
        violations: Vec::new(),
        campaign_failures: Vec::new(),
    };
    for (plan, mode) in linz_plan_mix(count, base_seed) {
        let (report, history) = run_campaign_history(
            FtPolicy::RingRecache,
            &plan,
            CampaignOptions {
                recovery: mode,
                // Duplicate readers race every kill, so the recorded
                // histories contain coalesced (follower-accepted) reads
                // and the epoch-freshness rule checks them too: a
                // follower that accepted a stale-epoch publish would
                // surface here as a linearizability violation.
                dup_storm: true,
                ..Default::default()
            },
        );
        summary.campaigns += 1;
        if !report.passed() {
            summary.campaign_failures.push(run_verdict(&report));
        }
        let linz = check_history(&history);
        summary.ops += linz.ops;
        summary.reads += linz.reads;
        summary.writes += linz.writes;
        summary.bumps += linz.bumps;
        summary.handoff_exempt += linz.handoff_exempt;
        summary.inconclusive += linz.inconclusive;
        for v in &linz.violations {
            summary
                .violations
                .push(format!("seed={} mode={mode}: {v}", plan.seed));
        }
    }
    summary
}

/// Self-test: record one clean kill/recache campaign history, forge a
/// stale-epoch read into it, and require the checker to flag exactly the
/// forgery. Returns the flagged violation, rendered.
pub fn sabotage_linz(seed: u64) -> Result<String, String> {
    let (report, mut history) = run_campaign_history(
        FtPolicy::RingRecache,
        &ChaosPlan::scenario_failure_during_recache(seed),
        CampaignOptions {
            recovery: RecoveryMode::Proactive,
            ..Default::default()
        },
    );
    if !report.passed() {
        return Err(format!(
            "baseline campaign failed: {}",
            run_verdict(&report)
        ));
    }
    let clean = check_history(&history);
    if !clean.passed() {
        return Err(format!(
            "baseline history not clean, cannot prove the forgery is what fires: {clean}"
        ));
    }
    if !ftc_analysis::forge_stale_linz_read(&mut history) {
        return Err(
            "no forgeable read: campaign never completed an epoch bump before a read".into(),
        );
    }
    let forged = check_history(&history);
    match forged.violations.first() {
        Some(v) => Ok(v.to_string()),
        None => Err(format!("checker missed the forged stale read: {forged}")),
    }
}

/// Re-export for callers that want to attach schedule files to explore
/// violations without reaching into `ftc_analysis` directly.
pub fn violation_schedule_file(v: &Violation, strategy: &str, seed: u64) -> String {
    ftc_analysis::explore::schedule_file(v, strategy, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sabotage_atomicity_self_test_passes() {
        let (file, verdict) = sabotage_atomicity().expect("explorer must find the seeded bug");
        assert!(verdict.contains("flushed=1"), "{verdict}");
        let forced = parse_schedule_file(&file).expect("schedule file parses");
        let (_, replay) = seeded_atomicity_bug(forced);
        assert_eq!(
            replay.report, verdict,
            "schedule file replays byte-identically"
        );
    }

    #[test]
    fn linz_sweep_small_mix_is_clean() {
        let summary = check_linz_campaigns(4, 11);
        assert!(summary.passed(), "{summary}: {:?}", summary.violations);
        assert!(summary.reads > 0 && summary.writes > 0, "{summary}");
    }

    #[test]
    fn sabotage_linz_is_caught() {
        let v = sabotage_linz(5).expect("forged stale read must be flagged");
        assert!(v.contains("stale-epoch read"), "{v}");
    }

    #[test]
    fn random_walk_explore_smoke_holds_invariants() {
        let plan = ChaosPlan::scenario_failure_during_recache(3);
        let summary = explore_campaign(
            FtPolicy::RingRecache,
            &plan,
            CampaignOptions {
                recovery: RecoveryMode::Proactive,
                ..Default::default()
            },
            ExploreStrategy::RandomWalk,
            3,
            16,
            7,
        );
        assert_eq!(summary.runs, 3);
        assert!(summary.choice_points > 0, "{summary}");
        assert!(
            summary.passed(),
            "{summary}: {:?}",
            summary.violations.first().map(|(v, _)| v)
        );
    }
}
