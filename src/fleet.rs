//! Shared plumbing for the `ftc-server` / `ftc-client` binaries: a tiny
//! flag parser, deterministic dataset staging, exact percentile math for
//! the loopback bench, and hand-rolled JSON emission (the serde shim has
//! no serializer, and the bench output is a flat document anyway).
//!
//! Everything here is pure and unit-tested; the binaries stay thin
//! wrappers that wire these helpers to a [`ftc_wire::TcpTransport`].

use bytes::Bytes;
use ftc_storage::{synth_bytes, Pfs};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parsed command line: `--key value` pairs plus bare `--flag` switches.
///
/// The binaries have a dozen options between them; pulling in an argument
/// parser for that would be the only registry dependency in the tree, so
/// this stays hand-rolled. Unknown keys are an error (callers list what
/// they accept), which catches typos like `--peer` for `--peers`.
#[derive(Debug, Default)]
pub struct Args {
    vals: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `argv` (without the program name). `keys` take a value,
    /// `switches` do not. Errors on unknown options, a missing value, or
    /// a positional argument.
    pub fn parse(
        argv: impl IntoIterator<Item = String>,
        keys: &[&str],
        switches: &[&str],
    ) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument: {arg}"));
            };
            if switches.contains(&name) {
                out.flags.push(name.to_string());
            } else if keys.contains(&name) {
                match it.next() {
                    Some(v) => {
                        out.vals.insert(name.to_string(), v);
                    }
                    None => return Err(format!("--{name} needs a value")),
                }
            } else {
                return Err(format!("unknown option: --{name}"));
            }
        }
        Ok(out)
    }

    /// The value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.vals.get(key).map(String::as_str)
    }

    /// The value of `--key`, or an error naming it.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    /// Parse `--key` as `T`, with a default when absent.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Whether the bare `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Deterministic dataset paths: `{prefix}/f00000 … f{count-1:05}`.
///
/// Every process in a fleet derives the identical list independently, so
/// no staging coordination (or shared filesystem) is needed: the bytes of
/// each file are a pure function of its path via [`synth_bytes`].
pub fn dataset_paths(prefix: &str, count: usize) -> Vec<String> {
    (0..count).map(|i| format!("{prefix}/f{i:05}")).collect()
}

/// Stage the synthetic dataset into `pfs` and return the paths.
pub fn stage_dataset(pfs: &Pfs, prefix: &str, count: usize, size: usize) -> Vec<String> {
    let paths = dataset_paths(prefix, count);
    for p in &paths {
        pfs.stage(p, synth_bytes(p, size));
    }
    paths
}

/// One file's worth of synthetic bytes (re-exported shape for binaries).
pub fn synth_file(path: &str, size: usize) -> Bytes {
    synth_bytes(path, size)
}

/// Parse a `--stage` spec list: `PREFIX:COUNT:SIZE[,PREFIX:COUNT:SIZE…]`.
/// Lets one `ftc-server` host several datasets (e.g. the three bench
/// sizes) without restarts.
pub fn parse_stage_specs(s: &str) -> Result<Vec<(String, usize, usize)>, String> {
    s.split(',')
        .map(|part| {
            let part = part.trim();
            let fields: Vec<&str> = part.split(':').collect();
            let [prefix, count, size] = fields.as_slice() else {
                return Err(format!("bad stage spec {part:?}: want PREFIX:COUNT:SIZE"));
            };
            if prefix.is_empty() {
                return Err(format!("bad stage spec {part:?}: empty prefix"));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("bad stage spec {part:?}: count {count:?}"))?;
            let size: usize = size
                .parse()
                .map_err(|_| format!("bad stage spec {part:?}: size {size:?}"))?;
            Ok(((*prefix).to_string(), count, size))
        })
        .collect()
}

/// Exact percentile of a sample set: the value at rank `ceil(q·n)`
/// (nearest-rank definition, via the shared [`ftc_obs::nearest_rank`]),
/// 0 for an empty set. `sorted` must be ascending — debug builds assert
/// it.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    ftc_obs::nearest_rank(sorted.len(), q)
        .map(|i| sorted[i])
        .unwrap_or(0)
}

/// A flat JSON document builder — objects, arrays, strings, numbers.
/// Covers exactly what `BENCH_tcp_loopback.json` and the client summary
/// need; nested values are composed by splicing pre-rendered JSON.
#[derive(Debug, Default)]
pub struct Json {
    fields: Vec<(String, String)>,
}

impl Json {
    /// Start an empty object.
    pub fn obj() -> Self {
        Json::default()
    }

    /// Add a string field (escaped).
    pub fn s(mut self, key: &str, val: &str) -> Self {
        self.fields.push((key.to_string(), json_string(val)));
        self
    }

    /// Add an integer field.
    pub fn u(mut self, key: &str, val: u64) -> Self {
        self.fields.push((key.to_string(), val.to_string()));
        self
    }

    /// Add a float field (rendered with two decimals — throughput and
    /// rates, not identities).
    pub fn f(mut self, key: &str, val: f64) -> Self {
        self.fields.push((key.to_string(), format!("{val:.2}")));
        self
    }

    /// Add a pre-rendered JSON value (object, array) verbatim.
    pub fn raw(mut self, key: &str, val: String) -> Self {
        self.fields.push((key.to_string(), val));
        self
    }

    /// Render the object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {v}", json_string(k));
        }
        out.push('}');
        out
    }
}

/// Render a list of pre-rendered JSON values as an array.
pub fn json_array(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

/// Escape a string for JSON.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_storage::verify_synth;

    #[test]
    fn args_parse_values_flags_and_errors() {
        let a = Args::parse(
            ["--node", "2", "--prom", "--peers", "a:1,b:2"]
                .iter()
                .map(|s| s.to_string()),
            &["node", "peers"],
            &["prom"],
        )
        .expect("parse");
        assert_eq!(a.get("node"), Some("2"));
        assert_eq!(a.required("peers").expect("peers"), "a:1,b:2");
        assert!(a.flag("prom"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.parsed_or("node", 0u32).expect("u32"), 2);
        assert_eq!(a.parsed_or("missing", 7u32).expect("default"), 7);

        assert!(Args::parse(["--bogus".into()], &["node"], &[]).is_err());
        assert!(Args::parse(["--node".into()], &["node"], &[]).is_err());
        assert!(Args::parse(["stray".into()], &["node"], &[]).is_err());
        assert!(Args::parse(["--node".into(), "x".into()], &["node"], &[])
            .expect("parse")
            .parsed_or("node", 0u32)
            .is_err());
    }

    #[test]
    fn staged_dataset_is_deterministic_and_verifiable() {
        let pfs = Pfs::in_memory();
        let paths = stage_dataset(&pfs, "train", 4, 512);
        assert_eq!(paths.len(), 4);
        assert_eq!(paths[0], "train/f00000");
        // A second process staging independently produces identical bytes.
        for p in &paths {
            let data = pfs.read(p).expect("staged");
            assert_eq!(data, synth_file(p, 512));
            assert!(verify_synth(p, &data));
        }
    }

    #[test]
    fn stage_specs_parse_and_reject() {
        assert_eq!(
            parse_stage_specs("train:64:65536, bench4096:32:4096").expect("parse"),
            vec![
                ("train".to_string(), 64, 65536),
                ("bench4096".to_string(), 32, 4096)
            ]
        );
        assert!(parse_stage_specs("train:64").is_err());
        assert!(parse_stage_specs(":64:100").is_err());
        assert!(parse_stage_specs("t:x:100").is_err());
        assert!(parse_stage_specs("t:64:y").is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.5), 42);
    }

    #[test]
    fn json_renders_escaped_flat_documents() {
        let doc = Json::obj()
            .s("name", "a\"b\\c\n")
            .u("reads", 31)
            .f("rps", 1234.5)
            .raw("sizes", json_array(&["1".into(), "2".into()]))
            .render();
        assert_eq!(
            doc,
            r#"{"name": "a\"b\\c\n", "reads": 31, "rps": 1234.50, "sizes": [1, 2]}"#
        );
    }
}
