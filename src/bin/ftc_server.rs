//! `ftc-server` — one FT-Cache node over real TCP sockets.
//!
//! Hosts the full server stack of a cache node: the NVMe LRU tier, the
//! PFS model (staged synthetically — every process derives the identical
//! dataset from the paths alone, so a fleet needs no shared storage), the
//! data mover, and the request brain shared verbatim with the in-process
//! simulated clusters. The observability exposition (`--prom`) is served
//! over the same socket listener via the wire protocol's `ObsScrape`
//! frame, not a separate HTTP port.
//!
//! ```text
//! ftc-server --node 0 --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402 \
//!     [--nvme-mb 256] [--nvme-shards 16] [--files 64] [--size 65536] [--prefix train] \
//!     [--stage PREFIX:COUNT:SIZE,...] [--prom] \
//!     [--armored [--queue N] [--ttl-ms MS]]
//! ```
//!
//! `--stage` stages several datasets at once (the bench needs its three
//! value sizes); when absent, one dataset from `--prefix/--files/--size`.
//! `--armored` turns on server-side admission control: a bounded
//! priority queue (`--queue`, default 64) with deadline-aware shedding
//! against the assumed client deadline (`--ttl-ms`, default 500) —
//! overload gets a typed `Overloaded` reply instead of unbounded queueing.
//!
//! Prints `READY node=<n> addr=<addr>` on stdout once the listener is
//! bound, then serves until killed. SIGTERM shuts down gracefully: the
//! listener closes (in-flight requests finish, new connections are
//! refused), the data mover drains, and a final
//! `DRAINED node=<n> hits=<h> misses=<m> sheds=<c>+<d> recached=<r>`
//! snapshot is printed before exit 0. SIGKILL remains the crash path the
//! loopback test exercises.

use ft_cache::fleet::{parse_stage_specs, stage_dataset, Args};
use ftc_core::{AdmissionConfig, CacheRequest, CacheResponse, ServerHandle};
use ftc_hashring::NodeId;
use ftc_obs::{render_prometheus, ObsHub, Sample};
use ftc_storage::{NvmeCache, Pfs};
use ftc_time::ClockHandle;
use ftc_wire::tcp::{parse_peers, TcpConfig, TcpTransport};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: ftc-server --node N --peers HOST:PORT,... \
[--nvme-mb MB] [--nvme-shards N] [--files N] [--size BYTES] [--prefix NAME] \
[--stage PREFIX:COUNT:SIZE,...] [--prom] [--armored [--queue N] [--ttl-ms MS]]";

/// Set by the SIGTERM handler; the main loop polls it and drains.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGTERM: i32 = 15;

extern "C" {
    /// libc `signal(2)`, declared directly: the workspace carries no libc
    /// crate and a single handler installation does not justify one.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Async-signal-safe by construction: one relaxed store, nothing else.
extern "C" fn on_sigterm(_sig: i32) {
    // ordering: Relaxed — plain flag; the 50 ms poll in main bounds how
    // late the store is observed, and no other state rides on it.
    TERM_REQUESTED.store(true, Ordering::Relaxed);
}

fn die(msg: &str) -> ! {
    eprintln!("ftc-server: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args = match Args::parse(
        std::env::args().skip(1),
        &[
            "node",
            "peers",
            "nvme-mb",
            "nvme-shards",
            "files",
            "size",
            "prefix",
            "stage",
            "queue",
            "ttl-ms",
        ],
        &["prom", "armored"],
    ) {
        Ok(a) => a,
        Err(e) => die(&e),
    };
    let node = match args.required("node").and_then(|v| {
        v.parse::<u32>()
            .map_err(|_| format!("--node: cannot parse {v:?}"))
    }) {
        Ok(n) => NodeId(n),
        Err(e) => die(&e),
    };
    let peers = match args.required("peers").map(parse_peers) {
        Ok(Ok(p)) => p,
        Ok(Err(e)) => die(&format!("--peers: {e}")),
        Err(e) => die(&e),
    };
    let nvme_mb: u64 = args.parsed_or("nvme-mb", 256).unwrap_or_else(|e| die(&e));
    let nvme_shards: usize = args
        .parsed_or("nvme-shards", 16)
        .unwrap_or_else(|e| die(&e));
    let files: usize = args.parsed_or("files", 64).unwrap_or_else(|e| die(&e));
    let size: usize = args.parsed_or("size", 65_536).unwrap_or_else(|e| die(&e));
    let prefix = args.get("prefix").unwrap_or("train").to_string();
    if (node.0 as usize) >= peers.len() {
        die(&format!(
            "--node {} out of range for {} peers",
            node.0,
            peers.len()
        ));
    }

    // Stage the synthetic PFS locally. Deterministic: each server in the
    // fleet stages the identical dataset(s) from the same flags.
    let specs = match args.get("stage") {
        Some(s) => parse_stage_specs(s).unwrap_or_else(|e| die(&e)),
        None => vec![(prefix, files, size)],
    };
    let pfs = Arc::new(Pfs::in_memory());
    for (prefix, count, size) in &specs {
        stage_dataset(&pfs, prefix, *count, *size);
    }
    // Lock-striped on the real-socket path: concurrent reads from a
    // fleet of clients hash to independent shards instead of serialising
    // on one LRU lock. The capacity budget splits evenly per shard.
    let cache = Arc::new(NvmeCache::sharded(nvme_mb * 1024 * 1024, nvme_shards));

    let transport: TcpTransport<CacheRequest, CacheResponse> =
        TcpTransport::from_peer_list(&peers, TcpConfig::default());

    if args.flag("prom") {
        let hub = ObsHub::shared();
        let scrape_cache = Arc::clone(&cache);
        let scrape_pfs = Arc::clone(&pfs);
        let scrape_node = node;
        transport.set_obs_handler(Arc::new(move || {
            let mut samples = hub.registry.samples();
            let stats = scrape_cache.stats();
            let label = |s: Sample| s.with_label("node", scrape_node.0);
            samples.extend([
                label(Sample::counter("ftc_nvme_hits_total", stats.hits)),
                label(Sample::counter("ftc_nvme_misses_total", stats.misses)),
                label(Sample::counter("ftc_nvme_evictions_total", stats.evictions)),
                label(Sample::gauge(
                    "ftc_nvme_resident_bytes",
                    stats.resident_bytes as f64,
                )),
                label(Sample::gauge(
                    "ftc_nvme_resident_objects",
                    stats.resident_objects as f64,
                )),
                label(Sample::counter(
                    "ftc_pfs_reads_total",
                    scrape_pfs.total_reads(),
                )),
            ]);
            render_prometheus(&samples)
        }));
    }

    let admission = if args.flag("armored") {
        let ttl_ms: u64 = args.parsed_or("ttl-ms", 500).unwrap_or_else(|e| die(&e));
        let mut a = AdmissionConfig::armored(Duration::from_millis(ttl_ms));
        a.queue_capacity = args.parsed_or("queue", 64).unwrap_or_else(|e| die(&e));
        a
    } else {
        AdmissionConfig::default()
    };

    // The handle owns the event-loop thread; it must stay alive until the
    // graceful drain below reclaims it.
    let handle =
        match ServerHandle::spawn_on_with_admission(node, &transport, pfs, cache, admission) {
            Ok(h) => h,
            Err(e) => die(&format!("cannot start node {node}: {e}")),
        };

    // SAFETY: installs a handler that performs a single atomic store; no
    // allocation, locking, or I/O happens in signal context.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }

    println!("READY node={} addr={}", node.0, peers[node.0 as usize]);
    let _ = std::io::stdout().flush();

    // Serve until SIGTERM (graceful drain) or SIGKILL (the crash path the
    // loopback test exercises); the event loop lives on its spawned
    // thread and this thread only keeps the process alive.
    let clock = ClockHandle::wall();
    // ordering: Relaxed — paired with the handler's Relaxed store; the
    // poll interval bounds observation latency.
    while !TERM_REQUESTED.load(Ordering::Relaxed) {
        clock.sleep(Duration::from_millis(50));
    }

    // Graceful shutdown: stop accepting (the listener dies with the event
    // loop), let the reclaimed server drain its data mover, then report a
    // final snapshot so operators see what the node did with its life.
    // Best-effort writes: the parent may have closed our stdout pipe
    // already, and a drain must never panic on EPIPE.
    let (shed_capacity, shed_deadline) = handle.sheds();
    let mut out = std::io::stdout();
    match handle.shutdown() {
        Some(server) => {
            let stats = server.cache().stats();
            let _ = writeln!(
                out,
                "DRAINED node={} hits={} misses={} sheds={}+{} recached={}",
                node.0,
                stats.hits,
                stats.misses,
                shed_capacity,
                shed_deadline,
                server.files_recached(),
            );
        }
        None => {
            let _ = writeln!(out, "DRAINED node={} (event loop panicked)", node.0);
        }
    }
    let _ = out.flush();
    std::process::exit(0);
}
