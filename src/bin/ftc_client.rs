//! `ftc-client` — FT-Cache training-side client over real TCP sockets.
//!
//! Runs the identical retry / failure-detector / consistent-hash
//! placement logic the simulated clusters use — `HvacClient` is
//! backend-blind — against a live fleet of `ftc-server` processes. Reads
//! are verified against the deterministic synthetic dataset, so silent
//! corruption anywhere in the codec or framing fails loudly.
//!
//! ```text
//! ftc-client --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402 \
//!     [--epochs 3] [--files 64] [--size 65536] [--prefix train] \
//!     [--policy ring|pfs|noft] [--ttl-ms 100] [--me 100] [--no-recovery] \
//!     [--armored]
//! ```
//!
//! Per epoch it prints one `EPOCH …` line (read provenance counts,
//! failed-node set, latency percentiles); at exit one `SUMMARY {json}`
//! line. `--bench` instead runs the loopback macrobenchmark over three
//! value sizes and writes a JSON report to `--out` (or stdout).

use ft_cache::fleet::{json_array, percentile, stage_dataset, Args, Json};
use ftc_core::{
    CacheRequest, CacheResponse, FtConfig, FtPolicy, HvacClient, ReadVia, RecoveryConfig,
};
use ftc_hashring::NodeId;
use ftc_storage::{verify_synth, Pfs};
use ftc_time::ClockHandle;
use ftc_wire::tcp::{parse_peers, TcpConfig, TcpTransport};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: ftc-client --peers HOST:PORT,... [--epochs N] [--files N] \
[--size BYTES] [--prefix NAME] [--policy ring|pfs|noft] [--ttl-ms MS] [--me N] \
[--no-recovery] [--armored] [--bench] [--out PATH]";

/// Bench value sizes: small (metadata-ish), medium (the default file
/// size everywhere else in the tree), large (frame dominated by body).
const BENCH_SIZES: [usize; 3] = [4_096, 65_536, 1_048_576];

fn die(msg: &str) -> ! {
    eprintln!("ftc-client: {msg}\n{USAGE}");
    std::process::exit(2);
}

struct EpochStats {
    ok: u64,
    nvme: u64,
    server_pfs: u64,
    direct_pfs: u64,
    errors: u64,
    /// Per-read latencies in microseconds, sorted ascending.
    lat_us: Vec<u64>,
    /// Wall time for the whole epoch.
    elapsed: Duration,
}

/// Read every path once, verifying contents, timing each read.
fn run_epoch(client: &HvacClient, paths: &[String], clock: &ClockHandle) -> EpochStats {
    let mut s = EpochStats {
        ok: 0,
        nvme: 0,
        server_pfs: 0,
        direct_pfs: 0,
        errors: 0,
        lat_us: Vec::with_capacity(paths.len()),
        elapsed: Duration::ZERO,
    };
    let t0 = clock.now();
    for p in paths {
        let r0 = clock.now();
        match client.read_traced(p) {
            Ok(out) => {
                s.lat_us.push(clock.since(r0).as_micros() as u64);
                if verify_synth(p, &out.bytes) {
                    s.ok += 1;
                    match out.via {
                        ReadVia::ServerNvme(_) => s.nvme += 1,
                        ReadVia::ServerPfsFetch(_) => s.server_pfs += 1,
                        ReadVia::DirectPfs => s.direct_pfs += 1,
                    }
                } else {
                    eprintln!("ftc-client: CORRUPT read of {p}");
                    s.errors += 1;
                }
            }
            Err(e) => {
                eprintln!("ftc-client: read {p}: {e}");
                s.errors += 1;
            }
        }
    }
    s.elapsed = clock.since(t0);
    s.lat_us.sort_unstable();
    s
}

fn stats_json(s: &EpochStats) -> Json {
    let secs = s.elapsed.as_secs_f64().max(1e-9);
    Json::obj()
        .u("ok", s.ok)
        .u("errors", s.errors)
        .u("nvme", s.nvme)
        .u("server_pfs", s.server_pfs)
        .u("direct_pfs", s.direct_pfs)
        .f("reads_per_sec", (s.ok + s.errors) as f64 / secs)
        .u("p50_us", percentile(&s.lat_us, 0.50))
        .u("p99_us", percentile(&s.lat_us, 0.99))
        .u("p999_us", percentile(&s.lat_us, 0.999))
}

fn build_client(
    me: NodeId,
    transport: &TcpTransport<CacheRequest, CacheResponse>,
    pfs: Arc<Pfs>,
    policy: FtPolicy,
    ttl: Duration,
    recovery: bool,
    armored: bool,
) -> Arc<HvacClient> {
    let mut config = FtConfig::for_policy(policy);
    config.detector.ttl = ttl;
    if armored {
        // Client-side overload armor: per-node circuit breaker, token
        // retry budget, hedged reads — pairs with `ftc-server --armored`.
        config.overload = ftc_core::OverloadConfig::armored();
    }
    let client = Arc::new(HvacClient::with_transport(
        me,
        transport,
        pfs,
        transport.peer_count() as u32,
        config,
    ));
    if recovery && policy == FtPolicy::RingRecache {
        if let Err(e) = client.enable_recovery(RecoveryConfig::default()) {
            die(&format!("cannot start recovery engine: {e}"));
        }
    }
    client
}

fn main() {
    let args = match Args::parse(
        std::env::args().skip(1),
        &[
            "peers", "epochs", "files", "size", "prefix", "policy", "ttl-ms", "me", "out",
        ],
        &["bench", "no-recovery", "armored"],
    ) {
        Ok(a) => a,
        Err(e) => die(&e),
    };
    let peers = match args.required("peers").map(parse_peers) {
        Ok(Ok(p)) => p,
        Ok(Err(e)) => die(&format!("--peers: {e}")),
        Err(e) => die(&e),
    };
    let epochs: usize = args.parsed_or("epochs", 3).unwrap_or_else(|e| die(&e));
    let files: usize = args.parsed_or("files", 64).unwrap_or_else(|e| die(&e));
    let size: usize = args.parsed_or("size", 65_536).unwrap_or_else(|e| die(&e));
    let prefix = args.get("prefix").unwrap_or("train").to_string();
    let me = NodeId(args.parsed_or("me", 100u32).unwrap_or_else(|e| die(&e)));
    let ttl = Duration::from_millis(args.parsed_or("ttl-ms", 100u64).unwrap_or_else(|e| die(&e)));
    let policy = match args.get("policy").unwrap_or("ring") {
        "ring" => FtPolicy::RingRecache,
        "pfs" => FtPolicy::PfsRedirect,
        "noft" => FtPolicy::NoFt,
        other => die(&format!("--policy: unknown policy {other:?}")),
    };

    let transport: TcpTransport<CacheRequest, CacheResponse> =
        TcpTransport::from_peer_list(&peers, TcpConfig::default());
    let clock = ClockHandle::wall();

    if args.flag("bench") {
        let report = run_bench(&transport, me, policy, ttl, files, epochs, &clock);
        match args.get("out") {
            Some(path) => {
                if let Err(e) = std::fs::write(path, report + "\n") {
                    die(&format!("cannot write --out: {e}"));
                }
            }
            None => println!("{report}"),
        }
        return;
    }

    // The client stages its own PFS mirror: direct-PFS fallback reads and
    // verification both come from the same deterministic generator the
    // servers used.
    let pfs = Arc::new(Pfs::in_memory());
    let paths = stage_dataset(&pfs, &prefix, files, size);
    let client = build_client(
        me,
        &transport,
        pfs,
        policy,
        ttl,
        !args.flag("no-recovery"),
        args.flag("armored"),
    );

    let mut epoch_docs = Vec::with_capacity(epochs);
    let mut total_errors = 0;
    for e in 1..=epochs {
        let s = run_epoch(&client, &paths, &clock);
        total_errors += s.errors;
        let failed: Vec<String> = client
            .failed_nodes()
            .iter()
            .map(|n| n.0.to_string())
            .collect();
        println!(
            "EPOCH e={e} ok={} errors={} nvme={} server_pfs={} direct_pfs={} failed=[{}] p50us={} p99us={}",
            s.ok,
            s.errors,
            s.nvme,
            s.server_pfs,
            s.direct_pfs,
            failed.join(","),
            percentile(&s.lat_us, 0.50),
            percentile(&s.lat_us, 0.99),
        );
        let _ = std::io::stdout().flush();
        epoch_docs.push(stats_json(&s).u("epoch", e as u64).render());
    }

    let summary = Json::obj()
        .s("policy", policy.label())
        .u("peers", peers.len() as u64)
        .u("files", files as u64)
        .u("size_bytes", size as u64)
        .u("epochs", epochs as u64)
        .u("errors", total_errors)
        .raw("per_epoch", json_array(&epoch_docs))
        .render();
    println!("SUMMARY {summary}");
    std::process::exit(if total_errors == 0 { 0 } else { 1 });
}

/// The loopback macrobenchmark: for each value size, stage a dedicated
/// dataset, run one warm-up epoch (fills the fleet's NVMe tiers), then
/// measure `epochs` epochs of cache-hit reads.
fn run_bench(
    transport: &TcpTransport<CacheRequest, CacheResponse>,
    me: NodeId,
    policy: FtPolicy,
    ttl: Duration,
    files: usize,
    epochs: usize,
    clock: &ClockHandle,
) -> String {
    let mut size_docs = Vec::new();
    for (i, &size) in BENCH_SIZES.iter().enumerate() {
        let prefix = format!("bench{size}");
        let pfs = Arc::new(Pfs::in_memory());
        let paths = stage_dataset(&pfs, &prefix, files, size);
        // A distinct client identity per size keeps detector state and
        // placement caches from leaking across measurements.
        let client = build_client(
            NodeId(me.0 + i as u32),
            transport,
            pfs,
            policy,
            ttl,
            false,
            false,
        );
        let warm = run_epoch(&client, &paths, clock);
        if warm.errors > 0 {
            die(&format!("bench warm-up saw {} errors", warm.errors));
        }
        let mut lat_us = Vec::with_capacity(files * epochs);
        let mut reads = 0u64;
        let mut errors = 0u64;
        let t0 = clock.now();
        for _ in 0..epochs {
            let s = run_epoch(&client, &paths, clock);
            reads += s.ok;
            errors += s.errors;
            lat_us.extend_from_slice(&s.lat_us);
        }
        let secs = clock.since(t0).as_secs_f64().max(1e-9);
        lat_us.sort_unstable();
        size_docs.push(
            Json::obj()
                .u("value_bytes", size as u64)
                .u("reads", reads)
                .u("errors", errors)
                .f("reads_per_sec", reads as f64 / secs)
                .f("mb_per_sec", (reads * size as u64) as f64 / secs / 1e6)
                .u("p50_us", percentile(&lat_us, 0.50))
                .u("p99_us", percentile(&lat_us, 0.99))
                .u("p999_us", percentile(&lat_us, 0.999))
                .render(),
        );
    }
    Json::obj()
        .s("bench", "tcp_loopback")
        .s("transport", "ftc-wire tcp, length-prefixed frames")
        .s("policy", policy.label())
        .u("peers", transport.peer_count() as u64)
        .u("files_per_size", files as u64)
        .u("measured_epochs", epochs as u64)
        .raw("sizes", json_array(&size_docs))
        .render()
}
