//! Consistent hash ring with virtual nodes — the paper's chosen placement
//! (§IV-B, Fig. 4).
//!
//! Both nodes and keys are hashed onto a logical circle (the full `u64`
//! space). A key is owned by the first node token at or clockwise after the
//! key's hash. Each physical node contributes `vnodes` tokens so that its
//! responsibility is spread around the circle; the paper found `vnodes =
//! 100` optimal on Frontier (Fig. 6(b)).
//!
//! On node failure only the failed node's arcs are re-assigned — to the
//! next clockwise token — which is the theoretical minimum amount of data
//! movement. The original implementation uses C++ `std::map`; this one uses
//! `BTreeMap`, giving the same `O(log T)` lookup/update where `T` is the
//! total token count.

use crate::hash::{key_hash, splitmix64};
use crate::types::{NodeId, Placement, PlacementError};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Consistent hash ring with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// token -> owning physical node. The BTreeMap order *is* the ring
    /// order; wrap-around is handled at lookup.
    tokens: BTreeMap<u64, NodeId>,
    /// Live membership.
    members: BTreeSet<NodeId>,
    /// Virtual nodes per physical node.
    vnodes: u32,
    /// Seed mixed into token derivation, so independent rings (e.g. test
    /// trials) can be decorrelated while staying deterministic.
    seed: u64,
}

/// Paper's virtual-node count per physical node ("The virtual node count is
/// set to 100 per physical node", §V-A).
pub const DEFAULT_VNODES: u32 = 100;

impl HashRing {
    /// Empty ring with the given virtual-node multiplicity.
    pub fn new(vnodes: u32) -> Self {
        Self::with_seed(vnodes, 0)
    }

    /// Empty ring with an explicit token-derivation seed.
    pub fn with_seed(vnodes: u32, seed: u64) -> Self {
        assert!(vnodes >= 1, "a node must map to at least one token");
        HashRing {
            tokens: BTreeMap::new(),
            members: BTreeSet::new(),
            vnodes,
            seed,
        }
    }

    /// Ring pre-populated with nodes `0..n`.
    pub fn with_nodes(n: u32, vnodes: u32) -> Self {
        let mut ring = Self::new(vnodes);
        for i in 0..n {
            let fresh = ring.add_node(NodeId(i)).is_ok();
            debug_assert!(fresh, "fresh ids are unique");
        }
        ring
    }

    /// The token for a given (node, replica) pair.
    ///
    /// Derived via splitmix64 over a value that encodes node id, replica
    /// index and the ring seed — stable, collision-resistant in practice,
    /// and far cheaper than hashing formatted strings.
    #[inline]
    fn token(&self, node: NodeId, replica: u32) -> u64 {
        splitmix64(
            (u64::from(node.0) << 32 | u64::from(replica)).wrapping_add(self.seed.rotate_left(17)),
        )
    }

    /// Virtual-node multiplicity.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Total number of tokens currently on the ring.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Owner of a raw 64-bit key hash: first token clockwise from `h`
    /// (wrapping to the ring start).
    #[inline]
    pub fn owner_of_hash(&self, h: u64) -> Option<NodeId> {
        self.tokens
            .range(h..)
            .next()
            .or_else(|| self.tokens.iter().next())
            .map(|(_, &node)| node)
    }

    /// Owner of `h` if `excluded` were absent, without mutating the ring.
    ///
    /// Used by the load-redistribution simulation (Fig. 6(b)) and by the
    /// replication option (successor distinct from the primary).
    pub fn owner_of_hash_excluding(&self, h: u64, excluded: NodeId) -> Option<NodeId> {
        if self.members.len() <= 1 && self.members.contains(&excluded) {
            return None;
        }
        let found = self
            .tokens
            .range(h..)
            .find(|(_, &n)| n != excluded)
            .map(|(_, &n)| n);
        found.or_else(|| {
            self.tokens
                .iter()
                .find(|(_, &n)| n != excluded)
                .map(|(_, &n)| n)
        })
    }

    /// The first `k` *distinct* nodes clockwise from the key's hash.
    ///
    /// `replicas("f", 2)` yields the primary owner and the node that would
    /// take over if the primary failed — the basis of the optional
    /// replicated-caching extension.
    pub fn replicas(&self, key: &str, k: usize) -> Vec<NodeId> {
        let h = key_hash(key);
        let mut out = Vec::with_capacity(k);
        for (_, &n) in self.tokens.range(h..).chain(self.tokens.range(..h)) {
            if !out.contains(&n) {
                out.push(n);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of the ring circumference owned by `node` (0.0..=1.0).
    ///
    /// With enough virtual nodes this approaches `1/len()`, which is the
    /// load-balance argument of §IV-B.
    pub fn arc_fraction(&self, node: NodeId) -> f64 {
        if self.tokens.is_empty() {
            return 0.0;
        }
        if self.tokens.values().all(|&n| n == node) {
            return 1.0;
        }
        let mut owned: u128 = 0;
        let mut prev_token: Option<u64> = None;
        // Non-empty was checked above; destructure instead of unwrapping.
        let (Some(&first), Some(&last)) =
            (self.tokens.keys().next(), self.tokens.keys().next_back())
        else {
            return 0.0;
        };
        for (&t, &n) in &self.tokens {
            if let Some(p) = prev_token {
                if n == node {
                    owned += u128::from(t - p);
                }
            }
            prev_token = Some(t);
        }
        // Wrap-around arc (last..MAX, MIN..first) belongs to the first token.
        if self.tokens[&first] == node {
            owned += u128::from(u64::MAX - last) + u128::from(first) + 1;
        }
        owned as f64 / (u128::from(u64::MAX) + 1) as f64
    }

    /// Count how many of `keys` each live node owns.
    pub fn load_of_keys<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a str>,
    ) -> BTreeMap<NodeId, u64> {
        let mut counts: BTreeMap<NodeId, u64> = self.members.iter().map(|&n| (n, 0)).collect();
        for k in keys {
            if let Some(owner) = self.owner_of_hash(key_hash(k)) {
                *counts.entry(owner).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Simulate the failure of `failed`: for every key hash in `hashes`
    /// owned by `failed`, report which surviving node inherits it.
    ///
    /// Returns `(receiver -> inherited key count)`. This is the inner loop
    /// of the Fig. 6(b) load-redistribution experiment and does not mutate
    /// the ring.
    pub fn failover_distribution(
        &self,
        failed: NodeId,
        hashes: impl IntoIterator<Item = u64>,
    ) -> BTreeMap<NodeId, u64> {
        let mut received: BTreeMap<NodeId, u64> = BTreeMap::new();
        for h in hashes {
            if self.owner_of_hash(h) == Some(failed) {
                if let Some(r) = self.owner_of_hash_excluding(h, failed) {
                    *received.entry(r).or_insert(0) += 1;
                }
            }
        }
        received
    }
}

impl Placement for HashRing {
    #[inline]
    fn owner(&self, key: &str) -> Option<NodeId> {
        self.owner_of_hash(key_hash(key))
    }

    fn remove_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if !self.members.remove(&node) {
            return Err(PlacementError::UnknownNode(node));
        }
        for r in 0..self.vnodes {
            let t = self.token(node, r);
            // Another node's token may collide (astronomically unlikely);
            // only remove tokens that are actually ours.
            if self.tokens.get(&t) == Some(&node) {
                self.tokens.remove(&t);
            }
        }
        Ok(())
    }

    fn add_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if !self.members.insert(node) {
            return Err(PlacementError::AlreadyMember(node));
        }
        for r in 0..self.vnodes {
            let t = self.token(node, r);
            if let Entry::Vacant(e) = self.tokens.entry(t) {
                e.insert(node);
            }
            // On collision the earlier owner keeps the token: deterministic
            // and harmless (the node simply has one fewer vnode).
        }
        Ok(())
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.members.iter().copied().collect()
    }

    fn len(&self) -> usize {
        self.members.len()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    fn successors(&self, key: &str, k: usize) -> Vec<NodeId> {
        self.replicas(key, k)
    }

    fn strategy_name(&self) -> &'static str {
        "hash-ring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("train/sample_{i:07}.tfrecord"))
            .collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(4);
        assert_eq!(ring.owner("anything"), None);
        assert!(ring.is_empty());
        assert_eq!(ring.token_count(), 0);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::with_nodes(1, 8);
        for k in keys(100) {
            assert_eq!(ring.owner(&k), Some(NodeId(0)));
        }
        assert!((ring.arc_fraction(NodeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_is_deterministic() {
        let a = HashRing::with_nodes(16, 100);
        let b = HashRing::with_nodes(16, 100);
        for k in keys(500) {
            assert_eq!(a.owner(&k), b.owner(&k));
        }
    }

    #[test]
    fn different_seeds_give_different_layouts() {
        let mut a = HashRing::with_seed(100, 1);
        let mut b = HashRing::with_seed(100, 2);
        for i in 0..16 {
            a.add_node(NodeId(i)).unwrap();
            b.add_node(NodeId(i)).unwrap();
        }
        let ks = keys(500);
        let moved = ks.iter().filter(|k| a.owner(k) != b.owner(k)).count();
        assert!(
            moved > 250,
            "seeds should decorrelate layouts, moved={moved}"
        );
    }

    #[test]
    fn removal_moves_only_failed_nodes_keys() {
        let mut ring = HashRing::with_nodes(8, 100);
        let ks = keys(2000);
        let before: Vec<Option<NodeId>> = ks.iter().map(|k| ring.owner(k)).collect();
        ring.remove_node(NodeId(3)).unwrap();
        for (k, owner_before) in ks.iter().zip(before) {
            let owner_after = ring.owner(k);
            if owner_before != Some(NodeId(3)) {
                assert_eq!(owner_after, owner_before, "survivor key must not move: {k}");
            } else {
                assert_ne!(owner_after, Some(NodeId(3)));
                assert!(owner_after.is_some());
            }
        }
    }

    #[test]
    fn removal_matches_excluding_preview() {
        let mut ring = HashRing::with_nodes(8, 50);
        let ks = keys(1000);
        let preview: Vec<Option<NodeId>> = ks
            .iter()
            .map(|k| ring.owner_of_hash_excluding(key_hash(k), NodeId(5)))
            .collect();
        ring.remove_node(NodeId(5)).unwrap();
        for (k, p) in ks.iter().zip(preview) {
            assert_eq!(ring.owner(k), p);
        }
    }

    #[test]
    fn add_back_restores_original_assignment() {
        let mut ring = HashRing::with_nodes(8, 100);
        let ks = keys(1000);
        let before: Vec<Option<NodeId>> = ks.iter().map(|k| ring.owner(k)).collect();
        ring.remove_node(NodeId(2)).unwrap();
        ring.add_node(NodeId(2)).unwrap();
        let after: Vec<Option<NodeId>> = ks.iter().map(|k| ring.owner(k)).collect();
        assert_eq!(before, after, "rejoin under same id must restore placement");
    }

    #[test]
    fn vnodes_improve_balance() {
        let ks = keys(20_000);
        let imbalance = |vnodes: u32| {
            let ring = HashRing::with_nodes(16, vnodes);
            let loads = ring.load_of_keys(ks.iter().map(String::as_str));
            let max = *loads.values().max().unwrap() as f64;
            let mean = 20_000.0 / 16.0;
            max / mean
        };
        let few = imbalance(1);
        let many = imbalance(200);
        assert!(
            many < few,
            "200 vnodes should balance better than 1: {many:.3} vs {few:.3}"
        );
        assert!(
            many < 1.5,
            "with 200 vnodes max/mean load should be <1.5, got {many:.3}"
        );
    }

    #[test]
    fn arc_fractions_sum_to_one() {
        let ring = HashRing::with_nodes(10, 64);
        let total: f64 = (0..10).map(|i| ring.arc_fraction(NodeId(i))).sum();
        assert!((total - 1.0).abs() < 1e-9, "total arc = {total}");
    }

    #[test]
    fn replicas_are_distinct_and_start_with_owner() {
        let ring = HashRing::with_nodes(8, 100);
        for k in keys(200) {
            let reps = ring.replicas(&k, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(Some(reps[0]), ring.owner(&k));
            assert_ne!(reps[0], reps[1]);
            assert_ne!(reps[1], reps[2]);
            assert_ne!(reps[0], reps[2]);
        }
    }

    #[test]
    fn replicas_capped_by_membership() {
        let ring = HashRing::with_nodes(2, 10);
        assert_eq!(ring.replicas("k", 5).len(), 2);
    }

    #[test]
    fn failover_distribution_counts_only_failed_keys() {
        let ring = HashRing::with_nodes(8, 100);
        let ks = keys(4000);
        let hashes: Vec<u64> = ks.iter().map(|k| key_hash(k)).collect();
        let failed = NodeId(1);
        let lost = hashes
            .iter()
            .filter(|&&h| ring.owner_of_hash(h) == Some(failed))
            .count() as u64;
        let dist = ring.failover_distribution(failed, hashes.iter().copied());
        assert_eq!(dist.values().sum::<u64>(), lost);
        assert!(!dist.contains_key(&failed));
    }

    #[test]
    fn membership_errors() {
        let mut ring = HashRing::with_nodes(2, 4);
        assert_eq!(
            ring.add_node(NodeId(0)),
            Err(PlacementError::AlreadyMember(NodeId(0)))
        );
        assert_eq!(
            ring.remove_node(NodeId(9)),
            Err(PlacementError::UnknownNode(NodeId(9)))
        );
        ring.remove_node(NodeId(0)).unwrap();
        ring.remove_node(NodeId(1)).unwrap();
        assert!(ring.is_empty());
        assert_eq!(ring.owner("k"), None);
    }

    #[test]
    fn strategy_name() {
        assert_eq!(HashRing::new(1).strategy_name(), "hash-ring");
    }
}
