//! Self-contained, bit-stable 64-bit hash functions.
//!
//! Placement decisions must be identical across processes, platforms and
//! library versions — a cache client on one node and a server on another
//! must agree on who owns a file path. `std::hash::DefaultHasher` is
//! explicitly not stable across releases, so the ring and the other
//! placement strategies use the implementations in this module:
//!
//! * [`xxh64`] — xxHash64, the default key hash (fast, well distributed);
//! * [`fnv1a64`] — FNV-1a, kept for cross-checking distribution quality;
//! * [`splitmix64`] — integer finalizer used to derive virtual-node tokens
//!   and salted hash chains from small integers.

const XXH_PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const XXH_PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const XXH_PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const XXH_PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const XXH_PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(XXH_PRIME_2))
        .rotate_left(31)
        .wrapping_mul(XXH_PRIME_1)
}

#[inline]
fn xxh_merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val))
        .wrapping_mul(XXH_PRIME_1)
        .wrapping_add(XXH_PRIME_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[..8]);
    u64::from_le_bytes(w)
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(&b[..4]);
    u32::from_le_bytes(w)
}

/// xxHash64 of `data` with the given `seed`.
///
/// Matches the reference xxHash64 algorithm, so values are stable forever.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(XXH_PRIME_1).wrapping_add(XXH_PRIME_2);
        let mut v2 = seed.wrapping_add(XXH_PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(XXH_PRIME_1);

        while rest.len() >= 32 {
            v1 = xxh_round(v1, read_u64(rest));
            v2 = xxh_round(v2, read_u64(&rest[8..]));
            v3 = xxh_round(v3, read_u64(&rest[16..]));
            v4 = xxh_round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }

        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge_round(h, v1);
        h = xxh_merge_round(h, v2);
        h = xxh_merge_round(h, v3);
        h = xxh_merge_round(h, v4);
    } else {
        h = seed.wrapping_add(XXH_PRIME_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= xxh_round(0, read_u64(rest));
        h = h
            .rotate_left(27)
            .wrapping_mul(XXH_PRIME_1)
            .wrapping_add(XXH_PRIME_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(read_u32(rest)).wrapping_mul(XXH_PRIME_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(XXH_PRIME_2)
            .wrapping_add(XXH_PRIME_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= u64::from(byte).wrapping_mul(XXH_PRIME_5);
        h = h.rotate_left(11).wrapping_mul(XXH_PRIME_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(XXH_PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(XXH_PRIME_3);
    h ^= h >> 32;
    h
}

/// FNV-1a 64-bit hash of `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: a strong bijective mixer for 64-bit integers.
///
/// Used to derive virtual-node tokens (`splitmix64(node << 32 | replica)`)
/// and salted fallback hashes without string formatting on the hot path.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of a file path with the crate-wide default seed.
#[inline]
pub fn key_hash(path: &str) -> u64 {
    xxh64(path.as_bytes(), 0)
}

/// Hash of a file path combined with a salt (used by the multi-hash
/// fallback chain: salt 0 is the primary placement, salt k the k-th retry).
#[inline]
pub fn salted_key_hash(path: &str, salt: u64) -> u64 {
    splitmix64(xxh64(path.as_bytes(), salt ^ 0xA5A5_5A5A_DEAD_BEEF))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors produced by the canonical xxHash64 implementation.
    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn xxh64_seed_changes_value() {
        assert_ne!(xxh64(b"frontier", 0), xxh64(b"frontier", 1));
    }

    #[test]
    fn xxh64_long_input_covers_stripe_loop() {
        let data: Vec<u8> = (0..=255u8).collect();
        // Any fixed value — the point is determinism across calls and that
        // the 32-byte stripe path is exercised.
        assert_eq!(xxh64(&data, 7), xxh64(&data, 7));
        assert_ne!(xxh64(&data, 7), xxh64(&data[..255], 7));
    }

    #[test]
    fn fnv_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn splitmix_is_bijective_on_sample() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn key_hash_is_stable() {
        // Pinned: placement compatibility depends on this never changing.
        assert_eq!(key_hash("train/sample_000000.tfrecord"), {
            xxh64(b"train/sample_000000.tfrecord", 0)
        });
        assert_eq!(key_hash("x"), key_hash("x"));
        assert_ne!(key_hash("x"), key_hash("y"));
    }

    #[test]
    fn salted_hash_differs_by_salt() {
        let p = "train/sample_42.tfrecord";
        assert_ne!(salted_key_hash(p, 0), salted_key_hash(p, 1));
        assert_ne!(salted_key_hash(p, 1), salted_key_hash(p, 2));
    }
}
