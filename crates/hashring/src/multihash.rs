//! Multi-hash fallback placement — the "employing multiple hash functions"
//! alternative §IV-B discusses.
//!
//! Placement is computed against the *initial* membership so surviving
//! keys never move: `candidate(k, 0) = all[h_0(k) % |all|]`. When that node
//! is dead, the client retries with the next salted hash, `h_1`, `h_2`, …
//! until a live node is hit. Only the failed node's keys move (good), but
//! lookups degrade with the number of accumulated failures and the fallback
//! choice is uncoordinated with load — which is why the paper prefers the
//! ring.

use crate::hash::salted_key_hash;
use crate::types::{NodeId, Placement, PlacementError};
use std::collections::BTreeSet;

/// Fallback-hash-chain placement over a fixed initial membership.
#[derive(Debug, Clone)]
pub struct MultiHashPlacement {
    /// Membership at construction; indexing base for every hash in the
    /// chain. Never shrinks — failures only mark nodes dead.
    all: Vec<NodeId>,
    dead: BTreeSet<NodeId>,
    /// Safety valve: give up after this many salts (then fall back to the
    /// first live node) so lookup stays bounded even under adversarial
    /// hashing.
    max_probes: u32,
}

impl MultiHashPlacement {
    /// Placement over nodes `0..n`.
    pub fn with_nodes(n: u32) -> Self {
        MultiHashPlacement {
            all: (0..n).map(NodeId).collect(),
            dead: BTreeSet::new(),
            max_probes: 64,
        }
    }

    /// Number of nodes marked dead so far.
    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }

    /// How many probes a lookup for `key` currently needs (1 = primary
    /// owner is alive). Exposed for the ablation bench that shows lookup
    /// degradation under repeated failures.
    pub fn probes_for(&self, key: &str) -> u32 {
        if self.all.len() == self.dead.len() {
            return 0;
        }
        for salt in 0..self.max_probes {
            let idx = (salted_key_hash(key, u64::from(salt)) % self.all.len() as u64) as usize;
            if !self.dead.contains(&self.all[idx]) {
                return salt + 1;
            }
        }
        self.max_probes
    }
}

impl Placement for MultiHashPlacement {
    fn owner(&self, key: &str) -> Option<NodeId> {
        if self.all.len() == self.dead.len() || self.all.is_empty() {
            return None;
        }
        for salt in 0..self.max_probes {
            let idx = (salted_key_hash(key, u64::from(salt)) % self.all.len() as u64) as usize;
            let n = self.all[idx];
            if !self.dead.contains(&n) {
                return Some(n);
            }
        }
        // Extremely unlikely with max_probes=64 unless almost all nodes are
        // dead; deterministic last resort keeps the contract total.
        self.all.iter().find(|n| !self.dead.contains(n)).copied()
    }

    fn remove_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if !self.all.contains(&node) || self.dead.contains(&node) {
            return Err(PlacementError::UnknownNode(node));
        }
        self.dead.insert(node);
        Ok(())
    }

    fn add_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if self.dead.remove(&node) {
            return Ok(()); // revive
        }
        if self.all.contains(&node) {
            return Err(PlacementError::AlreadyMember(node));
        }
        self.all.push(node);
        Ok(())
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        let mut live: Vec<NodeId> = self
            .all
            .iter()
            .filter(|n| !self.dead.contains(n))
            .copied()
            .collect();
        live.sort_unstable();
        live
    }

    fn len(&self) -> usize {
        self.all.len() - self.dead.len()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.all.contains(&node) && !self.dead.contains(&node)
    }

    fn strategy_name(&self) -> &'static str {
        "multi-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn survivor_keys_never_move() {
        let mut p = MultiHashPlacement::with_nodes(8);
        let ks = keys(4000);
        let before: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        p.remove_node(NodeId(2)).unwrap();
        for (k, b) in ks.iter().zip(before) {
            if b != Some(NodeId(2)) {
                assert_eq!(p.owner(k), b);
            } else {
                let o = p.owner(k).unwrap();
                assert_ne!(o, NodeId(2));
            }
        }
    }

    #[test]
    fn probe_count_grows_with_failures() {
        let mut p = MultiHashPlacement::with_nodes(16);
        let ks = keys(4000);
        let avg = |p: &MultiHashPlacement| {
            ks.iter().map(|k| f64::from(p.probes_for(k))).sum::<f64>() / ks.len() as f64
        };
        let a0 = avg(&p);
        assert!((a0 - 1.0).abs() < 1e-9);
        for i in 0..8 {
            p.remove_node(NodeId(i)).unwrap();
        }
        let a8 = avg(&p);
        // Half the nodes dead -> expected probes ~2.
        assert!(a8 > 1.5, "probes should grow with failures: {a8}");
    }

    #[test]
    fn revive_restores_original_owner() {
        let mut p = MultiHashPlacement::with_nodes(8);
        let ks = keys(1000);
        let before: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        p.remove_node(NodeId(4)).unwrap();
        p.add_node(NodeId(4)).unwrap();
        let after: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn all_dead_owns_nothing() {
        let mut p = MultiHashPlacement::with_nodes(2);
        p.remove_node(NodeId(0)).unwrap();
        p.remove_node(NodeId(1)).unwrap();
        assert_eq!(p.owner("k"), None);
        assert_eq!(p.len(), 0);
        assert_eq!(p.probes_for("k"), 0);
    }

    #[test]
    fn membership_errors() {
        let mut p = MultiHashPlacement::with_nodes(2);
        assert_eq!(
            p.add_node(NodeId(1)),
            Err(PlacementError::AlreadyMember(NodeId(1)))
        );
        p.remove_node(NodeId(1)).unwrap();
        assert_eq!(
            p.remove_node(NodeId(1)),
            Err(PlacementError::UnknownNode(NodeId(1)))
        );
        assert_eq!(p.dead_count(), 1);
        assert_eq!(p.strategy_name(), "multi-hash");
    }
}
