//! Small statistics helpers used by placement analyses and the Fig. 6(b)
//! load-redistribution experiment (mean, population standard deviation,
//! load-imbalance factors).

/// Mean of a sample; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `max / mean` of per-node loads — 1.0 is perfect balance.
pub fn imbalance_factor(loads: &[u64]) -> f64 {
    let Some(&max) = loads.iter().max() else {
        return 0.0;
    };
    let max = max as f64;
    let m = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if m == 0.0 {
        return 0.0;
    }
    max / m
}

/// Coefficient of variation (`std/mean`) of per-node loads.
pub fn coefficient_of_variation(loads: &[u64]) -> f64 {
    let xs: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
    let m = mean(&xs);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(&xs) / m
}

/// Aggregate of repeated trials: mean ± std.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrialStats {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl TrialStats {
    /// Summarize a set of trial outcomes.
    pub fn from_samples(xs: &[f64]) -> Self {
        TrialStats {
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

/// Point-in-time placement health for exposition: node count, epoch, and
/// the load-imbalance factor of a sampled key distribution. Built by
/// whoever holds both the placement and a load vector (the cluster, the
/// dashboard); kept here so the gauge names live next to the math.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RingStats {
    /// Live nodes in the placement.
    pub nodes: u64,
    /// Current placement epoch (bumped on every membership change).
    pub epoch: u64,
    /// `max/mean` of per-node loads — 1.0 is perfect balance.
    pub imbalance: f64,
}

impl RingStats {
    /// Derive from an epoch and a per-node load sample.
    pub fn from_loads(epoch: u64, loads: &[u64]) -> Self {
        RingStats {
            nodes: loads.len() as u64,
            epoch,
            imbalance: imbalance_factor(loads),
        }
    }
}

impl ftc_obs::Export for RingStats {
    fn export_into(&self, out: &mut Vec<ftc_obs::Sample>) {
        out.push(ftc_obs::Sample::gauge("ftc_ring_nodes", self.nodes as f64));
        out.push(ftc_obs::Sample::gauge("ftc_ring_epoch", self.epoch as f64));
        out.push(ftc_obs::Sample::gauge("ftc_ring_imbalance", self.imbalance));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_stats_export() {
        use ftc_obs::{Export, Value};
        let rs = RingStats::from_loads(4, &[10, 10, 10, 30]);
        assert_eq!(rs.nodes, 4);
        assert_eq!(rs.epoch, 4);
        assert!((rs.imbalance - 2.0).abs() < 1e-12);
        let samples = rs.export();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[1].value, Value::Gauge(4.0));
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Population std of {2,4,4,4,5,5,7,9} is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance() {
        assert_eq!(imbalance_factor(&[]), 0.0);
        assert_eq!(imbalance_factor(&[0, 0]), 0.0);
        assert!((imbalance_factor(&[10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((imbalance_factor(&[30, 0, 0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cv() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
        assert!(coefficient_of_variation(&[1, 9]) > 0.5);
    }

    #[test]
    fn trial_stats() {
        let s = TrialStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }
}
