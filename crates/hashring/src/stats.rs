//! Small statistics helpers used by placement analyses and the Fig. 6(b)
//! load-redistribution experiment (mean, population standard deviation,
//! load-imbalance factors).

/// Mean of a sample; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `max / mean` of per-node loads — 1.0 is perfect balance.
pub fn imbalance_factor(loads: &[u64]) -> f64 {
    let Some(&max) = loads.iter().max() else {
        return 0.0;
    };
    let max = max as f64;
    let m = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if m == 0.0 {
        return 0.0;
    }
    max / m
}

/// Coefficient of variation (`std/mean`) of per-node loads.
pub fn coefficient_of_variation(loads: &[u64]) -> f64 {
    let xs: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
    let m = mean(&xs);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(&xs) / m
}

/// Aggregate of repeated trials: mean ± std.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrialStats {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl TrialStats {
    /// Summarize a set of trial outcomes.
    pub fn from_samples(xs: &[f64]) -> Self {
        TrialStats {
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Population std of {2,4,4,4,5,5,7,9} is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance() {
        assert_eq!(imbalance_factor(&[]), 0.0);
        assert_eq!(imbalance_factor(&[0, 0]), 0.0);
        assert!((imbalance_factor(&[10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((imbalance_factor(&[30, 0, 0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cv() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
        assert!(coefficient_of_variation(&[1, 9]) > 0.5);
    }

    #[test]
    fn trial_stats() {
        let s = TrialStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }
}
