//! Common identifier and trait definitions shared by all placement
//! strategies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical compute node (an HVAC server instance).
///
/// Node ids are small dense integers assigned at cluster construction; they
/// are *stable for the lifetime of a job*, which is what lets a failed node
/// rejoin under its original identity (elastic grow-back).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index, usable directly as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Why a placement mutation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The node was not a (live) member of the placement.
    UnknownNode(NodeId),
    /// The node is already a live member.
    AlreadyMember(NodeId),
    /// The operation would leave zero live nodes.
    WouldEmpty,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::UnknownNode(n) => write!(f, "unknown node {n}"),
            PlacementError::AlreadyMember(n) => write!(f, "node {n} is already a member"),
            PlacementError::WouldEmpty => write!(f, "operation would leave no live nodes"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A data-placement strategy: maps file paths (cache keys) to owner nodes
/// and supports membership changes on node failure / rejoin.
///
/// The FT-Cache client holds one of these; `owner` runs on every read, and
/// `remove_node` runs when the failure detector declares a node dead.
/// All five strategies discussed in §IV of the paper implement this trait
/// so the cache core and the ablation benches are generic over them:
///
/// * [`crate::HashRing`] — consistent hashing with virtual nodes (the
///   paper's chosen design);
/// * [`crate::ModuloPlacement`] — original HVAC `hash % N`;
/// * [`crate::MultiHashPlacement`] — fallback hash chain on failure;
/// * [`crate::RangePartition`] — contiguous key ranges;
/// * [`crate::RendezvousPlacement`] — highest-random-weight hashing
///   (not in the paper; included as an ablation comparator with the same
///   minimal-movement property as the ring).
pub trait Placement {
    /// The node currently responsible for `key`, or `None` if no live
    /// node remains.
    fn owner(&self, key: &str) -> Option<NodeId>;

    /// Remove a node (it failed). Keys it owned are re-mapped according to
    /// the strategy; how *many* keys move is the strategy's defining
    /// property.
    fn remove_node(&mut self, node: NodeId) -> Result<(), PlacementError>;

    /// Add a node (initial membership or elastic rejoin).
    fn add_node(&mut self, node: NodeId) -> Result<(), PlacementError>;

    /// Live membership, ascending by id.
    fn live_nodes(&self) -> Vec<NodeId>;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// True when no live node remains.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `node` is currently a live member.
    fn contains(&self, node: NodeId) -> bool {
        self.live_nodes().contains(&node)
    }

    /// The first `k` distinct nodes that would own `key` in failover
    /// order: the owner first, then the nodes that inherit it as owners
    /// fail. Strategies without a natural successor order return just the
    /// owner; the hash ring returns its clockwise successor chain — the
    /// basis of the optional replication extension.
    fn successors(&self, key: &str, k: usize) -> Vec<NodeId> {
        self.owner(key).into_iter().take(k).collect()
    }

    /// Short human-readable name used in bench output.
    fn strategy_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(17);
        assert_eq!(n.to_string(), "n17");
        assert_eq!(n.index(), 17);
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn placement_error_messages() {
        assert_eq!(
            PlacementError::UnknownNode(NodeId(2)).to_string(),
            "unknown node n2"
        );
        assert_eq!(
            PlacementError::AlreadyMember(NodeId(1)).to_string(),
            "node n1 is already a member"
        );
        assert_eq!(
            PlacementError::WouldEmpty.to_string(),
            "operation would leave no live nodes"
        );
    }
}
