//! Static modulo placement — the *original* HVAC scheme (§IV-B).
//!
//! A key goes to `live[hash(key) % live.len()]`. Simple and perfectly
//! balanced, but on any membership change nearly every key changes owner:
//! the expected surviving fraction after one of `N` nodes fails is only
//! `1/(N-1)`, i.e. almost the entire cache would have to migrate or be
//! refetched. This is exactly the weakness that motivates the hash ring.

use crate::hash::key_hash;
use crate::types::{NodeId, Placement, PlacementError};

/// HVAC's original `hash(path) % N` placement over the live node list.
#[derive(Debug, Clone)]
pub struct ModuloPlacement {
    /// Live nodes, ascending. The modulo indexes into this vector, which is
    /// why removal shifts almost every assignment.
    live: Vec<NodeId>,
}

impl ModuloPlacement {
    /// Placement over nodes `0..n`.
    pub fn with_nodes(n: u32) -> Self {
        ModuloPlacement {
            live: (0..n).map(NodeId).collect(),
        }
    }

    /// Placement over an explicit membership.
    pub fn from_members(mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        members.dedup();
        ModuloPlacement { live: members }
    }
}

impl Placement for ModuloPlacement {
    #[inline]
    fn owner(&self, key: &str) -> Option<NodeId> {
        if self.live.is_empty() {
            return None;
        }
        let idx = (key_hash(key) % self.live.len() as u64) as usize;
        Some(self.live[idx])
    }

    fn remove_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        match self.live.iter().position(|&n| n == node) {
            Some(pos) => {
                self.live.remove(pos);
                Ok(())
            }
            None => Err(PlacementError::UnknownNode(node)),
        }
    }

    fn add_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        match self.live.binary_search(&node) {
            Ok(_) => Err(PlacementError::AlreadyMember(node)),
            Err(pos) => {
                self.live.insert(pos, node);
                Ok(())
            }
        }
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        self.live.clone()
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.live.binary_search(&node).is_ok()
    }

    fn strategy_name(&self) -> &'static str {
        "modulo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn balanced_distribution() {
        let p = ModuloPlacement::with_nodes(8);
        let mut counts = [0u32; 8];
        for k in keys(16_000) {
            counts[p.owner(&k).unwrap().index()] += 1;
        }
        let mean = 16_000.0 / 8.0;
        for c in counts {
            assert!(
                (f64::from(c) - mean).abs() / mean < 0.1,
                "count {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn removal_remaps_most_keys() {
        let mut p = ModuloPlacement::with_nodes(8);
        let ks = keys(8000);
        let before: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        p.remove_node(NodeId(3)).unwrap();
        let moved = ks
            .iter()
            .zip(&before)
            .filter(|(k, &b)| p.owner(k) != b)
            .count();
        // Expected stay fraction is 1/(N-1) = 1/7, so ~85%+ of keys move.
        assert!(
            moved as f64 / ks.len() as f64 > 0.75,
            "modulo should remap most keys, moved {moved}/{}",
            ks.len()
        );
    }

    #[test]
    fn dedups_and_sorts_members() {
        let p = ModuloPlacement::from_members(vec![NodeId(3), NodeId(1), NodeId(3)]);
        assert_eq!(p.live_nodes(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn membership_errors_and_empty() {
        let mut p = ModuloPlacement::with_nodes(1);
        assert_eq!(
            p.add_node(NodeId(0)),
            Err(PlacementError::AlreadyMember(NodeId(0)))
        );
        assert_eq!(
            p.remove_node(NodeId(5)),
            Err(PlacementError::UnknownNode(NodeId(5)))
        );
        p.remove_node(NodeId(0)).unwrap();
        assert_eq!(p.owner("k"), None);
        assert!(p.is_empty());
    }

    #[test]
    fn contains_and_name() {
        let p = ModuloPlacement::with_nodes(3);
        assert!(p.contains(NodeId(2)));
        assert!(!p.contains(NodeId(7)));
        assert_eq!(p.strategy_name(), "modulo");
    }
}
