//! Range partitioning — the alternative from Özsu & Valduriez that §IV-B
//! discusses and rejects.
//!
//! The `u64` key-hash space is cut into contiguous ranges, one per live
//! node. Two failure-handling modes are modeled:
//!
//! * [`RebalanceMode::MergeNeighbor`] — the failed node's range is absorbed
//!   by its successor. Minimal movement but the successor's load doubles
//!   (the imbalance problem the paper notes).
//! * [`RebalanceMode::EvenSplit`] — ranges are recomputed evenly over the
//!   survivors. Balanced but "leading to more extensive redistribution"
//!   (§IV-B): most keys change owner.

use crate::hash::key_hash;
use crate::types::{NodeId, Placement, PlacementError};
use serde::{Deserialize, Serialize};

/// What to do with a failed node's key range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebalanceMode {
    /// Successor absorbs the range (minimal movement, imbalanced).
    MergeNeighbor,
    /// Recompute equal ranges over survivors (balanced, heavy movement).
    EvenSplit,
}

/// One contiguous half-open slice of the hash space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Range {
    /// Inclusive start.
    start: u64,
    owner: NodeId,
}

/// Contiguous-range placement over the `u64` hash space.
#[derive(Debug, Clone)]
pub struct RangePartition {
    /// Ranges sorted by `start`; range `i` covers `[start_i, start_{i+1})`,
    /// the last wraps to `u64::MAX`.
    ranges: Vec<Range>,
    mode: RebalanceMode,
}

impl RangePartition {
    /// Even partition over nodes `0..n`.
    pub fn with_nodes(n: u32, mode: RebalanceMode) -> Self {
        let mut p = RangePartition {
            ranges: Vec::new(),
            mode,
        };
        p.assign_even((0..n).map(NodeId).collect());
        p
    }

    fn assign_even(&mut self, nodes: Vec<NodeId>) {
        self.ranges.clear();
        let n = nodes.len() as u64;
        if n == 0 {
            return;
        }
        let width = u64::MAX / n;
        for (i, owner) in nodes.into_iter().enumerate() {
            self.ranges.push(Range {
                start: i as u64 * width,
                owner,
            });
        }
    }

    /// The rebalance mode in effect.
    pub fn mode(&self) -> RebalanceMode {
        self.mode
    }

    /// Total hash-space fraction owned per node — the load-imbalance
    /// measure for the MergeNeighbor mode. A node may own several ranges
    /// after absorbing a failed neighbor; fractions are aggregated.
    pub fn range_fractions(&self) -> std::collections::BTreeMap<NodeId, f64> {
        let total = u128::from(u64::MAX) + 1;
        let mut out = std::collections::BTreeMap::new();
        for (i, r) in self.ranges.iter().enumerate() {
            let end = self
                .ranges
                .get(i + 1)
                .map_or(u128::from(u64::MAX) + 1, |next| u128::from(next.start));
            *out.entry(r.owner).or_insert(0.0) += (end - u128::from(r.start)) as f64 / total as f64;
        }
        out
    }
}

impl Placement for RangePartition {
    fn owner(&self, key: &str) -> Option<NodeId> {
        if self.ranges.is_empty() {
            return None;
        }
        let h = key_hash(key);
        // partition_point: first range with start > h, minus one.
        let idx = self.ranges.partition_point(|r| r.start <= h);
        Some(self.ranges[idx.saturating_sub(1)].owner)
    }

    fn remove_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if !self.ranges.iter().any(|r| r.owner == node) {
            return Err(PlacementError::UnknownNode(node));
        }
        match self.mode {
            RebalanceMode::MergeNeighbor => {
                if self.ranges.iter().all(|r| r.owner == node) {
                    self.ranges.clear();
                    return Ok(());
                }
                // A node can own several ranges (after earlier absorptions);
                // each one is handed to its clockwise successor.
                while let Some(pos) = self.ranges.iter().position(|r| r.owner == node) {
                    let removed = self.ranges.remove(pos);
                    if pos < self.ranges.len() {
                        // Successor slid into `pos`; extend it backwards.
                        self.ranges[pos].start = removed.start;
                    } else {
                        // Removed the final range: the clockwise successor
                        // wraps to range 0, which takes over the tail arc as
                        // an additional range entry.
                        let heir = self.ranges[0].owner;
                        self.ranges.push(Range {
                            start: removed.start,
                            owner: heir,
                        });
                    }
                }
                Ok(())
            }
            RebalanceMode::EvenSplit => {
                let mut survivors: Vec<NodeId> = self
                    .ranges
                    .iter()
                    .filter(|r| r.owner != node)
                    .map(|r| r.owner)
                    .collect();
                survivors.sort_unstable();
                survivors.dedup();
                self.assign_even(survivors);
                Ok(())
            }
        }
    }

    fn add_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if self.ranges.iter().any(|r| r.owner == node) {
            return Err(PlacementError::AlreadyMember(node));
        }
        let mut nodes: Vec<NodeId> = self.ranges.iter().map(|r| r.owner).collect();
        nodes.push(node);
        nodes.sort_unstable();
        nodes.dedup();
        self.assign_even(nodes);
        Ok(())
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.ranges.iter().map(|r| r.owner).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    fn len(&self) -> usize {
        self.live_nodes().len()
    }

    fn strategy_name(&self) -> &'static str {
        match self.mode {
            RebalanceMode::MergeNeighbor => "range-merge",
            RebalanceMode::EvenSplit => "range-even",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn even_partition_is_balanced() {
        let p = RangePartition::with_nodes(8, RebalanceMode::EvenSplit);
        let mut counts = [0u32; 8];
        for k in keys(16_000) {
            counts[p.owner(&k).unwrap().index()] += 1;
        }
        let mean = 16_000.0 / 8.0;
        for c in counts {
            assert!((f64::from(c) - mean).abs() / mean < 0.15, "count {c}");
        }
    }

    #[test]
    fn merge_neighbor_moves_only_failed_keys() {
        let mut p = RangePartition::with_nodes(8, RebalanceMode::MergeNeighbor);
        let ks = keys(8000);
        let before: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        p.remove_node(NodeId(3)).unwrap();
        for (k, b) in ks.iter().zip(before) {
            if b != Some(NodeId(3)) {
                assert_eq!(p.owner(k), b, "survivor key moved: {k}");
            } else {
                assert_ne!(p.owner(k), Some(NodeId(3)));
            }
        }
    }

    #[test]
    fn merge_neighbor_doubles_successor_load() {
        let mut p = RangePartition::with_nodes(8, RebalanceMode::MergeNeighbor);
        p.remove_node(NodeId(3)).unwrap();
        let fracs = p.range_fractions();
        let max = fracs.values().copied().fold(0.0, f64::max);
        // Successor now owns ~2/8 of the space.
        assert!(
            max > 0.22,
            "successor should absorb the range, max={max:.3}"
        );
    }

    #[test]
    fn even_split_remaps_many_keys() {
        let mut p = RangePartition::with_nodes(8, RebalanceMode::EvenSplit);
        let ks = keys(8000);
        let before: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        p.remove_node(NodeId(3)).unwrap();
        let moved = ks
            .iter()
            .zip(&before)
            .filter(|(k, &b)| p.owner(k) != b)
            .count();
        // Minimal movement would be ~1/8 (12.5%) of keys; even-split moves
        // roughly 30% here because every boundary after the removed node
        // shifts.
        assert!(
            moved as f64 / ks.len() as f64 > 0.2,
            "even split should move many keys, moved {moved}"
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        for mode in [RebalanceMode::MergeNeighbor, RebalanceMode::EvenSplit] {
            let mut p = RangePartition::with_nodes(5, mode);
            let sum: f64 = p.range_fractions().values().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            p.remove_node(NodeId(2)).unwrap();
            let sum: f64 = p.range_fractions().values().sum();
            assert!((sum - 1.0).abs() < 1e-9, "after removal: {sum}");
        }
    }

    #[test]
    fn membership_errors_and_add() {
        let mut p = RangePartition::with_nodes(2, RebalanceMode::EvenSplit);
        assert_eq!(
            p.remove_node(NodeId(7)),
            Err(PlacementError::UnknownNode(NodeId(7)))
        );
        assert_eq!(
            p.add_node(NodeId(1)),
            Err(PlacementError::AlreadyMember(NodeId(1)))
        );
        p.add_node(NodeId(2)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.live_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(
            RangePartition::with_nodes(1, RebalanceMode::MergeNeighbor).strategy_name(),
            "range-merge"
        );
        assert_eq!(
            RangePartition::with_nodes(1, RebalanceMode::EvenSplit).strategy_name(),
            "range-even"
        );
    }
}
