//! Rendezvous (highest-random-weight) hashing — an ablation comparator.
//!
//! Not evaluated in the paper, but the natural alternative to a token ring:
//! each key goes to the live node with the highest `hash(key, node)`
//! weight. Like the ring it has the minimal-movement property (a failure
//! moves only the failed node's keys) and near-perfect balance *without*
//! virtual nodes — at the cost of `O(N)` weight evaluations per lookup
//! instead of `O(log T)`. The `placement` bench quantifies the trade-off.

use crate::hash::{splitmix64, xxh64};
use crate::types::{NodeId, Placement, PlacementError};

/// Highest-random-weight placement.
#[derive(Debug, Clone)]
pub struct RendezvousPlacement {
    live: Vec<NodeId>,
}

impl RendezvousPlacement {
    /// Placement over nodes `0..n`.
    pub fn with_nodes(n: u32) -> Self {
        RendezvousPlacement {
            live: (0..n).map(NodeId).collect(),
        }
    }

    #[inline]
    fn weight(key_h: u64, node: NodeId) -> u64 {
        splitmix64(key_h ^ splitmix64(u64::from(node.0).wrapping_add(0x5851_F42D_4C95_7F2D)))
    }
}

impl Placement for RendezvousPlacement {
    fn owner(&self, key: &str) -> Option<NodeId> {
        let kh = xxh64(key.as_bytes(), 0);
        self.live
            .iter()
            .copied()
            .max_by_key(|&n| (Self::weight(kh, n), n))
        // The `n` tiebreak makes the result total even if two weights
        // collide (2^-64 per pair).
    }

    fn remove_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        match self.live.iter().position(|&n| n == node) {
            Some(pos) => {
                self.live.swap_remove(pos);
                Ok(())
            }
            None => Err(PlacementError::UnknownNode(node)),
        }
    }

    fn add_node(&mut self, node: NodeId) -> Result<(), PlacementError> {
        if self.live.contains(&node) {
            return Err(PlacementError::AlreadyMember(node));
        }
        self.live.push(node);
        Ok(())
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        let mut v = self.live.clone();
        v.sort_unstable();
        v
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.live.contains(&node)
    }

    fn strategy_name(&self) -> &'static str {
        "rendezvous"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn owner_is_order_independent() {
        let a = RendezvousPlacement::with_nodes(8);
        let mut b = RendezvousPlacement::with_nodes(8);
        // Shuffle b's internal order via remove/add cycles.
        b.remove_node(NodeId(0)).unwrap();
        b.remove_node(NodeId(5)).unwrap();
        b.add_node(NodeId(5)).unwrap();
        b.add_node(NodeId(0)).unwrap();
        for k in keys(500) {
            assert_eq!(a.owner(&k), b.owner(&k));
        }
    }

    #[test]
    fn minimal_movement_on_failure() {
        let mut p = RendezvousPlacement::with_nodes(8);
        let ks = keys(4000);
        let before: Vec<_> = ks.iter().map(|k| p.owner(k)).collect();
        p.remove_node(NodeId(6)).unwrap();
        for (k, b) in ks.iter().zip(before) {
            if b != Some(NodeId(6)) {
                assert_eq!(p.owner(k), b);
            } else {
                assert_ne!(p.owner(k), Some(NodeId(6)));
            }
        }
    }

    #[test]
    fn balance_without_vnodes() {
        let p = RendezvousPlacement::with_nodes(16);
        let mut counts = [0u32; 16];
        for k in keys(32_000) {
            counts[p.owner(&k).unwrap().index()] += 1;
        }
        let mean = 32_000.0 / 16.0;
        let max = f64::from(*counts.iter().max().unwrap());
        assert!(
            max / mean < 1.2,
            "HRW balance should be tight, max/mean={}",
            max / mean
        );
    }

    #[test]
    fn empty_and_errors() {
        let mut p = RendezvousPlacement::with_nodes(1);
        assert_eq!(
            p.add_node(NodeId(0)),
            Err(PlacementError::AlreadyMember(NodeId(0)))
        );
        p.remove_node(NodeId(0)).unwrap();
        assert_eq!(
            p.remove_node(NodeId(0)),
            Err(PlacementError::UnknownNode(NodeId(0)))
        );
        assert_eq!(p.owner("k"), None);
        assert_eq!(p.strategy_name(), "rendezvous");
    }
}
