//! # ftc-hashring — data-placement substrate for FT-Cache
//!
//! Implements every placement strategy discussed in §IV of *"Fault-Tolerant
//! Deep Learning Cache with Hash Ring for Load Balancing in HPC Systems"*
//! (SC'24), unified behind the [`Placement`] trait:
//!
//! | Strategy | Movement on failure | Balance | Lookup |
//! |---|---|---|---|
//! | [`HashRing`] (the paper's design) | minimal (failed keys only) | tunable via virtual nodes | `O(log T)` |
//! | [`ModuloPlacement`] (original HVAC) | ~all keys | perfect | `O(1)` |
//! | [`MultiHashPlacement`] | minimal | uncoordinated fallback | degrades with failures |
//! | [`RangePartition`] | minimal or heavy (mode) | poor or rebuilt | `O(log N)` |
//! | [`RendezvousPlacement`] (ablation) | minimal | tight, no vnodes | `O(N)` |
//!
//! The ring is the core data structure behind the paper's *elastic
//! recaching*: on node failure the FT-Cache client removes the node from
//! the ring, and only the failed node's keys are re-owned — by the next
//! clockwise virtual node — which the surviving owners then recache from
//! the PFS exactly once.
//!
//! ```
//! use ftc_hashring::{HashRing, Placement, DEFAULT_VNODES};
//!
//! let mut ring = HashRing::with_nodes(4, DEFAULT_VNODES);
//! let owner = ring.owner("train/sample_0001.tfrecord").unwrap();
//! ring.remove_node(owner).unwrap();
//! let new_owner = ring.owner("train/sample_0001.tfrecord").unwrap();
//! assert_ne!(owner, new_owner); // only failed keys move
//! ```

#![warn(missing_docs)]

pub mod hash;
pub mod modulo;
pub mod multihash;
pub mod rangepart;
pub mod rendezvous;
pub mod ring;
pub mod stats;
mod types;

pub use modulo::ModuloPlacement;
pub use multihash::MultiHashPlacement;
pub use rangepart::{RangePartition, RebalanceMode};
pub use rendezvous::RendezvousPlacement;
pub use ring::{HashRing, DEFAULT_VNODES};
pub use types::{NodeId, Placement, PlacementError};
