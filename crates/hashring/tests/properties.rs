//! Property-based tests for the placement substrate.
//!
//! The central invariant of the paper's design — *consistent hashing moves
//! only the failed node's keys* — is checked here against arbitrary
//! cluster sizes, vnode counts, key sets and failure choices, alongside the
//! contrasting property that modulo placement moves almost everything.

use ftc_hashring::{
    hash, HashRing, ModuloPlacement, MultiHashPlacement, NodeId, Placement, RangePartition,
    RebalanceMode, RendezvousPlacement,
};
use proptest::prelude::*;

fn keyset(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("train/s{i:06}.tfrecord")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring lookups are a pure function of (membership, vnodes, seed, key).
    #[test]
    fn ring_lookup_deterministic(
        nodes in 1u32..64,
        vnodes in 1u32..64,
        seed in any::<u64>(),
        key in "[a-z0-9/_.]{1,64}",
    ) {
        let mut a = HashRing::with_seed(vnodes, seed);
        let mut b = HashRing::with_seed(vnodes, seed);
        for i in 0..nodes {
            a.add_node(NodeId(i)).unwrap();
            b.add_node(NodeId(i)).unwrap();
        }
        prop_assert_eq!(a.owner(&key), b.owner(&key));
        prop_assert!(a.owner(&key).is_some());
    }

    /// Minimal disruption: removing one node never changes ownership of a
    /// key the failed node did not own.
    #[test]
    fn ring_minimal_disruption(
        nodes in 2u32..32,
        vnodes in 1u32..128,
        failed in 0u32..32,
        nkeys in 1usize..400,
    ) {
        let failed = NodeId(failed % nodes);
        let mut ring = HashRing::with_nodes(nodes, vnodes);
        let keys = keyset(nkeys);
        let before: Vec<_> = keys.iter().map(|k| ring.owner(k).unwrap()).collect();
        ring.remove_node(failed).unwrap();
        for (k, b) in keys.iter().zip(before) {
            let after = ring.owner(k).unwrap();
            if b == failed {
                prop_assert_ne!(after, failed);
            } else {
                prop_assert_eq!(after, b);
            }
        }
    }

    /// Failure + rejoin under the same id is an exact no-op on placement.
    #[test]
    fn ring_rejoin_roundtrip(
        nodes in 2u32..24,
        vnodes in 1u32..64,
        failed in 0u32..24,
        nkeys in 1usize..300,
    ) {
        let failed = NodeId(failed % nodes);
        let mut ring = HashRing::with_nodes(nodes, vnodes);
        let keys = keyset(nkeys);
        let before: Vec<_> = keys.iter().map(|k| ring.owner(k)).collect();
        ring.remove_node(failed).unwrap();
        ring.add_node(failed).unwrap();
        let after: Vec<_> = keys.iter().map(|k| ring.owner(k)).collect();
        prop_assert_eq!(before, after);
    }

    /// Cascading failures: after removing any subset of nodes (short of
    /// all), every key is owned by a surviving node.
    #[test]
    fn ring_total_under_cascading_failures(
        nodes in 2u32..24,
        vnodes in 1u32..32,
        kill_mask in any::<u32>(),
        nkeys in 1usize..200,
    ) {
        let mut ring = HashRing::with_nodes(nodes, vnodes);
        let mut survivors: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        for i in 0..nodes {
            if kill_mask & (1 << i) != 0 && survivors.len() > 1 {
                ring.remove_node(NodeId(i)).unwrap();
                survivors.retain(|&n| n != NodeId(i));
            }
        }
        for k in keyset(nkeys) {
            let owner = ring.owner(&k);
            prop_assert!(owner.is_some());
            prop_assert!(survivors.contains(&owner.unwrap()));
        }
    }

    /// The arc fractions of all live nodes always sum to 1.
    #[test]
    fn ring_arcs_partition_the_circle(
        nodes in 1u32..32,
        vnodes in 1u32..64,
        seed in any::<u64>(),
    ) {
        let mut ring = HashRing::with_seed(vnodes, seed);
        for i in 0..nodes {
            ring.add_node(NodeId(i)).unwrap();
        }
        let total: f64 = (0..nodes).map(|i| ring.arc_fraction(NodeId(i))).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total={}", total);
    }

    /// Contrast property: modulo placement moves at least half the keys on
    /// a failure in any cluster of ≥4 nodes (expected stay rate 1/(N-1)).
    #[test]
    fn modulo_massive_remap(nodes in 4u32..64, failed in 0u32..64) {
        let failed = NodeId(failed % nodes);
        let mut p = ModuloPlacement::with_nodes(nodes);
        let keys = keyset(2000);
        let before: Vec<_> = keys.iter().map(|k| p.owner(k)).collect();
        p.remove_node(failed).unwrap();
        let moved = keys.iter().zip(&before).filter(|(k, &b)| p.owner(k) != b).count();
        prop_assert!(
            moved * 2 > keys.len(),
            "modulo moved only {}/{} keys on failure of {} among {}",
            moved, keys.len(), failed, nodes
        );
    }

    /// Every strategy keeps `owner` total (Some) while ≥1 node is live, and
    /// never returns a dead node.
    #[test]
    fn strategies_never_route_to_dead_nodes(
        nodes in 2u32..16,
        kills in prop::collection::vec(0u32..16, 0..8),
        nkeys in 1usize..100,
    ) {
        let strategies: Vec<Box<dyn Placement>> = vec![
            Box::new(HashRing::with_nodes(nodes, 16)),
            Box::new(ModuloPlacement::with_nodes(nodes)),
            Box::new(MultiHashPlacement::with_nodes(nodes)),
            Box::new(RangePartition::with_nodes(nodes, RebalanceMode::MergeNeighbor)),
            Box::new(RangePartition::with_nodes(nodes, RebalanceMode::EvenSplit)),
            Box::new(RendezvousPlacement::with_nodes(nodes)),
        ];
        for mut s in strategies {
            let mut dead = Vec::new();
            for &k in &kills {
                let victim = NodeId(k % nodes);
                if !dead.contains(&victim) && s.len() > 1 {
                    s.remove_node(victim).unwrap();
                    dead.push(victim);
                }
            }
            for key in keyset(nkeys) {
                let owner = s.owner(&key);
                prop_assert!(owner.is_some(), "{} returned None", s.strategy_name());
                prop_assert!(
                    !dead.contains(&owner.unwrap()),
                    "{} routed {} to dead node {}",
                    s.strategy_name(), key, owner.unwrap()
                );
            }
        }
    }

    /// xxh64 equals itself and differs for different inputs (sanity over
    /// arbitrary byte strings, exercising every tail-length code path).
    #[test]
    fn xxh64_behaves(data in prop::collection::vec(any::<u8>(), 0..80), seed in any::<u64>()) {
        let h = hash::xxh64(&data, seed);
        prop_assert_eq!(h, hash::xxh64(&data, seed));
        let mut tweaked = data.clone();
        tweaked.push(0xA7);
        prop_assert_ne!(h, hash::xxh64(&tweaked, seed));
    }

    /// failover_distribution conserves the failed node's keys: received
    /// counts sum to exactly the number of keys the failed node owned.
    #[test]
    fn failover_conserves_keys(
        nodes in 2u32..32,
        vnodes in 1u32..64,
        failed in 0u32..32,
        nkeys in 1usize..500,
    ) {
        let failed = NodeId(failed % nodes);
        let ring = HashRing::with_nodes(nodes, vnodes);
        let hashes: Vec<u64> = keyset(nkeys).iter().map(|k| hash::key_hash(k)).collect();
        let lost = hashes.iter().filter(|&&h| ring.owner_of_hash(h) == Some(failed)).count() as u64;
        let dist = ring.failover_distribution(failed, hashes.iter().copied());
        prop_assert_eq!(dist.values().sum::<u64>(), lost);
        prop_assert!(!dist.contains_key(&failed));
    }
}
