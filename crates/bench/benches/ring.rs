//! Criterion benches for the hash ring: lookup cost vs virtual-node
//! count (the §IV-B memory/latency trade-off behind Fig. 6(b)), ring
//! construction, and failover redistribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftc_hashring::{hash::key_hash, HashRing, NodeId, Placement};
use std::hint::black_box;

fn ring_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_lookup");
    for vnodes in [10u32, 100, 1000] {
        let ring = HashRing::with_nodes(1024, vnodes);
        let keys: Vec<String> = (0..1000)
            .map(|i| format!("train/sample_{i:07}.tfrecord"))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(vnodes), &vnodes, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(ring.owner(&keys[i]))
            });
        });
    }
    g.finish();
}

fn ring_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_build_1024_nodes");
    g.sample_size(10);
    for vnodes in [10u32, 100, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(vnodes), &vnodes, |b, &v| {
            b.iter(|| black_box(HashRing::with_nodes(1024, v)));
        });
    }
    g.finish();
}

fn ring_failover(c: &mut Criterion) {
    let ring = HashRing::with_nodes(1024, 100);
    let hashes: Vec<u64> = (0..524_288u32)
        .map(|i| key_hash(&format!("train/sample_{i:07}.tfrecord")))
        .collect();
    let lost: Vec<u64> = hashes
        .iter()
        .copied()
        .filter(|&h| ring.owner_of_hash(h) == Some(NodeId(7)))
        .collect();
    let mut g = c.benchmark_group("ring_failover_distribution");
    g.sample_size(20);
    g.bench_function("one_node_524k_files", |b| {
        b.iter(|| black_box(ring.failover_distribution(NodeId(7), lost.iter().copied())));
    });
    g.finish();
}

fn ring_membership(c: &mut Criterion) {
    c.bench_function("ring_remove_and_rejoin", |b| {
        let mut ring = HashRing::with_nodes(1024, 100);
        b.iter(|| {
            ring.remove_node(NodeId(3)).unwrap();
            ring.add_node(NodeId(3)).unwrap();
        });
    });
}

criterion_group!(
    benches,
    ring_lookup,
    ring_build,
    ring_failover,
    ring_membership
);
criterion_main!(benches);
