//! Criterion benches for the storage substrates: NVMe cache hit/miss/
//! eviction paths, PFS accounting, and synthetic-content generation.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use ftc_storage::{synth_bytes, NvmeCache, Pfs};
use std::hint::black_box;

fn nvme_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvme_cache");
    let cache = NvmeCache::unbounded();
    for i in 0..10_000 {
        cache.insert(&format!("k{i}"), Bytes::from_static(&[0u8; 64]));
    }
    g.bench_function("hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(cache.get(&format!("k{i}")))
        });
    });
    g.bench_function("miss", |b| {
        b.iter(|| black_box(cache.get("absent")));
    });
    g.bench_function("insert_with_eviction", |b| {
        let small = NvmeCache::new(64 * 100); // holds 100 entries
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(small.insert(&format!("k{i}"), Bytes::from_static(&[0u8; 64])))
        });
    });
    g.finish();
}

fn pfs_read_accounting(c: &mut Criterion) {
    let pfs = Pfs::in_memory();
    for i in 0..1000 {
        pfs.stage(&format!("f{i}"), Bytes::from_static(&[0u8; 256]));
    }
    c.bench_function("pfs_read_counted", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1000;
            black_box(pfs.read(&format!("f{i}")))
        });
    });
}

fn synth_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("synth_bytes");
    g.bench_function("2_2MB_sample", |b| {
        b.iter(|| black_box(synth_bytes("train/sample_0000001.tfrecord", 2_200_000)));
    });
    g.bench_function("64B_control", |b| {
        b.iter(|| black_box(synth_bytes("x", 64)));
    });
    g.finish();
}

criterion_group!(benches, nvme_paths, pfs_read_accounting, synth_generation);
criterion_main!(benches);
