//! Criterion benches for the Table I / Fig 1–2 analysis pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ftc_slurm::{by_node_count, census, weekly_elapsed, TraceConfig, TraceGenerator};
use std::hint::black_box;

fn generate_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("slurm_trace");
    g.sample_size(10);
    g.bench_function("generate_196k_jobs", |b| {
        b.iter(|| black_box(TraceGenerator::frontier().generate()));
    });
    g.finish();
}

fn analyze_trace(c: &mut Criterion) {
    // Smaller trace for per-analysis timing.
    let cfg = TraceConfig {
        total_jobs: 20_000,
        cancelled_jobs: 1_500,
        ..TraceConfig::default()
    };
    let trace = TraceGenerator::new(cfg).generate();
    let mut g = c.benchmark_group("slurm_analysis_20k");
    g.bench_function("census", |b| b.iter(|| black_box(census(&trace))));
    g.bench_function("weekly_elapsed", |b| {
        b.iter(|| black_box(weekly_elapsed(&trace, 27)))
    });
    g.bench_function("by_node_count", |b| {
        b.iter(|| black_box(by_node_count(&trace)))
    });
    g.finish();
}

criterion_group!(benches, generate_trace, analyze_trace);
criterion_main!(benches);
