//! Criterion meso-benchmarks: full simulated training runs per policy —
//! the engine that regenerates Figures 5 and 6(a). Also measures the
//! Fig. 6(b) redistribution simulation at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftc_core::FtPolicy;
use ftc_hashring::NodeId;
use ftc_sim::{fig6b, FaultEvent, SimCalibration, SimCluster, SimWorkload};
use std::hint::black_box;

fn simulated_training(c: &mut Criterion) {
    let workload = SimWorkload {
        samples: 8192,
        sample_bytes: 2_200_000,
        epochs: 5,
        seed: 3,
        time_compression: 64,
    };
    let cal = SimCalibration::frontier();
    let fault = [FaultEvent {
        epoch: 1,
        step: 0,
        node: NodeId(5),
    }];
    let mut g = c.benchmark_group("sim_train_64n_8k_samples");
    g.sample_size(10);
    for policy in [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let faults: &[FaultEvent] = if p == FtPolicy::NoFt { &[] } else { &fault };
                    black_box(
                        SimCluster::new(64, p, workload.samples, cal.clone()).run(workload, faults),
                    )
                });
            },
        );
    }
    g.finish();
}

fn fig6b_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6b_redistribution");
    g.sample_size(10);
    g.bench_function("1024n_100v_50trials", |b| {
        b.iter(|| black_box(fig6b(&[100], 1024, 65_536, 50, 9)));
    });
    g.finish();
}

criterion_group!(benches, simulated_training, fig6b_simulation);
criterion_main!(benches);
