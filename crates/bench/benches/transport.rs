//! Criterion benches for the RPC substrate and the full cache read path
//! through a live threaded server.

use criterion::{criterion_group, criterion_main, Criterion};
use ftc_core::{CacheNet, CacheRequest, CacheResponse, ServerHandle};
use ftc_hashring::NodeId;
use ftc_net::Network;
use ftc_storage::{synth_bytes, Pfs};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn rpc_round_trip(c: &mut Criterion) {
    let net: Network<String, String> = Network::instant(1);
    let mbox = net.register(NodeId(0));
    std::thread::spawn(move || {
        while let Some(inc) = mbox.recv() {
            inc.reply("ok".into());
        }
    });
    let ep = net.endpoint(NodeId(1));
    c.bench_function("rpc_round_trip", |b| {
        b.iter(|| {
            black_box(
                ep.call(NodeId(0), "ping".into(), Duration::from_secs(1))
                    .unwrap(),
            )
        });
    });
}

fn cached_read_path(c: &mut Criterion) {
    let net: CacheNet = Network::instant(2);
    let pfs = Arc::new(Pfs::in_memory());
    for i in 0..100 {
        let p = format!("train/s{i}.bin");
        pfs.stage(&p, synth_bytes(&p, 4096));
    }
    let _h = ServerHandle::spawn(NodeId(0), &net, pfs, u64::MAX).expect("spawn server");
    let ep = net.endpoint(NodeId(1));
    // Warm the cache.
    for i in 0..100 {
        ep.call(
            NodeId(0),
            CacheRequest::Read {
                path: format!("train/s{i}.bin"),
            },
            Duration::from_secs(1),
        )
        .unwrap();
    }
    c.bench_function("server_read_nvme_hit_4k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100;
            let r = ep
                .call(
                    NodeId(0),
                    CacheRequest::Read {
                        path: format!("train/s{i}.bin"),
                    },
                    Duration::from_secs(1),
                )
                .unwrap();
            assert!(matches!(r, CacheResponse::Data { .. }));
            black_box(r)
        });
    });
}

criterion_group!(benches, rpc_round_trip, cached_read_path);
criterion_main!(benches);
