//! Criterion benches comparing every placement strategy's lookup cost —
//! the other half of the §IV-B trade-off (the ring's O(log T) vs
//! rendezvous's O(N) vs modulo's O(1)).

use criterion::{criterion_group, criterion_main, Criterion};
use ftc_hashring::{
    HashRing, ModuloPlacement, MultiHashPlacement, Placement, RangePartition, RebalanceMode,
    RendezvousPlacement,
};
use std::hint::black_box;

fn lookup_all_strategies(c: &mut Criterion) {
    let strategies: Vec<(&str, Box<dyn Placement>)> = vec![
        ("hash-ring-100", Box::new(HashRing::with_nodes(1024, 100))),
        ("modulo", Box::new(ModuloPlacement::with_nodes(1024))),
        ("multi-hash", Box::new(MultiHashPlacement::with_nodes(1024))),
        (
            "range-merge",
            Box::new(RangePartition::with_nodes(
                1024,
                RebalanceMode::MergeNeighbor,
            )),
        ),
        (
            "rendezvous",
            Box::new(RendezvousPlacement::with_nodes(1024)),
        ),
    ];
    let keys: Vec<String> = (0..1000)
        .map(|i| format!("train/sample_{i:07}.tfrecord"))
        .collect();
    let mut g = c.benchmark_group("placement_lookup_1024");
    for (name, s) in &strategies {
        g.bench_function(*name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(s.owner(&keys[i]))
            });
        });
    }
    g.finish();
}

fn multihash_degradation(c: &mut Criterion) {
    // Lookup cost after 0 / 256 / 512 accumulated failures — the
    // scalability problem §IV-B raises against the multi-hash scheme.
    let mut g = c.benchmark_group("multihash_lookup_after_failures");
    for dead in [0u32, 256, 512] {
        let mut p = MultiHashPlacement::with_nodes(1024);
        for i in 0..dead {
            p.remove_node(ftc_hashring::NodeId(i)).unwrap();
        }
        let keys: Vec<String> = (0..1000).map(|i| format!("k{i}")).collect();
        g.bench_function(format!("{dead}_dead"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % keys.len();
                black_box(p.owner(&keys[i]))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, lookup_all_strategies, multihash_degradation);
criterion_main!(benches);
