//! Table II — Frontier compute-node specification, as encoded in the
//! calibration that every simulated experiment consumes.
//!
//! `cargo run -p ftc-bench --release --bin table2`

use ftc_sim::SimCalibration;
use ftc_storage::frontier_node;

fn main() {
    ftc_bench::header("Table II — Frontier node specification (calibration echo)");
    let n = frontier_node();
    println!("{:<22} Frontier", "Supercomputer");
    println!("{:<22} {}", "CPU", n.cpu);
    println!("{:<22} {}", "GPU", n.gpu);
    println!("{:<22} {} GiB DDR4", "Memory Capacity", n.memory_gib);
    println!("{:<22} {}", "Node-local Storage", n.node_local_storage);
    println!(
        "{:<22} {:.1} TB usable, {:.0} GB/s read / {:.0} GB/s write",
        "Derived NVMe volume",
        n.nvme_capacity_bytes as f64 / 1e12,
        n.nvme.read_bps / 1e9,
        n.nvme.write_bps / 1e9,
    );
    println!();
    let cal = SimCalibration::frontier();
    println!("Simulation calibration derived from it:");
    println!(
        "  NVMe op latency {:.0} µs | net {:.0} µs + {:.0} GB/s | PFS {:.0} GB/s agg, {:.0} ms metadata (x(1+N/{:.0}) under load)",
        cal.nvme.op_lat_s * 1e6,
        cal.net.base_s * 1e6,
        cal.net.bandwidth_bps / 1e9,
        cal.pfs.agg_bandwidth_bps / 1e9,
        cal.pfs.metadata_lat_s * 1e3,
        cal.pfs_meta_clients_scale,
    );
    println!(
        "  compute/step {:.0} ms | allreduce {:.0}·log2(N)+{:.0} ms | TTL {:.1} s x{} | resume {:.0} s | vnodes {}",
        cal.compute_per_step_s * 1e3,
        cal.allreduce_alpha_s * 1e3,
        cal.allreduce_beta_s * 1e3,
        cal.ttl_s,
        cal.timeout_limit,
        cal.resume_overhead_s,
        cal.vnodes,
    );
}
