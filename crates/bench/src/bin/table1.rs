//! Table I — analysis of job failures on Frontier over six months.
//!
//! Generates the calibrated synthetic `sacct` trace and runs the census,
//! printing measured ratios next to the paper's published values.
//!
//! `cargo run -p ftc-bench --release --bin table1`

use ftc_slurm::{census, render::render_table1, TraceGenerator};

fn main() {
    ftc_bench::header("Table I — job-failure census (synthetic trace calibrated to Frontier)");
    let trace = TraceGenerator::frontier().generate();
    let c = census(&trace);
    print!("{}", render_table1(&c));
    println!();
    println!(
        "Node Fail + Timeout = {:.2}% of failures  [paper: ~47.5%, \"about half\"]",
        100.0 * c.node_failure_share()
    );
}
