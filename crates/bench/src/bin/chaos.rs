//! Chaos campaigns — seeded gray-failure schedules against the threaded
//! cluster, with four invariants checked after every campaign (read
//! integrity, recache economy, livelock freedom, no false failure
//! declarations for degraded-but-alive nodes).
//!
//! `cargo run -p ftc-bench --release --bin chaos [--seed 1] [--campaigns 50] [--policy ring|pfs|noft]`
//!
//! The fault schedule and every printed line are pure functions of the
//! seed: `chaos --seed N` replays byte-identically. Exits non-zero if any
//! invariant is violated.

use ft_cache::chaos::{run_campaign, ChaosPlan};
use ftc_bench::{arg_or, header};
use ftc_core::FtPolicy;

fn main() {
    let base_seed: u64 = arg_or("--seed", 1);
    let campaigns: u64 = arg_or("--campaigns", 1);
    let policy_filter = std::env::args()
        .position(|a| a == "--policy")
        .and_then(|i| std::env::args().nth(i + 1));
    let policies: Vec<FtPolicy> = match policy_filter.as_deref() {
        Some("noft") => vec![FtPolicy::NoFt],
        Some("pfs") => vec![FtPolicy::PfsRedirect],
        Some("ring") => vec![FtPolicy::RingRecache],
        Some(other) => {
            eprintln!("unknown --policy {other:?} (expected noft|pfs|ring)");
            std::process::exit(2);
        }
        None => vec![FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache],
    };

    header(&format!(
        "chaos — {campaigns} campaign(s) from seed {base_seed}, {} policies",
        policies.len()
    ));

    let mut failures = 0u64;
    for offset in 0..campaigns {
        let seed = base_seed + offset;
        let plan = ChaosPlan::generate(seed);
        println!("seed={seed} plan: {}", plan.summary());
        for &policy in &policies {
            let report = run_campaign(policy, &plan);
            println!("  {report}");
            if !report.passed() {
                failures += 1;
            }
        }
    }

    if failures > 0 {
        println!("\nFAIL: {failures} campaign run(s) violated invariants");
        std::process::exit(1);
    }
    println!("\nall campaigns passed");
}
