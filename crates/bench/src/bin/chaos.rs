//! Chaos campaigns — seeded gray-failure schedules against the threaded
//! cluster, with invariants checked after every campaign (read integrity,
//! recache economy, livelock freedom, no false failure declarations for
//! degraded-but-alive nodes; and under `--recovery proactive`: no stale
//! serving, recovery quiescence, no foreground starvation).
//!
//! `cargo run -p ftc-bench --release --bin chaos [--seed 1] [--campaigns 50] [--policy ring|pfs|noft] [--recovery lazy|proactive|adaptive] [--scenarios] [--scenario cascading-overload] [--compare] [--compare-adaptive] [--adaptive [--virtual]] [--sabotage] [--sabotage-recovery] [--sabotage-flap] [--sabotage-shed] [--virtual [--nodes 128] [--files 256]] [--explore [--explore-strategy random|pct|dfs] [--schedules N] [--depth D]] [--sabotage-atomicity] [--check-linz] [--sabotage-linz]`
//!
//! The fault schedule and every verdict are pure functions of the seed:
//! `chaos --seed N` replays the same PASS/FAIL outcome byte-identically.
//! Measured degraded-window latencies (printed per kill, and aggregated
//! as p50/p99 across all campaigns at the end) are wall-clock and vary
//! run to run. Exits non-zero if any invariant is violated.
//!
//! `--scenarios` runs the three named recovery scenarios (independent
//! failure during recache, double failure of node + successor, revive
//! during recache) under proactive recovery instead of generated plans.
//!
//! `--compare` runs each seed under RingRecache twice — lazy then
//! proactive — and prints a degraded-window comparison table (the
//! EXPERIMENTS.md "lazy vs proactive" numbers).
//!
//! `--sabotage` runs the flight-recorder self-test instead: one campaign
//! with the recache budget forced to zero, which must FAIL and must emit
//! a flight dump — proving the postmortem path works before anyone needs
//! it in anger. `--sabotage-recovery` does the same for the new
//! quiescence invariant by starving the recovery engine's token bucket.
//! The forced violation does not affect the exit code; a *missing* dump
//! or violation does.
//!
//! `--virtual` runs one large-ring kill sweep (`--nodes`, default 128;
//! `--files`, default 256) with the whole real stack on a virtual clock
//! under proactive recovery, and prints the fully deterministic report
//! rendering to stdout — every latency included. Same seed ⇒
//! byte-identical output; CI runs it twice and diffs. Exits non-zero on
//! any invariant violation.
//!
//! `--adaptive` runs the shifting-intensity scenario (quiet pass →
//! fault burst → correlated kill) under the runtime policy controller,
//! traced, on the virtual clock, and prints the deterministic render —
//! including the `policy:` line (switches, suppressed flaps, retired
//! reads). Exits non-zero on a violation, a retired-policy-epoch read,
//! or a controller that never switched. `--sabotage-flap` is the flap
//! self-test: the controller is forced to attempt the opposite posture
//! every tick, and the run must show suppressed flaps while staying
//! invariant-clean.
//!
//! `--compare-adaptive` runs the shifting-intensity scenario for each
//! seed under every static posture × replication contender plus the
//! adaptive controller, prints the comparison table, and exits non-zero
//! unless adaptive matches or beats every static contender on both the
//! degraded-window p99 and the faulted-read p99 (5% + 1ms tolerance).
//!
//! `--explore` model-checks the failure-during-recache scenario: the
//! campaign re-runs under explored schedules (random-walk + PCT smoke by
//! default; `--explore-strategy dfs` for the bounded-DFS budget run) and
//! every schedule must keep the invariants. A violating schedule is
//! printed as a replay file that re-runs it byte-identically.
//! `--sabotage-atomicity` is the explorer's self-test: a seeded
//! check-then-act bug FIFO never exhibits must be found by the DFS and
//! its schedule file must replay to the identical verdict.
//!
//! `--scenario cascading-overload` runs the overload-armor scenario —
//! a kill (recache burst) plus an open-loop six-reader surge against
//! tight admission queues — under adaptive recovery, traced on the
//! virtual clock, and prints the deterministic render including the
//! `overload:` counters line. The campaign must hold the goodput floor
//! (the armor degrades shed reads to the PFS, it never loses them), keep
//! shed accounting consistent (client-observed typed sheds bounded by
//! server sheds, no shedding-but-alive node declared failed) and cycle
//! the brownout posture (entered under the surge, exited after it
//! clears). Same seed ⇒ byte-identical output; CI diffs two runs.
//! `--sabotage-shed` is the matching self-test: the client misclassifies
//! typed sheds as detector evidence, and the run must FAIL with the
//! shed-false-positive violation plus a flight dump.
//!
//! `--check-linz` runs `--campaigns` (default 50) virtual campaigns with
//! the fabric op-history recorder on — always including the three named
//! kill/revive scenarios, cycling lazy/proactive/adaptive recovery — and
//! checks every history for linearizability (per-key register semantics
//! plus the ring-epoch freshness rule). Every campaign fires the
//! single-flight duplicate storm: concurrent duplicate readers race
//! each kill, so coalesced (follower-accepted) reads are part of the
//! checked histories, and the campaign itself asserts that every storm
//! read returns ground truth and resolves exactly once (leader,
//! fresh-epoch accept, or independent stale retry). `--sabotage-linz`
//! forges a stale-epoch read into a clean history and requires the
//! checker to flag it.

use ft_cache::chaos::{
    adaptive_losses, compare_adaptive_contenders, compare_label, run_campaign_compare_adaptive,
    run_campaign_recovery_sabotaged, run_campaign_sabotaged, run_campaign_virtual,
    run_campaign_with, run_degraded_window_probe, CampaignOptions, CampaignReport, ChaosAction,
    ChaosPlan, DegradedWindowReport, RecoveryMode,
};
use ft_cache::modelcheck::{
    check_linz_campaigns, explore_campaign, sabotage_atomicity, sabotage_linz, ExploreStrategy,
};
use ftc_bench::{arg_or, has_flag, header};
use ftc_core::FtPolicy;
use ftc_obs::percentile;
use std::time::Duration;

fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1e3),
        None => "-".to_owned(),
    }
}

/// Print nearest-rank p50/p99 of a latency list, or note its absence.
fn print_percentiles(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("  {label}: no kill-anchored incidents");
        return;
    }
    println!(
        "  {label}: n={} p50={} p99={} max={}",
        samples.len(),
        fmt_ms(percentile(samples, 0.50)),
        fmt_ms(percentile(samples, 0.99)),
        fmt_ms(samples.iter().max().copied()),
    );
}

/// The first seed at or after `base_seed` whose generated plan schedules
/// a kill — both sabotage self-tests need one to force their violation.
fn plan_with_kill(base_seed: u64) -> ChaosPlan {
    (base_seed..base_seed + 1000)
        .map(ChaosPlan::generate)
        .find(|p| {
            p.events
                .iter()
                .any(|e| matches!(e.action, ChaosAction::Kill(_)))
        })
        .unwrap_or_else(|| {
            eprintln!("no plan with a kill in 1000 seeds from {base_seed}");
            std::process::exit(2);
        })
}

/// Shared self-test verdict: the forced violation must fire AND carry a
/// flight dump; anything else is a failure of the harness itself.
fn selftest_verdict(report: &CampaignReport) -> ! {
    match report.flight_dump.as_deref() {
        Some(dump) if !report.passed() => {
            println!("\n{dump}");
            println!("\nsabotage self-test OK: violation fired and flight dump emitted");
            std::process::exit(0);
        }
        Some(_) => {
            println!("\nFAIL: dump emitted but no invariant fired");
            std::process::exit(1);
        }
        None => {
            println!("\nFAIL: sabotaged campaign produced no flight dump");
            std::process::exit(1);
        }
    }
}

/// `--sabotage` self-test: force a recache-economy violation on a plan
/// with a guaranteed kill and require the flight dump to materialize.
fn sabotage_selftest(base_seed: u64) -> ! {
    header("chaos --sabotage — forced-violation flight-recorder self-test");
    let plan = plan_with_kill(base_seed);
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_sabotaged(FtPolicy::RingRecache, &plan);
    println!("  {report}");
    selftest_verdict(&report)
}

/// `--sabotage-recovery` self-test: starve the recovery engine's token
/// bucket so the quiescence invariant must fire.
fn sabotage_recovery_selftest(base_seed: u64) -> ! {
    header("chaos --sabotage-recovery — forced quiescence-violation self-test");
    let plan = plan_with_kill(base_seed);
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_recovery_sabotaged(FtPolicy::RingRecache, &plan);
    println!("  {report}");
    if !report
        .violations
        .iter()
        .any(|v| v.contains("recovery quiescence"))
    {
        println!("\nFAIL: starved engine did not trip the quiescence invariant");
        std::process::exit(1);
    }
    selftest_verdict(&report)
}

/// `--virtual`: one large-ring kill sweep on the virtual clock. Stdout is
/// exactly the plan summary plus the deterministic report rendering, so
/// CI can diff two runs of the same seed byte-for-byte.
fn run_virtual_sweep(seed: u64, nodes: u32, files: usize) -> ! {
    let plan = ChaosPlan::scenario_scale_sweep(seed, nodes, files);
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_virtual(
        FtPolicy::RingRecache,
        &plan,
        CampaignOptions {
            recovery: RecoveryMode::Proactive,
            ..Default::default()
        },
    );
    print!("{}", report.render());
    if !report.passed() {
        if let Some(dump) = &report.flight_dump {
            eprintln!("{dump}");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `--adaptive`: the shifting-intensity scenario under the runtime
/// policy controller, traced on the virtual clock. Stdout is the plan
/// summary plus the deterministic render (policy line included), so CI
/// diffs two runs of the same seed byte-for-byte. With `sabotage_flap`
/// the run doubles as the flap self-test: the suppressed-flap counter
/// must move while every invariant still holds.
fn run_adaptive_campaign(seed: u64, sabotage_flap: bool) -> ! {
    let plan = ChaosPlan::scenario_shifting_intensity(seed);
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_virtual(
        FtPolicy::RingRecache,
        &plan,
        CampaignOptions {
            recovery: RecoveryMode::Adaptive,
            sabotage_flap,
            trace: true,
            ..Default::default()
        },
    );
    print!("{}", report.render());
    if !report.passed() {
        if let Some(dump) = &report.flight_dump {
            eprintln!("{dump}");
        }
        std::process::exit(1);
    }
    if report.retired_policy_reads > 0 {
        eprintln!(
            "FAIL: {} read(s) attributed to a retired policy epoch",
            report.retired_policy_reads
        );
        std::process::exit(1);
    }
    if sabotage_flap {
        if report.policy_flaps_suppressed == 0 {
            eprintln!("FAIL: flap sabotage never hit the cooldown suppressor");
            std::process::exit(1);
        }
        eprintln!("flap self-test OK: cooldown suppressed the forced flapping");
    } else if report.policy_switches == 0 {
        eprintln!("FAIL: the fault burst never moved the controller off the quiet posture");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `--scenario cascading-overload`: kill + recache burst + open-loop
/// client surge under the full overload armor, adaptive recovery, traced
/// on the virtual clock. Stdout is the plan summary plus the
/// deterministic render (`overload:` line included), so CI diffs two
/// runs of the same seed byte-for-byte. Exits non-zero on any violation,
/// a surge that never shed, or a brownout that never entered or exited.
fn run_cascading_overload(seed: u64) -> ! {
    let plan = ChaosPlan::scenario_cascading_overload(seed);
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_virtual(
        FtPolicy::RingRecache,
        &plan,
        CampaignOptions {
            recovery: RecoveryMode::Adaptive,
            overload: true,
            trace: true,
            ..Default::default()
        },
    );
    print!("{}", report.render());
    if !report.passed() {
        if let Some(dump) = &report.flight_dump {
            eprintln!("{dump}");
        }
        std::process::exit(1);
    }
    let Some(o) = report.overload else {
        eprintln!("FAIL: overload campaign carried no overload stats");
        std::process::exit(1);
    };
    if o.observed == 0 || o.brownout_entries == 0 || o.brownout_exits == 0 {
        eprintln!(
            "FAIL: the surge must shed and cycle brownout (observed={} brownout={}/{})",
            o.observed, o.brownout_entries, o.brownout_exits
        );
        std::process::exit(1);
    }
    if report.retired_policy_reads > 0 {
        eprintln!(
            "FAIL: {} read(s) attributed to a retired policy epoch",
            report.retired_policy_reads
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `--sabotage-shed` self-test: the client misclassifies typed sheds as
/// detector evidence (the exact bug the typed `Overloaded` reply exists
/// to prevent), so the shed-false-positive invariant must fire and dump
/// the flight recorder.
fn sabotage_shed_selftest(seed: u64) -> ! {
    header("chaos --sabotage-shed — misclassified-shed self-test");
    let plan = ChaosPlan::scenario_cascading_overload(seed);
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_virtual(
        FtPolicy::RingRecache,
        &plan,
        CampaignOptions {
            sabotage_shed: true,
            ..Default::default()
        },
    );
    println!("  {report}");
    if !report
        .violations
        .iter()
        .any(|v| v.contains("shed false positive"))
    {
        println!("\nFAIL: misclassified sheds did not trip the false-positive invariant");
        std::process::exit(1);
    }
    selftest_verdict(&report)
}

/// `--compare-adaptive`: shifting-intensity campaigns for each seed under
/// every static contender plus the adaptive controller, with the
/// matches-or-beats assertion on both headline metrics.
fn run_compare_adaptive(base_seed: u64, campaigns: u64) -> ! {
    header(&format!(
        "chaos --compare-adaptive — adaptive vs static postures, {campaigns} campaign(s) from seed {base_seed}"
    ));
    let contenders = compare_adaptive_contenders();
    let mut per_contender: Vec<ModeAgg> = contenders.iter().map(|_| ModeAgg::default()).collect();
    let mut losses = 0u64;
    let mut switches = 0u64;
    let mut retired = 0u64;
    for offset in 0..campaigns {
        let seed = base_seed + offset;
        let reports = run_campaign_compare_adaptive(seed);
        let adaptive = reports.last().expect("adaptive contender");
        switches += adaptive.policy_switches;
        retired += adaptive.retired_policy_reads;
        for ((&(mode, rf), report), agg) in contenders
            .iter()
            .zip(&reports)
            .zip(per_contender.iter_mut())
        {
            println!("  {report}");
            if !report.passed() {
                if let Some(dump) = &report.flight_dump {
                    println!("{dump}");
                }
            }
            agg.absorb(report);
            if mode == RecoveryMode::Adaptive {
                continue;
            }
            let label = compare_label(mode, rf);
            for metric in adaptive_losses(adaptive, report) {
                println!("  LOSS: adaptive {metric} worse than {label} (seed {seed})");
                losses += 1;
            }
        }
    }
    println!(
        "\n{:<14} {:>5} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "contender", "kills", "rec p50", "rec p99", "quiesce", "warm rd p99", "fault rd p99"
    );
    for (&(mode, rf), agg) in contenders.iter().zip(&per_contender) {
        println!("{}", agg.row(&compare_label(mode, rf)));
    }
    println!(
        "\nadaptive: switches={switches} retired_policy_reads={retired} across {campaigns} campaign(s)"
    );
    let failures: u64 = per_contender.iter().map(|a| a.failures).sum();
    if failures > 0 || losses > 0 || retired > 0 || switches == 0 {
        println!(
            "\nFAIL: failures={failures} losses={losses} retired_reads={retired} switches={switches}"
        );
        std::process::exit(1);
    }
    println!("\nadaptive matched or beat every static contender");
    std::process::exit(0);
}

/// `--explore --sabotage-atomicity` (or standalone `--sabotage-atomicity`):
/// the explorer's self-test. The seeded check-then-act bug must be found
/// by the bounded DFS (FIFO hides it), the emitted schedule file must
/// replay byte-identically, or the harness itself is broken.
fn sabotage_atomicity_selftest() -> ! {
    header("chaos --sabotage-atomicity — seeded-bug schedule-explorer self-test");
    match sabotage_atomicity() {
        Ok((schedule_file, verdict)) => {
            println!("explorer found the seeded lost update: {verdict}");
            println!("replay verified byte-identical; schedule file:\n");
            print!("{schedule_file}");
            println!("\nsabotage self-test OK: explorer found and replayed the seeded bug");
            std::process::exit(0);
        }
        Err(e) => {
            println!("\nFAIL: {e}");
            std::process::exit(1);
        }
    }
}

/// `--explore`: model-check the failure-during-recache scenario under
/// explored schedules. Default is the smoke pair (random-walk then PCT);
/// `--explore-strategy dfs|random|pct` picks one search. Exits non-zero
/// if any explored schedule violates a campaign invariant.
fn run_explore(base_seed: u64, schedules: usize, depth: usize, strategy_arg: Option<&str>) -> ! {
    let strategies: Vec<ExploreStrategy> = match strategy_arg {
        Some("random") => vec![ExploreStrategy::RandomWalk],
        Some("pct") => vec![ExploreStrategy::Pct { d: 3 }],
        Some("dfs") => vec![ExploreStrategy::Dfs],
        Some(other) => {
            eprintln!("unknown --explore-strategy {other:?} (expected random|pct|dfs)");
            std::process::exit(2);
        }
        None => vec![ExploreStrategy::RandomWalk, ExploreStrategy::Pct { d: 3 }],
    };
    header(&format!(
        "chaos --explore — schedule exploration, {schedules} schedule(s)/strategy, depth {depth}, seed {base_seed}"
    ));
    let plan = ChaosPlan::scenario_failure_during_recache(base_seed);
    println!("plan: {}", plan.summary());
    let mut failed = false;
    for strategy in strategies {
        let summary = explore_campaign(
            FtPolicy::RingRecache,
            &plan,
            CampaignOptions {
                recovery: RecoveryMode::Proactive,
                ..Default::default()
            },
            strategy,
            schedules,
            depth,
            base_seed,
        );
        println!("  {summary}");
        for (verdict, schedule_file) in &summary.violations {
            failed = true;
            println!("\n  VIOLATION: {verdict}");
            println!("  replay file (re-runs this interleaving byte-identically):");
            for line in schedule_file.lines() {
                println!("    {line}");
            }
        }
    }
    if failed {
        println!("\nFAIL: explored schedule(s) violated campaign invariants");
        std::process::exit(1);
    }
    println!("\nall explored schedules kept the invariants");
    std::process::exit(0);
}

/// `--check-linz`: linearizability over `campaigns` recorded virtual
/// campaigns (named kill/revive scenarios always included, recovery mode
/// cycling). Exits non-zero on any violation or campaign failure.
fn run_check_linz(base_seed: u64, campaigns: usize) -> ! {
    header(&format!(
        "chaos --check-linz — linearizability over {campaigns} recorded campaign(s) from seed {base_seed}"
    ));
    let summary = check_linz_campaigns(campaigns, base_seed);
    println!("{summary}");
    for v in &summary.violations {
        println!("  VIOLATION: {v}");
    }
    for f in &summary.campaign_failures {
        println!("  campaign failure: {f}");
    }
    if !summary.passed() {
        println!("\nFAIL: linearizability sweep found violations");
        std::process::exit(1);
    }
    println!("\nall recorded histories linearizable");
    std::process::exit(0);
}

/// `--sabotage-linz`: forge a stale-epoch read into a clean recorded
/// history; the checker must flag it.
fn sabotage_linz_selftest(base_seed: u64) -> ! {
    header("chaos --sabotage-linz — forged-stale-read checker self-test");
    match sabotage_linz(base_seed) {
        Ok(v) => {
            println!("checker flagged the forgery: {v}");
            println!("\nsabotage self-test OK: forged stale read was caught");
            std::process::exit(0);
        }
        Err(e) => {
            println!("\nFAIL: {e}");
            std::process::exit(1);
        }
    }
}

/// `--scenarios`: the three named recovery scenarios under proactive
/// recovery. Exits non-zero on any violation.
fn run_scenarios(base_seed: u64) -> ! {
    header("chaos --scenarios — named recovery scenarios (proactive)");
    let mut failures = 0u64;
    for (name, plan) in [
        (
            "failure-during-recache",
            ChaosPlan::scenario_failure_during_recache(base_seed),
        ),
        (
            "double-failure-node+successor",
            ChaosPlan::scenario_double_failure(base_seed),
        ),
        (
            "revive-during-recache",
            ChaosPlan::scenario_revive_during_recache(base_seed),
        ),
    ] {
        let (report, _) = run_campaign_with(
            FtPolicy::RingRecache,
            &plan,
            CampaignOptions {
                recovery: RecoveryMode::Proactive,
                ..Default::default()
            },
        );
        println!("{name}: {report}");
        if let Some(stats) = &report.recovery {
            println!(
                "  recache pushed={} skipped={} failed={} stale_rejected={} hints drained={}",
                stats.recache_pushed,
                stats.recache_skipped,
                stats.recache_failed,
                stats.stale_epoch_rejected,
                stats.hints_drained
            );
        }
        if !report.passed() {
            failures += 1;
            if let Some(dump) = &report.flight_dump {
                println!("{dump}");
            }
        }
    }
    if failures > 0 {
        println!("\nFAIL: {failures} scenario(s) violated invariants");
        std::process::exit(1);
    }
    println!("\nall scenarios passed");
    std::process::exit(0);
}

/// Accumulated degraded-window samples for one recovery mode.
#[derive(Default)]
struct ModeAgg {
    detection: Vec<Duration>,
    recovery: Vec<Duration>,
    quiesce: Vec<Duration>,
    warm_p99: Vec<Duration>,
    fault_p99: Vec<Duration>,
    failures: u64,
}

impl ModeAgg {
    fn absorb(&mut self, report: &CampaignReport) {
        self.detection.extend(report.detection_latencies());
        self.recovery.extend(report.recovery_latencies());
        self.quiesce.extend(report.quiesce_latencies());
        self.warm_p99.extend(report.warm_read_p99);
        self.fault_p99.extend(report.faulted_read_p99);
        if !report.passed() {
            self.failures += 1;
        }
    }

    fn row(&self, mode: &str) -> String {
        format!(
            "{mode:<14} {:>5} {:>10} {:>10} {:>10} {:>12} {:>12}",
            self.recovery.len(),
            fmt_ms(percentile(&self.recovery, 0.50)),
            fmt_ms(percentile(&self.recovery, 0.99)),
            fmt_ms(percentile(&self.quiesce, 0.50)),
            fmt_ms(percentile(&self.warm_p99, 0.50)),
            fmt_ms(percentile(&self.fault_p99, 0.50)),
        )
    }
}

/// `--compare`: the same seeds under RingRecache, lazy vs proactive —
/// the degraded-window table EXPERIMENTS.md quotes.
fn run_compare(base_seed: u64, campaigns: u64) -> ! {
    header(&format!(
        "chaos --compare — lazy vs proactive recovery, {campaigns} campaign(s) from seed {base_seed}"
    ));
    let mut lazy = ModeAgg::default();
    let mut proactive = ModeAgg::default();
    for offset in 0..campaigns {
        let plan = ChaosPlan::generate(base_seed + offset);
        for (mode, agg) in [
            (RecoveryMode::Lazy, &mut lazy),
            (RecoveryMode::Proactive, &mut proactive),
        ] {
            let (report, _) = run_campaign_with(
                FtPolicy::RingRecache,
                &plan,
                CampaignOptions {
                    recovery: mode,
                    ..Default::default()
                },
            );
            println!("  {report}");
            if !report.passed() {
                if let Some(dump) = &report.flight_dump {
                    println!("{dump}");
                }
            }
            agg.absorb(&report);
        }
    }
    println!(
        "\n{:<14} {:>5} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "mode", "kills", "rec p50", "rec p99", "quiesce", "warm rd p99", "fault rd p99"
    );
    println!("{}", lazy.row("lazy"));
    println!("{}", proactive.row("proactive"));
    println!("\n(rec = kill -> first recached hit; quiesce = kill -> engine drained)");

    // The first-hit latency is detection-bound for both modes (the read
    // that trips the declaration fails over inline), so also measure the
    // demand-visible window: kill -> detect -> compute gap -> next epoch,
    // counting the reads that stall on a cold PFS fetch.
    println!("\ndegraded-window probe (kill -> detect -> compute gap -> next epoch sweep):");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>11} {:>11} {:>10}",
        "mode", "lost keys", "cold reads", "detect p50", "quiesce p50", "epoch p99", "warm p99"
    );
    let mut probe_failures = 0u64;
    for mode in [RecoveryMode::Lazy, RecoveryMode::Proactive] {
        let probes: Vec<DegradedWindowReport> = (0..campaigns.min(5))
            .map(|o| run_degraded_window_probe(mode, base_seed + o))
            .collect();
        for p in &probes {
            for v in &p.violations {
                println!("  probe violation (seed {}, {mode}): {v}", p.seed);
                probe_failures += 1;
            }
        }
        let lost: u64 = probes.iter().map(|p| p.lost_keys).sum();
        let cold: u64 = probes.iter().map(|p| p.cold_reads).sum();
        let detect: Vec<Duration> = probes.iter().map(|p| p.detect).collect();
        let quiesce: Vec<Duration> = probes.iter().filter_map(|p| p.quiesce).collect();
        let epoch: Vec<Duration> = probes.iter().filter_map(|p| p.epoch_p99).collect();
        let warm: Vec<Duration> = probes.iter().filter_map(|p| p.warm_p99).collect();
        println!(
            "{:<10} {:>9} {:>10} {:>10} {:>11} {:>11} {:>10}",
            mode.to_string(),
            lost,
            cold,
            fmt_ms(percentile(&detect, 0.50)),
            fmt_ms(percentile(&quiesce, 0.50)),
            fmt_ms(percentile(&epoch, 0.50)),
            fmt_ms(percentile(&warm, 0.50)),
        );
    }
    println!("\n(cold reads = epoch reads that stalled on a PFS fetch; lazy pays one per");
    println!(" un-demanded lost key, proactive re-homed the range during the compute gap)");

    if lazy.failures + proactive.failures + probe_failures > 0 {
        println!(
            "\nFAIL: {} campaign/probe run(s) violated invariants",
            lazy.failures + proactive.failures + probe_failures
        );
        std::process::exit(1);
    }
    println!("\nall campaigns passed");
    std::process::exit(0);
}

fn main() {
    let base_seed: u64 = arg_or("--seed", 1);
    let campaigns: u64 = arg_or("--campaigns", 1);
    if has_flag("--sabotage-atomicity") {
        sabotage_atomicity_selftest();
    }
    if has_flag("--sabotage-linz") {
        sabotage_linz_selftest(base_seed);
    }
    if has_flag("--explore") {
        let strategy = std::env::args()
            .position(|a| a == "--explore-strategy")
            .and_then(|i| std::env::args().nth(i + 1));
        run_explore(
            base_seed,
            arg_or("--schedules", 8),
            arg_or("--depth", 16),
            strategy.as_deref(),
        );
    }
    if has_flag("--check-linz") {
        run_check_linz(base_seed, arg_or("--campaigns", 50));
    }
    if has_flag("--sabotage-shed") {
        sabotage_shed_selftest(base_seed);
    }
    let scenario = std::env::args()
        .position(|a| a == "--scenario")
        .and_then(|i| std::env::args().nth(i + 1));
    if let Some(name) = scenario.as_deref() {
        match name {
            "cascading-overload" => run_cascading_overload(base_seed),
            other => {
                eprintln!("unknown --scenario {other:?} (expected cascading-overload)");
                std::process::exit(2);
            }
        }
    }
    if has_flag("--sabotage-flap") {
        run_adaptive_campaign(base_seed, true);
    }
    if has_flag("--adaptive") {
        run_adaptive_campaign(base_seed, false);
    }
    if has_flag("--compare-adaptive") {
        run_compare_adaptive(base_seed, campaigns);
    }
    if has_flag("--virtual") {
        run_virtual_sweep(base_seed, arg_or("--nodes", 128), arg_or("--files", 256));
    }
    if has_flag("--sabotage") {
        sabotage_selftest(base_seed);
    }
    if has_flag("--sabotage-recovery") {
        sabotage_recovery_selftest(base_seed);
    }
    if has_flag("--scenarios") {
        run_scenarios(base_seed);
    }
    if has_flag("--compare") {
        run_compare(base_seed, campaigns);
    }
    let policy_filter = std::env::args()
        .position(|a| a == "--policy")
        .and_then(|i| std::env::args().nth(i + 1));
    let policies: Vec<FtPolicy> = match policy_filter.as_deref() {
        Some("noft") => vec![FtPolicy::NoFt],
        Some("pfs") => vec![FtPolicy::PfsRedirect],
        Some("ring") => vec![FtPolicy::RingRecache],
        Some(other) => {
            eprintln!("unknown --policy {other:?} (expected noft|pfs|ring)");
            std::process::exit(2);
        }
        None => vec![FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache],
    };
    let recovery = match std::env::args()
        .position(|a| a == "--recovery")
        .and_then(|i| std::env::args().nth(i + 1))
        .as_deref()
    {
        Some("proactive") => RecoveryMode::Proactive,
        Some("adaptive") => RecoveryMode::Adaptive,
        Some("lazy") | None => RecoveryMode::Lazy,
        Some(other) => {
            eprintln!("unknown --recovery {other:?} (expected lazy|proactive|adaptive)");
            std::process::exit(2);
        }
    };

    header(&format!(
        "chaos — {campaigns} campaign(s) from seed {base_seed}, {} policies, {recovery} recovery",
        policies.len()
    ));

    let mut failures = 0u64;
    let mut detection: Vec<Duration> = Vec::new();
    let mut recovery_lats: Vec<Duration> = Vec::new();
    let mut quiesce: Vec<Duration> = Vec::new();
    for offset in 0..campaigns {
        let seed = base_seed + offset;
        let plan = ChaosPlan::generate(seed);
        println!("seed={seed} plan: {}", plan.summary());
        for &policy in &policies {
            let (report, _) = run_campaign_with(
                policy,
                &plan,
                CampaignOptions {
                    recovery,
                    ..Default::default()
                },
            );
            println!("  {report}");
            for line in report.latency_summary() {
                println!("    window: {line}");
            }
            if !report.passed() {
                failures += 1;
                if let Some(dump) = &report.flight_dump {
                    println!("{dump}");
                }
            }
            // Aggregate degraded-window latencies only for the policies
            // that recover (NoFt aborts by design, so a kill never
            // completes an incident there).
            if policy != FtPolicy::NoFt {
                detection.extend(report.detection_latencies());
                recovery_lats.extend(report.recovery_latencies());
                quiesce.extend(report.quiesce_latencies());
            }
        }
    }

    println!("\ndegraded-window latency across all campaigns:");
    print_percentiles("detection (kill -> declare)", &detection);
    print_percentiles("recovery  (kill -> first recached hit)", &recovery_lats);
    if recovery == RecoveryMode::Proactive {
        print_percentiles("quiesce   (kill -> engine drained)", &quiesce);
    }

    if failures > 0 {
        println!("\nFAIL: {failures} campaign run(s) violated invariants");
        std::process::exit(1);
    }
    println!("\nall campaigns passed");
}
