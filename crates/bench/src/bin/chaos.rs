//! Chaos campaigns — seeded gray-failure schedules against the threaded
//! cluster, with four invariants checked after every campaign (read
//! integrity, recache economy, livelock freedom, no false failure
//! declarations for degraded-but-alive nodes).
//!
//! `cargo run -p ftc-bench --release --bin chaos [--seed 1] [--campaigns 50] [--policy ring|pfs|noft] [--sabotage]`
//!
//! The fault schedule and every verdict are pure functions of the seed:
//! `chaos --seed N` replays the same PASS/FAIL outcome byte-identically.
//! Measured degraded-window latencies (printed per kill, and aggregated
//! as p50/p99 across all campaigns at the end) are wall-clock and vary
//! run to run. Exits non-zero if any invariant is violated.
//!
//! `--sabotage` runs the flight-recorder self-test instead: one campaign
//! with the recache budget forced to zero, which must FAIL and must emit
//! a flight dump — proving the postmortem path works before anyone needs
//! it in anger. The forced violation does not affect the exit code; a
//! *missing* dump does.

use ft_cache::chaos::{run_campaign, run_campaign_sabotaged, ChaosAction, ChaosPlan};
use ftc_bench::{arg_or, has_flag, header};
use ftc_core::FtPolicy;
use ftc_obs::percentile;
use std::time::Duration;

fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1e3),
        None => "-".to_owned(),
    }
}

/// Print nearest-rank p50/p99 of a latency list, or note its absence.
fn print_percentiles(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("  {label}: no kill-anchored incidents");
        return;
    }
    println!(
        "  {label}: n={} p50={} p99={} max={}",
        samples.len(),
        fmt_ms(percentile(samples, 0.50)),
        fmt_ms(percentile(samples, 0.99)),
        fmt_ms(samples.iter().max().copied()),
    );
}

/// `--sabotage` self-test: force a recache-economy violation on a plan
/// with a guaranteed kill and require the flight dump to materialize.
fn sabotage_selftest(base_seed: u64) -> ! {
    header("chaos --sabotage — forced-violation flight-recorder self-test");
    // Find the first seed whose plan already schedules a kill, so the
    // sabotaged run exercises the same path as a real failing campaign.
    let plan = (base_seed..base_seed + 1000)
        .map(ChaosPlan::generate)
        .find(|p| {
            p.events
                .iter()
                .any(|e| matches!(e.action, ChaosAction::Kill(_)))
        })
        .unwrap_or_else(|| {
            eprintln!("no plan with a kill in 1000 seeds from {base_seed}");
            std::process::exit(2);
        });
    println!("seed={} plan: {}", plan.seed, plan.summary());
    let report = run_campaign_sabotaged(FtPolicy::RingRecache, &plan);
    println!("  {report}");
    match report.flight_dump.as_deref() {
        Some(dump) if !report.passed() => {
            println!("\n{dump}");
            println!("\nsabotage self-test OK: violation fired and flight dump emitted");
            std::process::exit(0);
        }
        Some(_) => {
            println!("\nFAIL: dump emitted but no invariant fired");
            std::process::exit(1);
        }
        None => {
            println!("\nFAIL: sabotaged campaign produced no flight dump");
            std::process::exit(1);
        }
    }
}

fn main() {
    let base_seed: u64 = arg_or("--seed", 1);
    let campaigns: u64 = arg_or("--campaigns", 1);
    if has_flag("--sabotage") {
        sabotage_selftest(base_seed);
    }
    let policy_filter = std::env::args()
        .position(|a| a == "--policy")
        .and_then(|i| std::env::args().nth(i + 1));
    let policies: Vec<FtPolicy> = match policy_filter.as_deref() {
        Some("noft") => vec![FtPolicy::NoFt],
        Some("pfs") => vec![FtPolicy::PfsRedirect],
        Some("ring") => vec![FtPolicy::RingRecache],
        Some(other) => {
            eprintln!("unknown --policy {other:?} (expected noft|pfs|ring)");
            std::process::exit(2);
        }
        None => vec![FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache],
    };

    header(&format!(
        "chaos — {campaigns} campaign(s) from seed {base_seed}, {} policies",
        policies.len()
    ));

    let mut failures = 0u64;
    let mut detection: Vec<Duration> = Vec::new();
    let mut recovery: Vec<Duration> = Vec::new();
    for offset in 0..campaigns {
        let seed = base_seed + offset;
        let plan = ChaosPlan::generate(seed);
        println!("seed={seed} plan: {}", plan.summary());
        for &policy in &policies {
            let report = run_campaign(policy, &plan);
            println!("  {report}");
            for line in report.latency_summary() {
                println!("    window: {line}");
            }
            if !report.passed() {
                failures += 1;
                if let Some(dump) = &report.flight_dump {
                    println!("{dump}");
                }
            }
            // Aggregate degraded-window latencies only for the policies
            // that recover (NoFt aborts by design, so a kill never
            // completes an incident there).
            if policy != FtPolicy::NoFt {
                detection.extend(report.detection_latencies());
                recovery.extend(report.recovery_latencies());
            }
        }
    }

    println!("\ndegraded-window latency across all campaigns:");
    print_percentiles("detection (kill -> declare)", &detection);
    print_percentiles("recovery  (kill -> first recached hit)", &recovery);

    if failures > 0 {
        println!("\nFAIL: {failures} campaign run(s) violated invariants");
        std::process::exit(1);
    }
    println!("\nall campaigns passed");
}
