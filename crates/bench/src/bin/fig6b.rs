//! Figure 6(b) — impact of virtual-node count on post-failure load
//! redistribution: 1024 physical nodes, 500 trials, 524,288 files.
//!
//! `cargo run -p ftc-bench --release --bin fig6b [--nodes 1024] [--files 524288] [--trials 500]`

use ftc_bench::arg_or;
use ftc_sim::{fig6b, PAPER_VNODE_COUNTS};

fn main() {
    let nodes: u32 = arg_or("--nodes", 1024);
    let files: u32 = arg_or("--files", 524_288);
    let trials: u32 = arg_or("--trials", 500);
    let seed: u64 = arg_or("--seed", 42);

    ftc_bench::header(&format!(
        "Fig 6(b) — load redistribution after a failure ({nodes} nodes, {files} files, {trials} trials)"
    ));
    println!(
        "{:>7} {:>16} {:>10} {:>18} {:>10}",
        "vnodes", "receiver nodes", "±std", "files/receiver", "±std"
    );
    for row in fig6b(&PAPER_VNODE_COUNTS, nodes, files, trials, seed) {
        println!(
            "{:>7} {:>16.1} {:>10.1} {:>18.1} {:>10.1}",
            row.vnodes,
            row.receivers.mean,
            row.receivers.std_dev,
            row.files_per_receiver.mean,
            row.files_per_receiver.std_dev,
        );
    }
    println!(
        "[paper: ~3 receivers at 10 vnodes -> ~300 at 1000:1, saturating around ~350;\n files/receiver falls correspondingly; diminishing returns beyond 500; optimal 100]"
    );
}
