//! Ablation — failure-detector sensitivity: TTL and timeout-limit vs
//! detection latency and false positives, on a live threaded cluster with
//! injected transient delay spikes.
//!
//! `cargo run -p ftc-bench --release --bin ablation_detector`

use ftc_core::{Cluster, ClusterConfig, FtPolicy};
use ftc_hashring::NodeId;
use std::time::{Duration, Instant};

/// Run one configuration: a transient spike shorter than death, then a
/// real kill; report whether the spike caused a false positive, how long
/// real detection took (client-poll measurement), and the kill→declare
/// latency the observability timeline recorded for the same incident.
fn run_case(ttl_ms: u64, limit: u32, spike_ms: u64) -> (bool, Duration, Option<Duration>) {
    let mut cfg = ClusterConfig::small(4, FtPolicy::RingRecache);
    cfg.ft.detector.ttl = Duration::from_millis(ttl_ms);
    cfg.ft.detector.timeout_limit = limit;
    let cluster = Cluster::start(cfg).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 24, 32);
    let client = cluster.client(0);
    for p in &paths {
        client.read(p).unwrap();
    }

    // Transient spike on node 1: slower than TTL, but it recovers.
    cluster
        .network()
        .delay_node(NodeId(1), Duration::from_millis(spike_ms));
    for p in paths.iter().take(8) {
        let _ = client.read(p);
    }
    cluster.network().delay_node(NodeId(1), Duration::ZERO);
    for p in paths.iter().take(8) {
        let _ = client.read(p);
    }
    let false_positive = client.failed_nodes().contains(&NodeId(1));

    // Real failure on node 2: measure time until declared.
    cluster.kill(NodeId(2));
    let t0 = Instant::now();
    let mut detect = Duration::ZERO;
    'outer: for _ in 0..20 {
        for p in &paths {
            let _ = client.read(p);
            if client.failed_nodes().contains(&NodeId(2)) {
                detect = t0.elapsed();
                break 'outer;
            }
        }
    }
    let obs_detect = cluster
        .obs()
        .timeline
        .detection_latencies()
        .first()
        .copied();
    cluster.shutdown();
    (false_positive, detect, obs_detect)
}

fn main() {
    ftc_bench::header("Ablation — detector TTL / TIMEOUT_LIMIT sensitivity");
    println!(
        "{:>8} {:>7} {:>10} {:>16} {:>16} {:>16}",
        "TTL(ms)", "limit", "spike(ms)", "false positive?", "detect latency", "obs kill→declare"
    );
    for (ttl, limit) in [(20u64, 1u32), (20, 3), (60, 1), (60, 3)] {
        let (fp, detect, obs_detect) = run_case(ttl, limit, 30);
        println!(
            "{:>8} {:>7} {:>10} {:>16} {:>14.0}ms {:>16}",
            ttl,
            limit,
            30,
            if fp { "YES (bad)" } else { "no" },
            detect.as_secs_f64() * 1e3,
            match obs_detect {
                Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1e3),
                None => "-".to_string(),
            },
        );
    }
    println!(
        "\n[§IV-A: the timeout counter damps false positives from transient delays;\n larger TTL x limit = safer but slower detection — TTL need only exceed the\n longest observed latency]"
    );
}
