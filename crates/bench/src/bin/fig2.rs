//! Figure 2 — failure-type distribution by (a) node count, (b) elapsed
//! time.
//!
//! `cargo run -p ftc-bench --release --bin fig2`

use ftc_slurm::{by_elapsed, by_node_count, render::render_fig2, TraceGenerator};

fn main() {
    ftc_bench::header("Fig 2 — failure-type distribution (synthetic trace)");
    let trace = TraceGenerator::frontier().generate();
    print!("{}", render_fig2(&by_node_count(&trace), "node count"));
    println!("[paper: in 7750-9300 nodes, NODE_FAIL = 46.04%, NODE_FAIL+TIMEOUT = 78.60%]\n");
    print!("{}", render_fig2(&by_elapsed(&trace), "elapsed (min)"));
    println!("[paper: elapsed time does not significantly affect the failure-type mix]");
}
