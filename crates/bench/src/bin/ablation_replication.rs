//! Ablation — write-through replication (the "no-PFS-fallback" extension):
//! post-failure PFS traffic and NVMe footprint at replication factor 1
//! (the paper's design) vs 2 and 3, on a live threaded cluster.
//!
//! `cargo run -p ftc-bench --release --bin ablation_replication`

use ftc_core::{Cluster, ClusterConfig, FtPolicy};
use ftc_hashring::NodeId;

fn run_factor(replication: u32) -> (u64, u64, u64, u64) {
    let mut cfg = ClusterConfig::small(5, FtPolicy::RingRecache);
    cfg.ft.replication = replication;
    let cluster = Cluster::start(cfg).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 60, 1024);
    let client = cluster.client(0);
    for p in &paths {
        client.read(p).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(120));
    let footprint = cluster.metrics().total_resident_bytes();

    cluster.kill(NodeId(2));
    cluster.pfs().reset_read_counters();
    for _ in 0..3 {
        for p in &paths {
            client.read(p).unwrap();
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(120));
    let post_failure_pfs = cluster.pfs().total_reads();
    let replicas = cluster.metrics().clients.replicas_written;
    let read_p99 = ftc_bench::read_latency_snapshot(&cluster).quantile(0.99);
    cluster.shutdown();
    (post_failure_pfs, footprint, replicas, read_p99)
}

fn main() {
    ftc_bench::header("Ablation — replication factor vs post-failure PFS traffic");
    println!(
        "{:>12} {:>20} {:>18} {:>16} {:>14}",
        "replication", "post-failure PFS", "NVMe bytes (warm)", "replicas pushed", "read p99 (us)"
    );
    for k in [1u32, 2, 3] {
        let (pfs, bytes, replicas, read_p99) = run_factor(k);
        println!(
            "{:>12} {:>20} {:>18} {:>16} {:>14}",
            k, pfs, bytes, replicas, read_p99
        );
    }
    println!(
        "\n[k=1 is the paper's design: one cache copy, PFS as fallback (recache burst on\n failure). k>=2 removes the burst entirely at the cost of k x NVMe footprint —\n the trade-off the paper's conclusion hints at for future work]"
    );
}
