//! Figure 3 — the two fault-tolerance protocol flows, traced live on a
//! threaded in-process cluster: (a) PFS redirection, (b) elastic
//! recaching with the hash ring.
//!
//! `cargo run -p ftc-bench --release --bin fig3_trace`

use ftc_core::{Cluster, ClusterConfig, FtPolicy, ReadVia};
use ftc_hashring::NodeId;

fn trace_policy(policy: FtPolicy, label: &str, steps: &[&str]) {
    ftc_bench::header(label);
    for s in steps {
        println!("  {s}");
    }
    println!();

    let cluster = Cluster::start(ClusterConfig::small(4, policy)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 12, 64);
    let client = cluster.client(0);

    // Epoch 1: populate the caches.
    for p in &paths {
        client.read(p).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(60));
    println!(
        "epoch 1 complete: caches warm, {} files staged",
        paths.len()
    );

    // Kill whichever node owns the first file, so the narrated reads are
    // the ones the failure actually affects.
    let victim_file = paths[0].clone();
    let victim_node: NodeId = client.owner_of(&victim_file).expect("live owner");
    println!(
        "file {victim_file} is owned by {victim_node} — killing {victim_node} (sacct DRAIN equivalent)"
    );
    cluster.kill(victim_node);

    // Read the lost file repeatedly; narrate the provenance transitions.
    for i in 1..=4 {
        let out = client.read_traced(&victim_file).unwrap();
        let via = match out.via {
            ReadVia::ServerNvme(n) => format!("served from {n}'s NVMe"),
            ReadVia::ServerPfsFetch(n) => format!("{n} fetched from PFS and is recaching"),
            ReadVia::DirectPfs => "client redirected to PFS".to_string(),
        };
        println!(
            "  read #{i}: {via}   (failed nodes: {:?})",
            client.failed_nodes()
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
    }

    let m = cluster.metrics();
    println!(
        "totals: {} ok reads, {} timeouts, {} direct-PFS, {} server-PFS fetches, {} nvme hits\n",
        m.clients.reads_ok,
        m.clients.rpc_timeouts,
        m.clients.pfs_direct_reads,
        m.clients.pfs_fetches_via_server,
        m.clients.nvme_hits,
    );
    ftc_bench::print_latency_percentiles(&cluster);
    println!();
    cluster.shutdown();
}

fn main() {
    trace_policy(
        FtPolicy::PfsRedirect,
        "Fig 3(a) — PFS redirection",
        &[
            "① client intercepts the read (LD_PRELOAD equivalent)",
            "② RPC to the owner times out repeatedly → node flagged failed",
            "③ this and all future reads of its keys go to the PFS",
            "④ data returned to the training job — every epoch pays again",
        ],
    );
    trace_policy(
        FtPolicy::RingRecache,
        "Fig 3(b) — elastic recaching with hash ring",
        &[
            "❶ client intercepts the read; ring maps path → owner",
            "❷ timeout ⇒ failed node removed from the hash ring",
            "❸ clockwise successor serves: first access fetches from PFS and recaches",
            "❹ subsequent epochs hit the successor's NVMe — PFS paid exactly once",
        ],
    );
}
