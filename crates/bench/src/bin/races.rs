//! Happens-before race detection over traced chaos campaigns.
//!
//! `cargo run -p ftc-bench --release --bin races [--seed 1] [--campaigns 50] [--inject]`
//!
//! Each campaign replays a seeded gray-failure schedule on a real
//! threaded cluster with vector-clock tracing enabled, then feeds the
//! trace through `ftc_analysis::check_trace`. A correctly synchronised
//! implementation reports **zero races** across every campaign; `--inject`
//! forges one unsynchronised stale-epoch read into each trace and
//! verifies the detector flags it (exit codes invert accordingly, so both
//! modes are CI-able).

use ft_cache::chaos::{run_campaign_traced, ChaosPlan};
use ftc_analysis::{check_trace, forge_stale_epoch_read, RaceKind};
use ftc_bench::{arg_or, has_flag, header};
use ftc_core::FtPolicy;

fn main() {
    let base_seed: u64 = arg_or("--seed", 1);
    let campaigns: u64 = arg_or("--campaigns", 50);
    let inject = has_flag("--inject");

    header(&format!(
        "races — {campaigns} traced campaign(s) from seed {base_seed}{}",
        if inject {
            ", with forged stale-epoch reads"
        } else {
            ""
        }
    ));

    let mut campaign_failures = 0u64;
    let mut races_found = 0u64;
    let mut injected_missed = 0u64;
    let mut records_total = 0u64;

    for offset in 0..campaigns {
        let seed = base_seed + offset;
        let plan = ChaosPlan::generate(seed);
        let (report, trace) = run_campaign_traced(FtPolicy::RingRecache, &plan, true);
        if !report.passed() {
            campaign_failures += 1;
        }
        let Some(mut log) = trace else {
            println!("seed={seed} -> no trace (boot failure?)");
            campaign_failures += 1;
            continue;
        };
        records_total += log.len() as u64;
        if inject {
            if !forge_stale_epoch_read(&mut log) {
                // A plan with no kill produces no membership change, so
                // there is no epoch retirement to race against.
                println!(
                    "seed={seed} records={} -> no membership event; nothing to forge",
                    log.len()
                );
                continue;
            }
            let flagged = check_trace(&log)
                .iter()
                .any(|r| r.kind == RaceKind::StaleEpochRead);
            if !flagged {
                injected_missed += 1;
            }
            println!(
                "seed={seed} records={} forged=true -> {}",
                log.len(),
                if flagged { "CAUGHT" } else { "MISSED" }
            );
        } else {
            let races = check_trace(&log);
            races_found += races.len() as u64;
            println!(
                "seed={seed} records={} races={} -> {}",
                log.len(),
                races.len(),
                if races.is_empty() { "CLEAN" } else { "RACE" }
            );
            for r in &races {
                println!("  {r}");
            }
        }
    }

    println!("---");
    if inject {
        println!(
            "{campaigns} campaigns, {records_total} trace records, \
             {injected_missed} forged race(s) missed, {campaign_failures} campaign failure(s)"
        );
    } else {
        println!(
            "{campaigns} campaigns, {records_total} trace records, \
             {races_found} race(s), {campaign_failures} campaign failure(s)"
        );
    }
    let failed = if inject {
        injected_missed > 0 || campaign_failures > 0
    } else {
        races_found > 0 || campaign_failures > 0
    };
    if failed {
        std::process::exit(1);
    }
}
