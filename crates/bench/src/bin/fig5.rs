//! Figure 5 — end-to-end CosmoFlow training time, 64–1024 nodes, with and
//! without failures, for NoFT / FT w/ PFS / FT w/ NVMe.
//!
//! `cargo run -p ftc-bench --release --bin fig5 [--scale 16] [--failures 5] [--seed 2024]`
//!
//! `--scale k` divides the cosmoUniverse sample count by `k` (size per
//! sample preserved). `--scale 1` is the paper's full 524,288-sample
//! dataset (slower; minutes of wall time).

use ftc_bench::{arg_or, fmt_mmss};
use ftc_core::FtPolicy;
use ftc_sim::{fig5, SimCalibration, SimWorkload, PAPER_NODE_COUNTS};

fn main() {
    let scale: u32 = arg_or("--scale", 16);
    let failures: u32 = arg_or("--failures", 5);
    let seed: u64 = arg_or("--seed", 2024);
    let workload = SimWorkload::cosmoflow(scale);
    let cal = SimCalibration::frontier();

    ftc_bench::header(&format!(
        "Fig 5 — end-to-end training time ({} samples = cosmoUniverse/{}, {} epochs, {} failures)",
        workload.samples, scale, workload.epochs, failures
    ));
    let cells = fig5(&PAPER_NODE_COUNTS, workload, &cal, failures, seed);

    println!("\n(a) no failures — simulated seconds (mm:ss)");
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "nodes", "NoFT", "FT w/ PFS", "FT w/ NVMe"
    );
    for &n in &PAPER_NODE_COUNTS {
        let get = |p: FtPolicy| {
            cells
                .iter()
                .find(|c| c.nodes == n && c.policy == p)
                .unwrap()
                .no_failure_s
        };
        println!(
            "{:>6} {:>16} {:>16} {:>16}",
            n,
            fmt_mmss(get(FtPolicy::NoFt)),
            fmt_mmss(get(FtPolicy::PfsRedirect)),
            fmt_mmss(get(FtPolicy::RingRecache)),
        );
    }
    println!("[paper: all three within 1-2 min; NoFT consistently best; time falls with nodes]");

    println!("\n(b) {failures} random single-node failures after epoch 1");
    println!(
        "{:>6} {:>14} {:>14} {:>9} {:>14} {:>9} {:>10}",
        "nodes", "no-fail (ref)", "FT w/ PFS", "+%", "FT w/ NVMe", "+%", "NVMe win"
    );
    for &n in &PAPER_NODE_COUNTS {
        let get = |p: FtPolicy| {
            cells
                .iter()
                .find(|c| c.nodes == n && c.policy == p)
                .unwrap()
        };
        let noft = get(FtPolicy::NoFt);
        let pfs = get(FtPolicy::PfsRedirect);
        let ring = get(FtPolicy::RingRecache);
        let p = pfs.with_failures_s.unwrap();
        let r = ring.with_failures_s.unwrap();
        println!(
            "{:>6} {:>14} {:>14} {:>8.1}% {:>14} {:>8.1}% {:>9.1}%",
            n,
            fmt_mmss(noft.no_failure_s),
            fmt_mmss(p),
            pfs.overhead_pct.unwrap(),
            fmt_mmss(r),
            ring.overhead_pct.unwrap(),
            100.0 * (p - r) / p,
        );
    }
    println!(
        "[paper: FT w/ PFS +32.2% (64) -> +68.7% (1024) vs its no-failure run;\n         FT w/ NVMe +12.5% -> +26.7%; FT w/ NVMe beats FT w/ PFS by 14.8% / 24.9%]"
    );

    // Recache accounting, for the "one extra PFS access per lost file" claim.
    println!("\npost-failure PFS reads (owner fetches + client redirects):");
    for &n in &PAPER_NODE_COUNTS {
        let get = |p: FtPolicy| {
            cells
                .iter()
                .find(|c| c.nodes == n && c.policy == p)
                .unwrap()
        };
        let pfs = get(FtPolicy::PfsRedirect).failure_report.as_ref().unwrap();
        let ring = get(FtPolicy::RingRecache).failure_report.as_ref().unwrap();
        let cold = u64::from(workload.samples);
        println!(
            "  n={n:<5} FT w/ PFS: {:>8}   FT w/ NVMe: {:>8}   (cold-epoch floor: {cold})",
            pfs.pfs_reads, ring.pfs_reads
        );
    }
}
