//! Figure 6(a) — in-depth analysis of per-epoch time in the event of a
//! failure, 64–1024 nodes.
//!
//! `cargo run -p ftc-bench --release --bin fig6a [--scale 16] [--seed 7]`

use ftc_bench::{arg_or, fmt_mmss};
use ftc_sim::{fig6a, SimCalibration, SimWorkload, PAPER_NODE_COUNTS};

fn main() {
    let scale: u32 = arg_or("--scale", 16);
    let seed: u64 = arg_or("--seed", 7);
    let workload = SimWorkload::cosmoflow(scale);
    let cal = SimCalibration::frontier();

    ftc_bench::header(&format!(
        "Fig 6(a) — per-epoch time in the event of a failure ({} samples, {} epochs)",
        workload.samples, workload.epochs
    ));
    println!(
        "{:>6} {:>14} {:>18} {:>18}",
        "nodes", "no failure", "PFS redirection", "NVMe recaching"
    );
    for row in fig6a(&PAPER_NODE_COUNTS, workload, &cal, seed) {
        println!(
            "{:>6} {:>14} {:>18} {:>18}",
            row.nodes,
            fmt_mmss(row.no_failure_epoch_s),
            fmt_mmss(row.pfs_redirect_epoch_s),
            fmt_mmss(row.nvme_recache_epoch_s),
        );
    }
    println!(
        "[paper: no-failure shortest; PFS redirection much longer, especially at 64-128\n nodes; NVMe recaching approaches the no-failure time as the node count grows]"
    );
}
