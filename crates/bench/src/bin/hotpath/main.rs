//! `hotpath` — the PR-over-PR hot-path data-plane benchmark suite.
//!
//! Measures the serving hot path at three depths and writes one JSON
//! document (`results/BENCH_hotpath.json` by convention) that CI and
//! EXPERIMENTS.md cite:
//!
//! * **index / nvme** — store-level microbenchmarks: the lock-striped
//!   [`KeyIndex`] / [`NvmeCache`] against the legacy single-lock layout
//!   (`with_shards(1)` / `sharded(cap, 1)`) at 1/4/8 threads. Striping
//!   targets multicore parallelism; on a single-core host the numbers
//!   come out near 1× and are reported as measured — the `cores` field
//!   records the host so readers can interpret them.
//! * **read_path** — the full client→server→store read path on an
//!   in-process cluster with the Slingshot latency model, across value
//!   sizes and hit ratios, with p50/p99/p999 read latency.
//! * **coalesce** — a duplicate-read storm: N readers sharing one client
//!   hammer the same hot key, with single-flight coalescing off (the
//!   pre-coalescing data plane: every reader issues its own RPC, and the
//!   server's NIC serializes N identical large responses) and on (one
//!   leader RPC per round, followers share the published buffer). The
//!   speedup column is the headline read-throughput gain of the hot-path
//!   data plane at 8 client threads.
//!
//! Modes:
//!
//! * `hotpath [--smoke] [--out results/BENCH_hotpath.json]` — run the
//!   suite and write the JSON (`--smoke`: 1-iteration CI sizes).
//! * `hotpath --validate <file>` — schema-check a results file; exit 1
//!   on a malformed document.
//! * `hotpath --diff-keys <old> <new>` — compare key sets; exit 1 if
//!   `new` dropped any key present in `old` (schema regressions).

use ft_cache::fleet::{json_array, percentile, Json};
use ftc_bench::{arg_or, has_flag, header};
use ftc_core::{Cluster, ClusterConfig, FtPolicy, HvacClient};
use ftc_net::LatencyModel;
use ftc_storage::{KeyIndex, NvmeCache};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

mod json;

/// Threads swept by the store microbenchmarks.
const THREAD_STEPS: &[usize] = &[1, 4, 8];

fn main() {
    // Inspection modes first: they read files and never run a workload.
    let validate: String = arg_or("--validate", String::new());
    if !validate.is_empty() {
        std::process::exit(run_validate(&validate));
    }
    if has_flag("--diff-keys") {
        let args: Vec<String> = std::env::args().collect();
        let pos = args.iter().position(|a| a == "--diff-keys");
        let (old, new) = match pos.and_then(|i| Some((args.get(i + 1)?, args.get(i + 2)?))) {
            Some(pair) => pair,
            None => {
                eprintln!("usage: hotpath --diff-keys <old.json> <new.json>");
                std::process::exit(2);
            }
        };
        std::process::exit(run_diff_keys(old, new));
    }

    let smoke = has_flag("--smoke");
    let out: String = arg_or("--out", "results/BENCH_hotpath.json".to_string());
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    header(&format!(
        "hotpath data-plane bench ({}, {cores} core(s))",
        if smoke { "smoke" } else { "full" }
    ));

    // --- store microbenchmarks -------------------------------------
    let idx_iters: u64 = if smoke { 2_000 } else { 100_000 };
    let mut index_rows = Vec::new();
    for &threads in THREAD_STEPS {
        let single = bench_index(1, threads, idx_iters);
        let sharded = bench_index(KeyIndex::DEFAULT_SHARDS, threads, idx_iters);
        println!(
            "index   threads={threads} single={single:>12.0} ops/s sharded={sharded:>12.0} ops/s ({:.2}x)",
            sharded / single
        );
        index_rows.push(
            Json::obj()
                .u("threads", threads as u64)
                .f("single_ops_per_sec", single)
                .f("sharded_ops_per_sec", sharded)
                .f("speedup", sharded / single)
                .render(),
        );
    }
    let nvme_iters: u64 = if smoke { 2_000 } else { 50_000 };
    let mut nvme_rows = Vec::new();
    for &threads in THREAD_STEPS {
        let single = bench_nvme(1, threads, nvme_iters);
        let sharded = bench_nvme(NvmeCache::DEFAULT_SHARDS, threads, nvme_iters);
        println!(
            "nvme    threads={threads} single={single:>12.0} ops/s sharded={sharded:>12.0} ops/s ({:.2}x)",
            sharded / single
        );
        nvme_rows.push(
            Json::obj()
                .u("threads", threads as u64)
                .f("single_ops_per_sec", single)
                .f("sharded_ops_per_sec", sharded)
                .f("speedup", sharded / single)
                .render(),
        );
    }

    // --- full read path --------------------------------------------
    let sizes: &[usize] = if smoke {
        &[4096]
    } else {
        &[4096, 65536, 1_048_576]
    };
    let readers = if smoke { 4 } else { 8 };
    let mut read_rows = Vec::new();
    for &size in sizes {
        for &hit_pct in &[100u32, 50] {
            let reads_per_reader = match (smoke, size) {
                (true, _) => 8,
                (false, s) if s >= 1_048_576 => 32,
                (false, _) => 64,
            };
            let row = bench_read_path(size, hit_pct, readers, reads_per_reader);
            read_rows.push(row);
        }
    }

    // --- duplicate-read storm: coalescing off vs on ----------------
    let storm_sizes: &[usize] = if smoke {
        &[65_536]
    } else {
        &[65_536, 1_048_576]
    };
    let storm_rounds = if smoke { 8 } else { 64 };
    let mut storm_rows = Vec::new();
    for &size in storm_sizes {
        let row = bench_storm(size, readers, storm_rounds);
        storm_rows.push(row);
    }

    let doc = Json::obj()
        .s("bench", "hotpath")
        .u("smoke", u64::from(smoke))
        .u("cores", cores as u64)
        .raw("index", json_array(&index_rows))
        .raw("nvme", json_array(&nvme_rows))
        .raw("read_path", json_array(&read_rows))
        .raw("coalesce", json_array(&storm_rows))
        .render();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

/// KeyIndex record+owner mix: `threads` workers over a shared key space,
/// total ops/sec. `shards == 1` is the legacy single-lock layout.
fn bench_index(shards: usize, threads: usize, iters: u64) -> f64 {
    let idx = Arc::new(KeyIndex::with_shards(shards));
    let keys: Arc<Vec<String>> = Arc::new((0..4096).map(|i| format!("idx/key_{i:06}")).collect());
    // Pre-populate so `owner` hits are real lookups.
    for (i, k) in keys.iter().enumerate() {
        idx.record((i % 8) as u32, k);
    }
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let idx = Arc::clone(&idx);
            let keys = Arc::clone(&keys);
            thread::spawn(move || {
                let mut h = t as u64 + 1;
                for _ in 0..iters {
                    // Cheap LCG so the key stream differs per thread.
                    h = h
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = &keys[(h >> 33) as usize % keys.len()];
                    idx.record((h % 8) as u32, k);
                    let _ = idx.owner(k);
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    (threads as u64 * iters * 2) as f64 / t0.elapsed().as_secs_f64()
}

/// NvmeCache get-heavy loop over a resident working set; `shards == 1`
/// is the legacy single-lock layout.
fn bench_nvme(shards: usize, threads: usize, iters: u64) -> f64 {
    let cache = Arc::new(NvmeCache::sharded(u64::MAX, shards));
    let keys: Arc<Vec<String>> = Arc::new((0..2048).map(|i| format!("nvme/obj_{i:06}")).collect());
    let value = vec![7u8; 4096];
    for k in keys.iter() {
        cache.insert(k, value.as_slice());
    }
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let keys = Arc::clone(&keys);
            thread::spawn(move || {
                let mut h = t as u64 + 1;
                for _ in 0..iters {
                    h = h
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = &keys[(h >> 33) as usize % keys.len()];
                    let _ = cache.get(k);
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    (threads as u64 * iters) as f64 / t0.elapsed().as_secs_f64()
}

/// Boot a serving cluster with the Slingshot link model and the hot-path
/// data plane as configured by `coalesce`.
fn start_cluster(coalesce: bool) -> Cluster {
    let mut cfg = ClusterConfig::small(4, FtPolicy::RingRecache);
    cfg.latency = LatencyModel::slingshot();
    cfg.ft.coalesce = coalesce;
    match Cluster::start(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster failed to start: {e}");
            std::process::exit(1);
        }
    }
}

/// Read every path once through a throwaway client and wait for the
/// movers to land the recaches, so later reads of these paths are NVMe
/// hits.
fn warm(cluster: &Cluster, paths: &[String]) {
    let warmer = cluster.client(90);
    for p in paths {
        if let Err(e) = warmer.read(p) {
            eprintln!("warm read {p} failed: {e}");
            std::process::exit(1);
        }
    }
    if !cluster.wait_movers_drained(std::time::Duration::from_secs(10)) {
        eprintln!("movers failed to drain during warmup");
        std::process::exit(1);
    }
}

/// Full read path: `readers` clients (one per thread) reading a mix of
/// warm (NVMe-resident) and cold (PFS-only, each read once) paths.
/// Returns the rendered JSON row.
fn bench_read_path(size: usize, hit_pct: u32, readers: usize, reads_per_reader: usize) -> String {
    let cluster = start_cluster(true);
    let warm_paths = cluster.stage_dataset("hot", 32, size);
    warm(&cluster, &warm_paths);
    let cold_per_reader = reads_per_reader * (100 - hit_pct as usize) / 100;
    let cold_paths = cluster.stage_dataset("cold", cold_per_reader * readers, size);

    let total_reads = readers * reads_per_reader;
    let start = Arc::new(Barrier::new(readers + 1));
    let warm_paths = Arc::new(warm_paths);
    let cold_paths = Arc::new(cold_paths);
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let client = cluster.client(r as u32);
            let warm_paths = Arc::clone(&warm_paths);
            let cold_paths = Arc::clone(&cold_paths);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                let mut lats = Vec::with_capacity(reads_per_reader);
                let mut errors = 0u64;
                let mut cold_next = r * cold_per_reader;
                for i in 0..reads_per_reader {
                    // Even spread of misses: a 50% ratio alternates, 100%
                    // never goes cold.
                    let go_cold = cold_per_reader > 0
                        && i * cold_per_reader / reads_per_reader
                            != (i + 1) * cold_per_reader / reads_per_reader;
                    let path = if go_cold {
                        let p = &cold_paths[cold_next];
                        cold_next += 1;
                        p
                    } else {
                        &warm_paths[(r * reads_per_reader + i) % warm_paths.len()]
                    };
                    let t0 = Instant::now();
                    if client.read(path).is_err() {
                        errors += 1;
                    }
                    lats.push(t0.elapsed().as_micros() as u64);
                }
                (lats, errors)
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    let mut lats = Vec::with_capacity(total_reads);
    let mut errors = 0u64;
    for h in handles {
        if let Ok((l, e)) = h.join() {
            lats.extend(l);
            errors += e;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    lats.sort_unstable();
    let reads_per_sec = total_reads as f64 / secs;
    let mb_per_sec = (total_reads * size) as f64 / 1e6 / secs;
    println!(
        "read    size={size:<8} hit={hit_pct:>3}% readers={readers} reads={total_reads} \
         {reads_per_sec:>10.0} reads/s {mb_per_sec:>8.1} MB/s p50={}us p99={}us p999={}us",
        percentile(&lats, 0.50),
        percentile(&lats, 0.99),
        percentile(&lats, 0.999),
    );
    cluster.shutdown();
    Json::obj()
        .u("value_bytes", size as u64)
        .u("hit_pct", u64::from(hit_pct))
        .u("readers", readers as u64)
        .u("reads", total_reads as u64)
        .u("errors", errors)
        .f("reads_per_sec", reads_per_sec)
        .f("mb_per_sec", mb_per_sec)
        .u("p50_us", percentile(&lats, 0.50))
        .u("p99_us", percentile(&lats, 0.99))
        .u("p999_us", percentile(&lats, 0.999))
        .render()
}

/// One storm arm: `readers` threads sharing one client all read the same
/// hot key each round, separated by barriers so every round is a clean
/// duplicate burst. Returns `(reads, errors, reads_per_sec, metrics)`.
fn storm_arm(
    coalesce: bool,
    size: usize,
    readers: usize,
    rounds: usize,
) -> (u64, u64, f64, (u64, u64, u64)) {
    let cluster = start_cluster(coalesce);
    let paths = cluster.stage_dataset("storm", 1, size);
    warm(&cluster, &paths);
    let client = cluster.client(0);
    let hot = Arc::new(paths[0].clone());
    // +1: the timing thread participates in both barriers.
    let start = Arc::new(Barrier::new(readers + 1));
    let done = Arc::new(Barrier::new(readers + 1));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let client: Arc<HvacClient> = Arc::clone(&client);
            let hot = Arc::clone(&hot);
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut errors = 0u64;
                loop {
                    start.wait();
                    // ordering: Relaxed — the barrier orders the flag
                    // write; this is a plain latch read after it.
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return errors;
                    }
                    if client.read(&hot).is_err() {
                        errors += 1;
                    }
                    done.wait();
                }
            })
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..rounds {
        start.wait();
        done.wait();
    }
    let secs = t0.elapsed().as_secs_f64();
    // ordering: Relaxed — the next barrier orders this write for readers.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    start.wait();
    let mut errors = 0u64;
    for h in handles {
        errors += h.join().unwrap_or(0);
    }
    let reads = (readers * rounds) as u64;
    let snap = client.metrics().snapshot();
    let stats = (
        snap.singleflight_leaders,
        snap.coalesced_reads,
        snap.coalesced_stale_retries,
    );
    cluster.shutdown();
    (reads, errors, reads as f64 / secs, stats)
}

/// Duplicate-read storm at one value size: coalescing off (legacy data
/// plane) vs on (hot path). Returns the rendered JSON row.
fn bench_storm(size: usize, readers: usize, rounds: usize) -> String {
    let (reads, off_errors, off_rps, _) = storm_arm(false, size, readers, rounds);
    let (_, on_errors, on_rps, (leaders, coalesced, stale)) =
        storm_arm(true, size, readers, rounds);
    let speedup = on_rps / off_rps;
    println!(
        "storm   size={size:<8} readers={readers} rounds={rounds} off={off_rps:>9.0} reads/s \
         on={on_rps:>9.0} reads/s ({speedup:.2}x) leaders={leaders} coalesced={coalesced} stale={stale}"
    );
    Json::obj()
        .u("value_bytes", size as u64)
        .u("readers", readers as u64)
        .u("rounds", rounds as u64)
        .u("reads", reads)
        .u("errors", off_errors + on_errors)
        .f("off_reads_per_sec", off_rps)
        .f("on_reads_per_sec", on_rps)
        .f("speedup", speedup)
        .u("leaders", leaders)
        .u("coalesced", coalesced)
        .u("stale_retries", stale)
        .render()
}

// ---------------------------------------------------------------------
// Inspection modes
// ---------------------------------------------------------------------

/// Per-entry required numeric keys for each array section.
const SCHEMA: &[(&str, &[&str])] = &[
    (
        "index",
        &[
            "threads",
            "single_ops_per_sec",
            "sharded_ops_per_sec",
            "speedup",
        ],
    ),
    (
        "nvme",
        &[
            "threads",
            "single_ops_per_sec",
            "sharded_ops_per_sec",
            "speedup",
        ],
    ),
    (
        "read_path",
        &[
            "value_bytes",
            "hit_pct",
            "readers",
            "reads",
            "errors",
            "reads_per_sec",
            "mb_per_sec",
            "p50_us",
            "p99_us",
            "p999_us",
        ],
    ),
    (
        "coalesce",
        &[
            "value_bytes",
            "readers",
            "rounds",
            "reads",
            "errors",
            "off_reads_per_sec",
            "on_reads_per_sec",
            "speedup",
            "leaders",
            "coalesced",
            "stale_retries",
        ],
    ),
];

fn load(path: &str) -> Result<json::Val, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Schema-check one results document; returns the process exit code.
fn run_validate(path: &str) -> i32 {
    let doc = match load(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate: {e}");
            return 1;
        }
    };
    let mut problems = Vec::new();
    match doc.get("bench").and_then(json::Val::as_str) {
        Some("hotpath") => {}
        other => problems.push(format!("bench: expected \"hotpath\", got {other:?}")),
    }
    for key in ["smoke", "cores"] {
        if doc.get(key).and_then(json::Val::as_num).is_none() {
            problems.push(format!("{key}: missing or not a number"));
        }
    }
    for &(section, fields) in SCHEMA {
        let Some(entries) = doc.get(section).and_then(json::Val::as_arr) else {
            problems.push(format!("{section}: missing or not an array"));
            continue;
        };
        if entries.is_empty() {
            problems.push(format!("{section}: empty"));
        }
        for (i, entry) in entries.iter().enumerate() {
            for field in fields {
                if entry.get(field).and_then(json::Val::as_num).is_none() {
                    problems.push(format!("{section}[{i}].{field}: missing or not a number"));
                }
            }
        }
    }
    if problems.is_empty() {
        println!("validate: {path} ok");
        0
    } else {
        for p in &problems {
            eprintln!("validate: {p}");
        }
        1
    }
}

/// Flattened key paths of a results document: top-level keys plus the
/// union of entry keys inside each top-level array (`section[].field`).
fn key_paths(doc: &json::Val) -> Vec<String> {
    let mut out = Vec::new();
    if let json::Val::Obj(fields) = doc {
        for (k, v) in fields {
            out.push(k.clone());
            if let json::Val::Arr(items) = v {
                for item in items {
                    if let json::Val::Obj(inner) = item {
                        for (ik, _) in inner {
                            let path = format!("{k}[].{ik}");
                            if !out.contains(&path) {
                                out.push(path);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Report keys present in `old` but missing from `new`; returns the
/// process exit code (1 when any key was removed).
fn run_diff_keys(old: &str, new: &str) -> i32 {
    let (old_doc, new_doc) = match (load(old), load(new)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("diff-keys: {e}");
            return 1;
        }
    };
    let new_keys = key_paths(&new_doc);
    let removed: Vec<String> = key_paths(&old_doc)
        .into_iter()
        .filter(|k| !new_keys.contains(k))
        .collect();
    if removed.is_empty() {
        println!("diff-keys: no keys removed ({old} -> {new})");
        0
    } else {
        for k in &removed {
            eprintln!("diff-keys: removed key {k}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(coalesce_extra: &str) -> json::Val {
        let text = format!(
            r#"{{"bench": "hotpath", "smoke": 1, "cores": 1,
                "index": [{{"threads": 1, "single_ops_per_sec": 1.0, "sharded_ops_per_sec": 2.0, "speedup": 2.0}}],
                "nvme": [{{"threads": 8, "single_ops_per_sec": 1.0, "sharded_ops_per_sec": 2.0, "speedup": 2.0}}],
                "read_path": [{{"value_bytes": 4096, "hit_pct": 100, "readers": 8, "reads": 64,
                    "errors": 0, "reads_per_sec": 100.0, "mb_per_sec": 1.0,
                    "p50_us": 10, "p99_us": 20, "p999_us": 30}}],
                "coalesce": [{{"value_bytes": 65536, "readers": 8, "rounds": 8, "reads": 64,
                    "errors": 0, "off_reads_per_sec": 10.0, "on_reads_per_sec": 30.0,
                    "speedup": 3.0, "leaders": 8, "coalesced": 56, "stale_retries": 0{coalesce_extra}}}]}}"#
        );
        match json::parse(&text) {
            Ok(v) => v,
            Err(e) => panic!("fixture must parse: {e}"),
        }
    }

    #[test]
    fn key_paths_cover_sections_and_entry_fields() {
        let paths = key_paths(&doc(""));
        assert!(paths.contains(&"bench".to_string()));
        assert!(paths.contains(&"index[].speedup".to_string()));
        assert!(paths.contains(&"coalesce[].stale_retries".to_string()));
    }

    #[test]
    fn added_keys_are_not_removals() {
        let old = key_paths(&doc(""));
        let new = key_paths(&doc(r#", "bonus": 1"#));
        let removed: Vec<_> = old.iter().filter(|k| !new.contains(k)).collect();
        assert!(removed.is_empty(), "additions must not flag: {removed:?}");
        // And the reverse direction does flag the dropped key.
        let dropped: Vec<_> = new.iter().filter(|k| !old.contains(k)).collect();
        assert_eq!(dropped, vec!["coalesce[].bonus"]);
    }

    #[test]
    fn schema_matches_what_the_bench_emits() {
        // Every field the validator demands is present in the fixture,
        // which mirrors the writer's Json construction.
        let d = doc("");
        for &(section, fields) in SCHEMA {
            let entries = match d.get(section).and_then(json::Val::as_arr) {
                Some(e) => e,
                None => panic!("{section} missing"),
            };
            for field in fields {
                assert!(
                    entries[0].get(field).and_then(json::Val::as_num).is_some(),
                    "{section}[].{field}"
                );
            }
        }
    }
}
