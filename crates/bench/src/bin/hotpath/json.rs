//! Minimal JSON reader for the bench-results inspection modes
//! (`--validate`, `--diff-keys`). The build is hermetic (no serde_json),
//! and the documents are small and machine-written, so a strict
//! recursive-descent parser over the full grammar is all that's needed.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers included — the documents never need i64
    /// precision beyond f64's 2^53, and counters stay far below it).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Val>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Val, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Val) -> Result<Val, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Val, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(b'n') => self.literal("null", Val::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Val, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Val, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return Err(self.err("bad \\u escape")),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through byte-wise: the input
                    // is valid UTF-8 (it came from read_to_string), so
                    // collect the full code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Val, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Val::Num(n)),
            _ => Err(self.err("bad number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_document_shape() {
        let v = parse(r#"{"bench": "hotpath", "sizes": [{"n": 1.5}, {"n": -2e3}], "ok": true}"#)
            .expect("parses");
        assert_eq!(v.get("bench").and_then(Val::as_str), Some("hotpath"));
        let sizes = v.get("sizes").and_then(Val::as_arr).expect("array");
        assert_eq!(sizes[0].get("n").and_then(Val::as_num), Some(1.5));
        assert_eq!(sizes[1].get("n").and_then(Val::as_num), Some(-2000.0));
        assert_eq!(v.get("ok"), Some(&Val::Bool(true)));
    }

    #[test]
    fn empty_containers_and_escapes() {
        assert_eq!(parse("[]").expect("array"), Val::Arr(vec![]));
        assert_eq!(parse("{}").expect("object"), Val::Obj(vec![]));
        let v = parse(r#""a\"b\\c\ndA""#).expect("string");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn real_bench_output_round_trips() {
        // The exact renderer idiom used by the writer side.
        let doc = r#"{"bench": "hotpath", "smoke": 0, "cores": 1, "index": [{"threads": 1, "single_ops_per_sec": 1028221.11, "sharded_ops_per_sec": 1119210.50, "speedup": 1.09}]}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("cores").and_then(Val::as_num), Some(1.0));
        let idx = v.get("index").and_then(Val::as_arr).expect("array");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx[0].get("threads").and_then(Val::as_num), Some(1.0));
    }
}
