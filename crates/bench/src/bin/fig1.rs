//! Figure 1 — average elapsed time of failed jobs per week, 27 weeks.
//!
//! `cargo run -p ftc-bench --release --bin fig1`

use ftc_slurm::{overall_mean_elapsed, render::render_fig1, weekly_elapsed, TraceGenerator};

fn main() {
    ftc_bench::header("Fig 1 — weekly mean elapsed-before-failure (synthetic trace)");
    let gen = TraceGenerator::frontier();
    let weeks = gen.config().weeks;
    let trace = gen.generate();
    let rows = weekly_elapsed(&trace, weeks);
    print!("{}", render_fig1(&rows, overall_mean_elapsed(&trace)));
}
