//! Ablation — the §IV-B placement alternatives, quantified: how many keys
//! move when one node fails, per strategy.
//!
//! `cargo run -p ftc-bench --release --bin ablation_placement [--nodes 64] [--keys 100000]`

use ftc_bench::arg_or;
use ftc_sim::placement_disruption;

fn main() {
    let nodes: u32 = arg_or("--nodes", 64);
    let keys: u32 = arg_or("--keys", 100_000);
    let seed: u64 = arg_or("--seed", 1);

    ftc_bench::header(&format!(
        "Ablation — placement disruption on one failure ({nodes} nodes, {keys} keys)"
    ));
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "strategy", "moved", "lost (min)", "excess"
    );
    for row in placement_disruption(nodes, keys, seed) {
        println!(
            "{:>12} {:>11.2}% {:>11.2}% {:>9.2}%",
            row.strategy,
            100.0 * row.moved_fraction,
            100.0 * row.lost_fraction,
            100.0 * (row.moved_fraction - row.lost_fraction),
        );
    }
    println!(
        "\n[§IV-B: modulo remaps nearly everything; even-split ranges remap extensively;\n hash ring / multi-hash / rendezvous / merge-neighbor achieve the theoretical minimum\n — the ring is chosen for balanced redistribution at O(log) lookups]"
    );
}
