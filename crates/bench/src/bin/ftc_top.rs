//! `ftc-top` — a live per-node dashboard over a real threaded cluster.
//!
//! Boots a real-mode [`Cluster`], drives read passes against it (killing
//! one node mid-run so the degraded window is visible), and renders the
//! cluster's observability hub: per-node hit ratio and residency, ring
//! imbalance, inflight RPCs, read-latency p50/p99/p999 with histogram
//! sparklines, and the degraded-window timeline of every incident.
//!
//! `cargo run -p ftc-bench --release --bin ftc-top -- [--once] [--prom]
//!   [--nodes 4] [--files 48] [--passes 3] [--kill 1] [--kill-at 1]
//!   [--no-kill] [--adaptive] [--armored] [--seed 7]`
//!
//! `--armored` arms server-side admission control and the client overload
//! armor (breaker, retry budget, hedged reads); the `overload:` row then
//! shows sheds, hedges, breaker short-circuits, budget denials, and the
//! live brownout posture. The row always renders under `--armored`; on
//! unarmored runs it appears only when some armor counter moved.
//!
//! `--once` renders a single frame after the workload finishes (CI
//! mode); the default renders a frame after every pass, clearing the
//! screen between frames. `--prom` additionally dumps the Prometheus
//! text exposition after the final frame. `--adaptive` runs the reads
//! through a controller-governed client (recovery engine + runtime
//! policy controller) and adds a `policy:` row — epoch, posture,
//! replication factor, recache rate, failure-rate estimate, switches —
//! to every frame.

use ftc_bench::{arg_or, has_flag};
use ftc_core::{Cluster, ClusterConfig, FtPolicy};
use ftc_hashring::NodeId;
use ftc_obs::{HistogramSnapshot, Sample, Value};

/// Value of the first counter sample matching `name` + `label`.
fn counter(samples: &[Sample], name: &str, label: Option<(&str, &str)>) -> u64 {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && match label {
                    Some((k, v)) => s.labels.iter().any(|(lk, lv)| lk == k && lv == v),
                    None => s.labels.is_empty(),
                }
        })
        .and_then(|s| match s.value {
            Value::Counter(c) => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

/// Sum of every counter sample named `name` across all label sets
/// (per-node counters roll up into one cluster-wide total).
fn counter_sum(samples: &[Sample], name: &str) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .filter_map(|s| match s.value {
            Value::Counter(c) => Some(c),
            _ => None,
        })
        .sum()
}

/// Value of the first gauge sample matching `name` + `label`.
fn gauge(samples: &[Sample], name: &str, label: Option<(&str, &str)>) -> f64 {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && match label {
                    Some((k, v)) => s.labels.iter().any(|(lk, lv)| lk == k && lv == v),
                    None => s.labels.is_empty(),
                }
        })
        .and_then(|s| match s.value {
            Value::Gauge(g) => Some(g),
            _ => None,
        })
        .unwrap_or(0.0)
}

/// The first histogram sample named `name`.
fn hist<'a>(samples: &'a [Sample], name: &str) -> Option<&'a HistogramSnapshot> {
    samples
        .iter()
        .find(|s| s.name == name)
        .and_then(|s| match &s.value {
            Value::Histogram(h) => Some(h),
            _ => None,
        })
}

fn hist_line(samples: &[Sample], label: &str, name: &str) -> String {
    match hist(samples, name) {
        Some(h) if !h.is_empty() => format!(
            "  {label:<12} n={:<6} p50={:<6} p99={:<6} p999={:<6} {}",
            h.count,
            format!("{}us", h.quantile(0.50)),
            format!("{}us", h.quantile(0.99)),
            format!("{}us", h.quantile(0.999)),
            h.sparkline(24),
        ),
        _ => format!("  {label:<12} (no samples)"),
    }
}

/// Render one dashboard frame from a sample sweep.
fn render(cluster: &Cluster, nodes: u32, armored: bool, pass_label: &str) {
    let samples = cluster.obs_samples();
    let killed = cluster.killed_nodes();

    println!("ftc-top — {pass_label}");
    println!(
        "ring: nodes={:.0} epoch={:.0} imbalance={:.3}   inflight reads={:.0}",
        gauge(&samples, "ftc_ring_nodes", None),
        gauge(&samples, "ftc_ring_epoch", None),
        gauge(&samples, "ftc_ring_imbalance", None),
        gauge(&samples, "ftc_client_inflight_reads", None),
    );
    println!(
        "client: reads_ok={} timeouts={} retries={} declared_failed={}",
        counter(&samples, "ftc_client_reads_ok_total", None),
        counter(&samples, "ftc_client_rpc_timeouts_total", None),
        counter(&samples, "ftc_client_retries_total", None),
        counter(&samples, "ftc_client_nodes_declared_failed_total", None),
    );
    // A live controller pushes its gauges every tick; epoch 0 means no
    // controller ever booted, so the row only appears under --adaptive.
    let policy_epoch = gauge(&samples, "ftc_policy_epoch", None);
    if policy_epoch > 0.0 {
        println!(
            "policy: epoch={policy_epoch:.0} posture={} rf={:.0} recache_rate={:.0}/s \
             failure_rate={:.1}/ks switches={} flaps_suppressed={}",
            if gauge(&samples, "ftc_policy_proactive", None) > 0.0 {
                "proactive"
            } else {
                "lazy"
            },
            gauge(&samples, "ftc_policy_replication", None),
            gauge(&samples, "ftc_policy_recache_rate", None),
            gauge(&samples, "ftc_policy_failure_rate_milli", None),
            counter(&samples, "ftc_policy_switches_total", None),
            counter(&samples, "ftc_policy_flap_suppressed_total", None),
        );
    }
    // The row always renders under --armored (CI greps for it); on
    // unarmored runs it appears only if some counter moved anyway.
    let sheds = counter_sum(&samples, "ftc_server_shed_capacity_total")
        + counter_sum(&samples, "ftc_server_shed_deadline_total");
    let shed_seen = counter(&samples, "ftc_client_overloaded_total", None);
    let hedges = counter(&samples, "ftc_client_hedges_launched_total", None);
    let breaker = counter(&samples, "ftc_client_breaker_short_circuits_total", None);
    let budget_denied = counter(&samples, "ftc_client_budget_denied_total", None);
    if armored || sheds + shed_seen + hedges + breaker + budget_denied > 0 {
        println!(
            "overload: sheds={sheds} observed={shed_seen} fallbacks={} \
             hedges={}/{hedges} breaker={breaker} budget_denied={budget_denied} brownout={}",
            counter(&samples, "ftc_client_shed_pfs_fallbacks_total", None),
            counter(&samples, "ftc_client_hedges_won_total", None),
            if gauge(&samples, "ftc_policy_brownout", None) > 0.0 {
                "ON"
            } else {
                "off"
            },
        );
    }
    // Single-flight: always rendered — leaders tick on every read, so
    // the row doubles as proof the coalescing layer is in the path.
    println!(
        "singleflight: leaders={} coalesced={} stale_retries={} server_flights={}/{}",
        counter(&samples, "ftc_client_singleflight_leaders_total", None),
        counter(&samples, "ftc_client_coalesced_reads_total", None),
        counter(&samples, "ftc_client_coalesced_stale_retries_total", None),
        counter_sum(&samples, "ftc_server_pfs_coalesced_total"),
        counter_sum(&samples, "ftc_server_pfs_flight_leaders_total"),
    );
    println!();
    println!("  node   state  hits     misses   hit%    objects  bytes");
    for i in 0..nodes {
        let id = i.to_string();
        let lbl = Some(("node", id.as_str()));
        let hits = counter(&samples, "ftc_nvme_hits_total", lbl);
        let misses = counter(&samples, "ftc_nvme_misses_total", lbl);
        let ratio = if hits + misses == 0 {
            0.0
        } else {
            100.0 * hits as f64 / (hits + misses) as f64
        };
        let state = if killed.contains(&NodeId(i)) {
            "DOWN"
        } else {
            "up"
        };
        println!(
            "  n{i:<5} {state:<6} {hits:<8} {misses:<8} {ratio:<7.1} {:<8.0} {:.0}",
            gauge(&samples, "ftc_nvme_resident_objects", lbl),
            gauge(&samples, "ftc_nvme_resident_bytes", lbl),
        );
    }
    println!();
    println!("read latency by tier:");
    println!("{}", hist_line(&samples, "nvme", "ftc_client_read_nvme_us"));
    println!(
        "{}",
        hist_line(&samples, "server->pfs", "ftc_client_read_server_pfs_us")
    );
    println!(
        "{}",
        hist_line(&samples, "direct pfs", "ftc_client_read_direct_pfs_us")
    );
    println!("net rpc:");
    println!("{}", hist_line(&samples, "ok", "ftc_net_rpc_ok_us"));
    println!(
        "{}",
        hist_line(&samples, "timeout", "ftc_net_rpc_timeout_us")
    );

    let incidents = cluster.obs().timeline.incidents();
    if !incidents.is_empty() {
        println!();
        println!("degraded-window timeline:");
        for inc in incidents {
            println!("  {inc}");
        }
    }
}

fn main() {
    let nodes: u32 = arg_or("--nodes", 4);
    let files: usize = arg_or("--files", 48);
    let passes: u32 = arg_or("--passes", 3);
    let kill: u32 = arg_or("--kill", 1);
    let kill_at: u32 = arg_or("--kill-at", 1);
    let seed: u64 = arg_or("--seed", 7);
    let once = has_flag("--once");
    let no_kill = has_flag("--no-kill") || kill >= nodes;

    let mut cfg = ClusterConfig::small(nodes, FtPolicy::RingRecache);
    cfg.seed = seed;
    let armored = has_flag("--armored");
    if armored {
        cfg.admission = ftc_core::AdmissionConfig::armored(cfg.ft.detector.ttl);
        cfg.ft.overload = ftc_core::OverloadConfig::armored();
    }
    let cluster = match Cluster::start(cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster failed to start: {e}");
            std::process::exit(1);
        }
    };
    let paths = cluster.stage_dataset("top", files, 64);
    let client = if has_flag("--adaptive") {
        match cluster.client_adaptive(0, Default::default(), Default::default()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("adaptive client failed to start: {e}");
                std::process::exit(1);
            }
        }
    } else {
        cluster.client(0)
    };

    for pass in 0..=passes {
        if !no_kill && pass == kill_at {
            cluster.kill(NodeId(kill));
        }
        for p in &paths {
            if let Err(e) = client.read(p) {
                eprintln!("read {p} failed: {e}");
            }
        }
        if !once {
            // ANSI clear + home so successive frames overwrite in place.
            print!("\x1b[2J\x1b[H");
            render(
                &cluster,
                nodes,
                armored,
                &format!("pass {pass}/{passes} (live, seed {seed})"),
            );
            std::thread::sleep(std::time::Duration::from_millis(arg_or(
                "--refresh-ms",
                250,
            )));
        }
    }
    // Let movers settle so the final residency/recache numbers are stable.
    std::thread::sleep(std::time::Duration::from_millis(80));

    if once {
        render(
            &cluster,
            nodes,
            armored,
            &format!("final snapshot (seed {seed})"),
        );
    }
    if has_flag("--prom") {
        println!();
        print!("{}", ftc_obs::render_prometheus(&cluster.obs_samples()));
    }
    cluster.shutdown();
}
