//! Figure 4 — hash-ring reassignment on node failure: data items map to
//! the first node token clockwise; on failure only the failed node's
//! items move, to the next clockwise owner.
//!
//! `cargo run -p ftc-bench --release --bin fig4 [--nodes 4] [--vnodes 4] [--files 8]`

use ftc_bench::arg_or;
use ftc_hashring::{hash::key_hash, HashRing, Placement};

fn main() {
    let nodes: u32 = arg_or("--nodes", 4);
    let vnodes: u32 = arg_or("--vnodes", 4);
    let files: u32 = arg_or("--files", 8);

    ftc_bench::header("Fig 4 — ring reassignment on failure");
    let mut ring = HashRing::with_nodes(nodes, vnodes);
    let names: Vec<String> = (0..files)
        .map(|i| format!("file_{}", (b'A' + (i % 26) as u8) as char))
        .collect();

    println!("(a) before fault — {nodes} nodes x {vnodes} vnodes");
    let before: Vec<_> = names
        .iter()
        .map(|f| {
            let h = key_hash(f);
            let owner = ring.owner(f).unwrap();
            println!("  {f}  hash={:.6}  -> {owner}", h as f64 / u64::MAX as f64);
            owner
        })
        .collect();

    let failed = before[0];
    println!("\n(b) after fault of {failed} — only its items move, clockwise:");
    ring.remove_node(failed).unwrap();
    let mut moved = 0;
    for (f, owner_before) in names.iter().zip(&before) {
        let owner_after = ring.owner(f).unwrap();
        if owner_after != *owner_before {
            moved += 1;
            println!("  {f}  {owner_before} -> {owner_after}   (reassigned)");
        } else {
            println!("  {f}  stays on {owner_before}");
        }
    }
    let lost = before.iter().filter(|&&o| o == failed).count();
    println!(
        "\nmoved {moved}/{files} files; {failed} owned {lost} — minimal movement: moved == lost: {}",
        moved == lost
    );
    println!("arc fractions after failure:");
    for n in ring.live_nodes() {
        println!("  {n}: {:.1}% of the ring", 100.0 * ring.arc_fraction(n));
    }
}
