//! Ablation — cascading failures: how training time and PFS traffic grow
//! as N−1, N−2, … nodes die during one run, per policy.
//!
//! `cargo run -p ftc-bench --release --bin ablation_cascade [--nodes 64] [--scale 64]`

use ftc_bench::{arg_or, fmt_mmss};
use ftc_core::FtPolicy;
use ftc_hashring::NodeId;
use ftc_sim::{FaultEvent, SimCalibration, SimCluster, SimWorkload};

fn main() {
    let nodes: u32 = arg_or("--nodes", 64);
    let scale: u32 = arg_or("--scale", 64);
    let workload = SimWorkload::cosmoflow(scale);
    let cal = SimCalibration::frontier();

    ftc_bench::header(&format!(
        "Ablation — cascading failures at {nodes} nodes ({} samples, {} epochs)",
        workload.samples, workload.epochs
    ));
    println!(
        "{:>9} {:>14} {:>14} {:>12} {:>12}",
        "failures", "FT w/ PFS", "FT w/ NVMe", "PFS reads", "ring reads"
    );
    for k in 0..=4u32 {
        // k failures, one per epoch starting at epoch 1, victims 0..k.
        let faults: Vec<FaultEvent> = (0..k)
            .map(|i| FaultEvent {
                epoch: 1 + (i % (workload.epochs - 1)),
                step: 0,
                node: NodeId(i),
            })
            .collect();
        let pfs = SimCluster::new(nodes, FtPolicy::PfsRedirect, workload.samples, cal.clone())
            .run(workload, &faults);
        let ring = SimCluster::new(nodes, FtPolicy::RingRecache, workload.samples, cal.clone())
            .run(workload, &faults);
        println!(
            "{:>9} {:>14} {:>14} {:>12} {:>12}",
            k,
            fmt_mmss(pfs.total_s),
            fmt_mmss(ring.total_s),
            pfs.pfs_reads,
            ring.pfs_reads,
        );
    }
    println!(
        "\n[the ring's advantage compounds: each additional failure adds a one-time\n recache burst instead of a permanent per-epoch PFS tax]"
    );
}
