//! # ftc-bench — the reproduction harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run -p ftc-bench --release --bin <name>`):
//!
//! | Binary | Paper element |
//! |---|---|
//! | `table1` | Table I — six-month failure census |
//! | `fig1` | Fig. 1 — weekly elapsed-before-failure |
//! | `fig2` | Fig. 2 — failure mix by node count / elapsed |
//! | `table2` | Table II — Frontier node spec (calibration echo) |
//! | `fig3_trace` | Fig. 3 — protocol flows, live on a threaded cluster |
//! | `fig4` | Fig. 4 — ring reassignment on failure |
//! | `fig5` | Fig. 5 — end-to-end training time, ±failures |
//! | `fig6a` | Fig. 6(a) — per-epoch time in the event of failure |
//! | `fig6b` | Fig. 6(b) — virtual nodes vs load redistribution |
//! | `ablation_placement` | §IV-B alternatives, quantified |
//! | `ablation_detector` | TTL / timeout-limit sensitivity |
//! | `ablation_cascade` | repeated failures N−1, N−2, … |
//! | `chaos` | seeded gray-failure campaigns, invariant-checked |
//! | `races` | vector-clock race detection over traced campaigns |
//!
//! Criterion micro/meso benchmarks live under `benches/` (`cargo bench`).

#![warn(missing_docs)]

/// Parse `--flag value` style arguments: returns the value following
/// `name`, parsed, or `default`.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `--flag` is present.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Print a boxed section header.
pub fn header(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("{line}\n  {title}\n{line}");
}

/// Format seconds as `mm:ss.s` for readability next to raw seconds.
pub fn fmt_mmss(s: f64) -> String {
    let m = (s / 60.0).floor() as u64;
    format!("{m:02}:{:04.1}", s - m as f64 * 60.0)
}

/// The client-side read-latency histograms of a live cluster, merged
/// across serving tiers (NVMe, server-mediated PFS, direct PFS) into one
/// distribution — the "how long did reads take" number for experiment
/// tables.
pub fn read_latency_snapshot(cluster: &ftc_core::Cluster) -> ftc_obs::HistogramSnapshot {
    let mut merged = ftc_obs::HistogramSnapshot::empty();
    for s in cluster.obs_samples() {
        if let ftc_obs::Value::Histogram(h) = &s.value {
            if s.name.starts_with("ftc_client_read_") && s.name.ends_with("_us") {
                merged = merged.merge(h);
            }
        }
    }
    merged
}

/// Print per-tier read and RPC latency percentiles harvested from a live
/// cluster's observability hub — the shared tail for every bin that
/// drives a threaded cluster, so experiments report latency
/// distributions, not just event counts.
pub fn print_latency_percentiles(cluster: &ftc_core::Cluster) {
    let samples = cluster.obs_samples();
    println!("latency percentiles (us):");
    for (label, name) in [
        ("read nvme", "ftc_client_read_nvme_us"),
        ("read server->pfs", "ftc_client_read_server_pfs_us"),
        ("read direct pfs", "ftc_client_read_direct_pfs_us"),
        ("net rpc ok", "ftc_net_rpc_ok_us"),
        ("net rpc timeout", "ftc_net_rpc_timeout_us"),
    ] {
        let hist = samples.iter().find(|s| s.name == name).and_then(|s| {
            if let ftc_obs::Value::Histogram(h) = &s.value {
                Some(h)
            } else {
                None
            }
        });
        match hist {
            Some(h) if !h.is_empty() => println!(
                "  {label:<17} n={:<7} p50={:<8} p99={:<8} p999={}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.99),
                h.quantile(0.999),
            ),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_mmss_examples() {
        assert_eq!(fmt_mmss(0.0), "00:00.0");
        assert_eq!(fmt_mmss(61.5), "01:01.5");
        assert_eq!(fmt_mmss(3599.9), "59:59.9");
    }

    #[test]
    fn arg_or_falls_back() {
        // No such flag in the test harness args.
        assert_eq!(arg_or("--definitely-not-present", 42u32), 42);
        assert!(!has_flag("--definitely-not-present"));
    }
}
