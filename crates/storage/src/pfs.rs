//! The parallel file system tier — stand-in for Frontier's center-wide
//! Lustre file system ("Orion").
//!
//! Two halves:
//!
//! * [`Pfs`] — a real (in-memory or file-backed) store holding the full
//!   dataset, with *per-file read accounting*. The paper's key claim —
//!   "only one additional PFS access per lost data item" under hash-ring
//!   recaching, versus one per epoch under PFS redirection — is asserted
//!   directly against these counters in the integration tests.
//! * [`PfsModel`] — the simulated cost of a PFS read: a per-open metadata
//!   latency (the MDS bottleneck of §II-A) plus an aggregate bandwidth
//!   shared among all concurrent readers (processor sharing). This is what
//!   makes post-failure PFS traffic produce *stragglers* at scale.

use crate::object::{MemStore, ObjectStore};
use crate::value::ValueBuf;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The shared PFS: every training file originates here (datasets are
/// staged to Lustre before any run), and all fault-tolerance fallbacks
/// read from here.
pub struct Pfs {
    store: Arc<dyn ObjectStore>,
    reads: Mutex<HashMap<String, u64>>,
    total_reads: Mutex<u64>,
}

impl Pfs {
    /// PFS backed by an in-memory store.
    pub fn in_memory() -> Self {
        Self::with_store(Arc::new(MemStore::new()))
    }

    /// PFS backed by an arbitrary object store (e.g. a
    /// [`crate::FileStore`] for real-disk examples).
    pub fn with_store(store: Arc<dyn ObjectStore>) -> Self {
        Pfs {
            store,
            reads: Mutex::new(HashMap::new()),
            total_reads: Mutex::new(0),
        }
    }

    /// Stage a file onto the PFS (dataset preparation; not counted as a
    /// read).
    pub fn stage(&self, key: &str, data: impl Into<ValueBuf>) {
        self.store.put(key, data.into());
    }

    /// Read a file, bumping the per-file and total read counters.
    pub fn read(&self, key: &str) -> Option<ValueBuf> {
        let data = self.store.get(key)?;
        *self.reads.lock().entry(key.to_owned()).or_insert(0) += 1;
        *self.total_reads.lock() += 1;
        Some(data)
    }

    /// True if the file is staged.
    pub fn contains(&self, key: &str) -> bool {
        self.store.contains(key)
    }

    /// Number of staged files.
    pub fn file_count(&self) -> usize {
        self.store.len()
    }

    /// Total bytes staged.
    pub fn total_bytes(&self) -> u64 {
        self.store.total_bytes()
    }

    /// How many times `key` has been read since staging.
    pub fn reads_of(&self, key: &str) -> u64 {
        self.reads.lock().get(key).copied().unwrap_or(0)
    }

    /// Total reads across all files.
    pub fn total_reads(&self) -> u64 {
        *self.total_reads.lock()
    }

    /// Reset read accounting (e.g. after the warm-up epoch, to isolate
    /// post-failure PFS traffic).
    pub fn reset_read_counters(&self) {
        self.reads.lock().clear();
        *self.total_reads.lock() = 0;
    }

    /// Per-file read counts above a threshold — used to find files that
    /// were re-read more than the recaching invariant allows.
    pub fn files_read_more_than(&self, n: u64) -> Vec<(String, u64)> {
        self.reads
            .lock()
            .iter()
            .filter(|&(_, &c)| c > n)
            .map(|(k, &c)| (k.clone(), c))
            .collect()
    }
}

/// Simulated PFS read-cost model.
///
/// A read of `b` bytes with `r` concurrent readers costs
/// `metadata_lat_s + b / (agg_bandwidth_bps / r)` — the aggregate pipe is
/// shared equally (processor sharing), and every open pays the metadata
/// round trip. Calibration defaults are Orion-flavored but deliberately
/// conservative for small-file DL reads, where Lustre delivers a tiny
/// fraction of peak (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PfsModel {
    /// Per-open metadata latency in seconds (MDS round trip + lock).
    pub metadata_lat_s: f64,
    /// Aggregate deliverable bandwidth for this job's small-file read
    /// pattern, bytes/second.
    pub agg_bandwidth_bps: f64,
}

impl PfsModel {
    /// Orion-flavored calibration for many-small-file DL reads.
    ///
    /// Orion's peak is multi-TB/s for large sequential I/O, but MLPerf-HPC
    /// style workloads reading ~2.6 MB TFRecord files see orders of
    /// magnitude less; 100 GB/s aggregate with a 2 ms metadata cost gives
    /// per-epoch uncached/cached ratios in the range HVAC reported.
    pub fn orion() -> Self {
        PfsModel {
            metadata_lat_s: 2e-3,
            agg_bandwidth_bps: 100e9,
        }
    }

    /// Cost in seconds of one read of `bytes` with `readers` concurrent
    /// readers sharing the aggregate pipe.
    #[inline]
    pub fn read_cost_s(&self, bytes: u64, readers: u32) -> f64 {
        let r = f64::from(readers.max(1));
        self.metadata_lat_s + bytes as f64 / (self.agg_bandwidth_bps / r)
    }

    /// Effective per-reader bandwidth at a given concurrency.
    #[inline]
    pub fn per_reader_bps(&self, readers: u32) -> f64 {
        self.agg_bandwidth_bps / f64::from(readers.max(1))
    }
}

impl Default for PfsModel {
    fn default() -> Self {
        Self::orion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_read_with_accounting() {
        let pfs = Pfs::in_memory();
        pfs.stage("a", ValueBuf::copy_from_slice(b"1234"));
        assert_eq!(pfs.file_count(), 1);
        assert_eq!(pfs.total_bytes(), 4);
        assert_eq!(pfs.reads_of("a"), 0);
        assert_eq!(pfs.read("a").unwrap().len(), 4);
        assert_eq!(pfs.read("a").unwrap().len(), 4);
        assert_eq!(pfs.reads_of("a"), 2);
        assert_eq!(pfs.total_reads(), 2);
        assert_eq!(pfs.read("missing"), None);
        assert_eq!(pfs.total_reads(), 2, "missing reads are not counted");
    }

    #[test]
    fn reset_counters() {
        let pfs = Pfs::in_memory();
        pfs.stage("a", ValueBuf::copy_from_slice(b"x"));
        pfs.read("a");
        pfs.reset_read_counters();
        assert_eq!(pfs.reads_of("a"), 0);
        assert_eq!(pfs.total_reads(), 0);
        assert!(pfs.contains("a"), "reset must not drop data");
    }

    #[test]
    fn files_read_more_than() {
        let pfs = Pfs::in_memory();
        pfs.stage("a", ValueBuf::copy_from_slice(b"x"));
        pfs.stage("b", ValueBuf::copy_from_slice(b"y"));
        pfs.read("a");
        pfs.read("a");
        pfs.read("b");
        let over = pfs.files_read_more_than(1);
        assert_eq!(over, vec![("a".to_string(), 2)]);
        assert!(pfs.files_read_more_than(2).is_empty());
    }

    #[test]
    fn model_contention_scales_linearly() {
        let m = PfsModel {
            metadata_lat_s: 0.0,
            agg_bandwidth_bps: 100e9,
        };
        let one = m.read_cost_s(2_600_000, 1);
        let thousand = m.read_cost_s(2_600_000, 1000);
        assert!((thousand / one - 1000.0).abs() < 1e-6);
        assert_eq!(m.per_reader_bps(1000), 100e6);
    }

    #[test]
    fn model_metadata_floor() {
        let m = PfsModel::orion();
        // Even a zero-byte read pays the MDS round trip.
        assert!(m.read_cost_s(0, 1) >= 2e-3);
        // Zero readers is treated as one (the caller itself).
        assert_eq!(m.read_cost_s(100, 0), m.read_cost_s(100, 1));
    }

    #[test]
    fn orion_small_file_read_is_milliseconds() {
        let m = PfsModel::orion();
        // A 2.6 MB sample with 512 concurrent readers: ~2ms metadata +
        // ~13ms transfer — the order of magnitude that makes PFS
        // redirection painful per batch.
        let c = m.read_cost_s(2_600_000, 512);
        assert!(c > 5e-3 && c < 50e-3, "cost = {c}");
    }
}
