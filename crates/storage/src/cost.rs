//! Storage-tier cost models and the Frontier calibration (Table II).
//!
//! These constants parameterize both the threaded cluster's injected
//! delays and the discrete-event simulator, so every experiment in
//! `EXPERIMENTS.md` traces back to this single calibration point.

use crate::pfs::PfsModel;
use serde::{Deserialize, Serialize};

/// Cost of one storage tier (an NVMe device here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCost {
    /// Per-operation latency in seconds (submission + device latency).
    pub op_lat_s: f64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bps: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bps: f64,
}

impl TierCost {
    /// Read cost in seconds for `bytes`.
    #[inline]
    pub fn read_cost_s(&self, bytes: u64) -> f64 {
        self.op_lat_s + bytes as f64 / self.read_bps
    }

    /// Write cost in seconds for `bytes`.
    #[inline]
    pub fn write_cost_s(&self, bytes: u64) -> f64 {
        self.op_lat_s + bytes as f64 / self.write_bps
    }
}

/// One Frontier compute node, per Table II of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Marketing name of the CPU.
    pub cpu: &'static str,
    /// GPU complement.
    pub gpu: &'static str,
    /// DDR4 capacity in GiB.
    pub memory_gib: u64,
    /// Node-local storage description.
    pub node_local_storage: &'static str,
    /// Usable NVMe capacity in bytes (two PM9A3 in RAID0, XFS).
    pub nvme_capacity_bytes: u64,
    /// NVMe tier cost.
    pub nvme: TierCost,
}

/// The full cost calibration used by simulations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Node-local NVMe tier.
    pub nvme: TierCost,
    /// Shared PFS tier.
    pub pfs: PfsModel,
}

/// Frontier node constants from Table II and §V-A:
/// "each compute node provides 3.5 TB of usable capacity with roughly
/// 4 GB/s of peak sequential write and 8 GB/s of peak sequential read
/// bandwidth."
pub fn frontier_node() -> NodeSpec {
    NodeSpec {
        cpu: "AMD Trento EPYC 7A53",
        gpu: "8 x MI250X AMD with 64 GiB HBM",
        memory_gib: 512,
        node_local_storage: "2 x 1.9 TB Samsung PM9A3 M.2 NVMe (RAID0, XFS, 128 KiB stripe)",
        nvme_capacity_bytes: 3_500_000_000_000,
        nvme: TierCost {
            op_lat_s: 100e-6,
            read_bps: 8e9,
            write_bps: 4e9,
        },
    }
}

/// Frontier-calibrated cost model (Table II NVMe + Orion PFS).
pub fn frontier() -> CostModel {
    CostModel {
        nvme: frontier_node().nvme,
        pfs: PfsModel::orion(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_costs() {
        let t = TierCost {
            op_lat_s: 0.001,
            read_bps: 1e9,
            write_bps: 5e8,
        };
        assert!((t.read_cost_s(1_000_000_000) - 1.001).abs() < 1e-9);
        assert!((t.write_cost_s(500_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn frontier_matches_table_ii() {
        let n = frontier_node();
        assert_eq!(n.memory_gib, 512);
        assert_eq!(n.nvme_capacity_bytes, 3_500_000_000_000);
        assert_eq!(n.nvme.read_bps, 8e9);
        assert_eq!(n.nvme.write_bps, 4e9);
        assert!(n.cpu.contains("7A53"));
        assert!(n.gpu.contains("MI250X"));
    }

    #[test]
    fn nvme_beats_pfs_for_small_files() {
        let m = frontier();
        // The whole premise of HVAC: a 2.6 MB sample is far cheaper from
        // local NVMe than from the PFS under load.
        let nvme = m.nvme.read_cost_s(2_600_000);
        let pfs = m.pfs.read_cost_s(2_600_000, 512);
        assert!(
            pfs / nvme > 10.0,
            "PFS ({pfs:.6}s) should be >>10x slower than NVMe ({nvme:.6}s) under load"
        );
    }
}
