//! Deterministic synthetic file contents.
//!
//! The cosmoUniverse dataset is 1.3 TB of TFRecords we obviously don't
//! ship; integrity of the cache protocol is instead checked against
//! content that is a *pure function of the path* — any byte served for a
//! path can be verified without storing a reference copy.

use bytes::Bytes;

/// Deterministic pseudo-random bytes for a path: `xorshift*` stream seeded
/// by the path hash. Same `(path, len)` always yields the same bytes.
pub fn synth_bytes(path: &str, len: usize) -> Bytes {
    let mut state = ftc_hashring::hash::key_hash(path) | 1; // non-zero seed
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // xorshift64* step
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let chunk = word.to_le_bytes();
        let take = chunk.len().min(len - out.len());
        out.extend_from_slice(&chunk[..take]);
    }
    Bytes::from(out)
}

/// Verify that `data` is exactly what [`synth_bytes`] generates for
/// `path` — the end-to-end integrity predicate used by the examples and
/// integration tests after failure injection.
pub fn verify_synth(path: &str, data: &[u8]) -> bool {
    synth_bytes(path, data.len()) == data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(synth_bytes("a/b.bin", 100), synth_bytes("a/b.bin", 100));
        assert_ne!(synth_bytes("a/b.bin", 100), synth_bytes("a/c.bin", 100));
    }

    #[test]
    fn length_exact() {
        for len in [0, 1, 7, 8, 9, 1000] {
            assert_eq!(synth_bytes("x", len).len(), len);
        }
    }

    #[test]
    fn prefix_stable() {
        // Longer generations extend shorter ones (stream property).
        let long = synth_bytes("k", 64);
        let short = synth_bytes("k", 10);
        assert_eq!(&long[..10], &short[..]);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let d = synth_bytes("train/s1", 256);
        assert!(verify_synth("train/s1", &d));
        let mut bad = d.to_vec();
        bad[17] ^= 0xFF;
        assert!(!verify_synth("train/s1", &bad));
        assert!(!verify_synth("train/s2", &d));
    }

    #[test]
    fn bytes_look_random() {
        // Not a statistical test — just guard against degenerate output
        // (all zeros / constant) that would mask corruption.
        let d = synth_bytes("entropy-check", 4096);
        let distinct: std::collections::HashSet<u8> = d.iter().copied().collect();
        assert!(
            distinct.len() > 200,
            "only {} distinct bytes",
            distinct.len()
        );
    }
}
