//! Per-node key index — the recovery engine's map of what a node held.
//!
//! The paper's recaching story is lazy: a lost key is refetched from the
//! PFS on its first post-failure miss. Proactive recache needs to know
//! *which* keys a dead node owned without waiting for demand, so the
//! client maintains this index as a side effect of serving reads: every
//! successful read records `(owner, key)` here, and a membership change
//! hands the departed node's key set to the recovery engine in one call.
//!
//! The index is an *observed* assignment, not ground truth: it can lag
//! the placement (keys read before a ring change stay filed under the old
//! owner until re-read or reassigned). The recovery engine compensates by
//! re-resolving each key's owner against the live placement at push time
//! — the index only needs to be a superset-ish hint of what was lost.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Which node was last observed owning each key, with a per-node mirror
/// for O(1) "everything node X held" drains.
#[derive(Debug, Default)]
pub struct KeyIndex {
    inner: Mutex<IndexInner>,
}

#[derive(Debug, Default)]
struct IndexInner {
    /// key -> owner node (raw id; this crate does not depend on
    /// `ftc-hashring`).
    owner_of: HashMap<String, u32>,
    /// node -> keys, mirror of `owner_of`.
    keys_of: HashMap<u32, HashSet<String>>,
}

impl KeyIndex {
    /// Empty index.
    pub fn new() -> Self {
        KeyIndex::default()
    }

    /// Record that `node` owns `key` (moving it from any previous owner).
    pub fn record(&self, node: u32, key: &str) {
        let mut g = self.inner.lock();
        match g.owner_of.insert(key.to_owned(), node) {
            Some(prev) if prev == node => return,
            Some(prev) => {
                if let Some(set) = g.keys_of.get_mut(&prev) {
                    set.remove(key);
                }
            }
            None => {}
        }
        g.keys_of.entry(node).or_default().insert(key.to_owned());
    }

    /// The node last observed owning `key`.
    pub fn owner(&self, key: &str) -> Option<u32> {
        self.inner.lock().owner_of.get(key).copied()
    }

    /// The keys filed under `node`, sorted for deterministic walks.
    pub fn keys_of(&self, node: u32) -> Vec<String> {
        let g = self.inner.lock();
        let mut v: Vec<String> = g
            .keys_of
            .get(&node)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Remove and return `node`'s keys (sorted) — the recovery engine's
    /// drain on a failure declaration. The keys become unowned until
    /// re-recorded under their new owners.
    pub fn drain_node(&self, node: u32) -> Vec<String> {
        let mut g = self.inner.lock();
        let keys = g.keys_of.remove(&node).unwrap_or_default();
        for k in &keys {
            g.owner_of.remove(k);
        }
        let mut v: Vec<String> = keys.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Forget one key entirely (e.g. it vanished from the PFS).
    pub fn forget(&self, key: &str) {
        let mut g = self.inner.lock();
        if let Some(node) = g.owner_of.remove(key) {
            if let Some(set) = g.keys_of.get_mut(&node) {
                set.remove(key);
            }
        }
    }

    /// Number of keys tracked under `node`.
    pub fn count_of(&self, node: u32) -> usize {
        self.inner.lock().keys_of.get(&node).map_or(0, HashSet::len)
    }

    /// Total keys tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().owner_of.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_roundtrip() {
        let idx = KeyIndex::new();
        idx.record(1, "a");
        idx.record(1, "b");
        idx.record(2, "c");
        assert_eq!(idx.count_of(1), 2);
        assert_eq!(idx.owner("c"), Some(2));
        let drained = idx.drain_node(1);
        assert_eq!(drained, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(idx.count_of(1), 0);
        assert_eq!(idx.owner("a"), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn record_moves_between_owners() {
        let idx = KeyIndex::new();
        idx.record(1, "k");
        idx.record(2, "k");
        assert_eq!(idx.owner("k"), Some(2));
        assert_eq!(idx.count_of(1), 0);
        assert_eq!(idx.keys_of(2), vec!["k".to_string()]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn re_record_same_owner_is_idempotent() {
        let idx = KeyIndex::new();
        idx.record(3, "k");
        idx.record(3, "k");
        assert_eq!(idx.count_of(3), 1);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn forget_removes_both_directions() {
        let idx = KeyIndex::new();
        idx.record(1, "x");
        idx.forget("x");
        assert!(idx.is_empty());
        assert_eq!(idx.keys_of(1), Vec::<String>::new());
        // Forgetting an unknown key is a no-op.
        idx.forget("ghost");
    }

    #[test]
    fn keys_of_is_sorted_and_nonconsuming() {
        let idx = KeyIndex::new();
        for k in ["z", "m", "a"] {
            idx.record(7, k);
        }
        assert_eq!(idx.keys_of(7), vec!["a", "m", "z"]);
        assert_eq!(idx.count_of(7), 3, "keys_of must not drain");
    }
}
