//! Per-node key index — the recovery engine's map of what a node held.
//!
//! The paper's recaching story is lazy: a lost key is refetched from the
//! PFS on its first post-failure miss. Proactive recache needs to know
//! *which* keys a dead node owned without waiting for demand, so the
//! client maintains this index as a side effect of serving reads: every
//! successful read records `(owner, key)` here, and a membership change
//! hands the departed node's key set to the recovery engine in one call.
//!
//! The index is an *observed* assignment, not ground truth: it can lag
//! the placement (keys read before a ring change stay filed under the old
//! owner until re-read or reassigned). The recovery engine compensates by
//! re-resolving each key's owner against the live placement at push time
//! — the index only needs to be a superset-ish hint of what was lost.
//!
//! ## Sharding
//!
//! Every successful read records here, so under many client threads a
//! single mutex around the maps serializes the whole read path. The index
//! is lock-striped into [`KeyIndex::DEFAULT_SHARDS`] shards routed by the
//! same ring hash the placement uses ([`ftc_hashring::key_hash`]): reads
//! of different keys touch different shards and never contend. Per-key
//! operations lock exactly one shard; whole-index walks (`keys_of`,
//! `drain_node`, `len`) visit shards in order and merge — since the index
//! has no eviction or cross-key coupling, the merged view is identical
//! to the old single-lock one (drains and walks stay sorted).

use ftc_hashring::hash::key_hash;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Which node was last observed owning each key, with a per-node mirror
/// for O(1) "everything node X held" drains. Lock-striped by ring hash.
#[derive(Debug)]
pub struct KeyIndex {
    shards: Box<[Mutex<IndexInner>]>,
}

#[derive(Debug, Default)]
struct IndexInner {
    /// key -> owner node (raw ring id).
    owner_of: HashMap<String, u32>,
    /// node -> keys, mirror of `owner_of`.
    keys_of: HashMap<u32, HashSet<String>>,
}

impl Default for KeyIndex {
    fn default() -> Self {
        KeyIndex::new()
    }
}

impl KeyIndex {
    /// Shard count used by [`KeyIndex::new`]. A small power of two: far
    /// more stripes than a client's worker threads, cheap to walk whole.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Empty index with [`KeyIndex::DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        KeyIndex::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Empty index with an explicit stripe count (benchmarks compare
    /// `with_shards(1)` — the old single-lock layout — against the
    /// default). Clamped to at least one shard.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || Mutex::new(IndexInner::default()));
        KeyIndex {
            shards: v.into_boxed_slice(),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &str) -> &Mutex<IndexInner> {
        let i = key_hash(key) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Record that `node` owns `key` (moving it from any previous owner).
    pub fn record(&self, node: u32, key: &str) {
        let mut g = self.shard(key).lock();
        match g.owner_of.insert(key.to_owned(), node) {
            Some(prev) if prev == node => return,
            Some(prev) => {
                if let Some(set) = g.keys_of.get_mut(&prev) {
                    set.remove(key);
                }
            }
            None => {}
        }
        g.keys_of.entry(node).or_default().insert(key.to_owned());
    }

    /// The node last observed owning `key`.
    pub fn owner(&self, key: &str) -> Option<u32> {
        self.shard(key).lock().owner_of.get(key).copied()
    }

    /// The keys filed under `node`, sorted for deterministic walks.
    pub fn keys_of(&self, node: u32) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        for shard in self.shards.iter() {
            let g = shard.lock();
            if let Some(set) = g.keys_of.get(&node) {
                v.extend(set.iter().cloned());
            }
        }
        v.sort_unstable();
        v
    }

    /// Remove and return `node`'s keys (sorted) — the recovery engine's
    /// drain on a failure declaration. The keys become unowned until
    /// re-recorded under their new owners.
    pub fn drain_node(&self, node: u32) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        for shard in self.shards.iter() {
            let mut g = shard.lock();
            if let Some(keys) = g.keys_of.remove(&node) {
                for k in &keys {
                    g.owner_of.remove(k);
                }
                v.extend(keys);
            }
        }
        v.sort_unstable();
        v
    }

    /// Forget one key entirely (e.g. it vanished from the PFS).
    pub fn forget(&self, key: &str) {
        let mut g = self.shard(key).lock();
        if let Some(node) = g.owner_of.remove(key) {
            if let Some(set) = g.keys_of.get_mut(&node) {
                set.remove(key);
            }
        }
    }

    /// Number of keys tracked under `node`.
    pub fn count_of(&self, node: u32) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().keys_of.get(&node).map_or(0, HashSet::len))
            .sum()
    }

    /// Total keys tracked.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().owner_of.len()).sum()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_roundtrip() {
        let idx = KeyIndex::new();
        idx.record(1, "a");
        idx.record(1, "b");
        idx.record(2, "c");
        assert_eq!(idx.count_of(1), 2);
        assert_eq!(idx.owner("c"), Some(2));
        let drained = idx.drain_node(1);
        assert_eq!(drained, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(idx.count_of(1), 0);
        assert_eq!(idx.owner("a"), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn record_moves_between_owners() {
        let idx = KeyIndex::new();
        idx.record(1, "k");
        idx.record(2, "k");
        assert_eq!(idx.owner("k"), Some(2));
        assert_eq!(idx.count_of(1), 0);
        assert_eq!(idx.keys_of(2), vec!["k".to_string()]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn re_record_same_owner_is_idempotent() {
        let idx = KeyIndex::new();
        idx.record(3, "k");
        idx.record(3, "k");
        assert_eq!(idx.count_of(3), 1);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn forget_removes_both_directions() {
        let idx = KeyIndex::new();
        idx.record(1, "x");
        idx.forget("x");
        assert!(idx.is_empty());
        assert_eq!(idx.keys_of(1), Vec::<String>::new());
        // Forgetting an unknown key is a no-op.
        idx.forget("ghost");
    }

    #[test]
    fn keys_of_is_sorted_and_nonconsuming() {
        let idx = KeyIndex::new();
        for k in ["z", "m", "a"] {
            idx.record(7, k);
        }
        assert_eq!(idx.keys_of(7), vec!["a", "m", "z"]);
        assert_eq!(idx.count_of(7), 3, "keys_of must not drain");
    }

    #[test]
    fn single_shard_matches_default_layout() {
        let one = KeyIndex::with_shards(1);
        let many = KeyIndex::new();
        assert_eq!(one.shard_count(), 1);
        assert_eq!(many.shard_count(), KeyIndex::DEFAULT_SHARDS);
        for (i, k) in ["a", "b", "c", "d", "e", "f"].iter().enumerate() {
            one.record((i % 2) as u32, k);
            many.record((i % 2) as u32, k);
        }
        assert_eq!(one.keys_of(0), many.keys_of(0));
        assert_eq!(one.keys_of(1), many.keys_of(1));
        assert_eq!(one.drain_node(0), many.drain_node(0));
        assert_eq!(one.len(), many.len());
    }
}
