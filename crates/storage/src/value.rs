//! [`ValueBuf`] — the one value type every tier of the data plane shares.
//!
//! A cached object travels a long way: PFS → server NVMe → wire frame →
//! client → replica push → recache push. Before this type each hop that
//! wanted ownership re-allocated (`Vec<u8>` → `Bytes` → `Vec<u8>` on the
//! codec floor). `ValueBuf` is an immutable `Arc<[u8]>` with an
//! offset/len window, so:
//!
//! * **clone is a refcount bump** — handing a value to the reply path,
//!   the data mover, the replicator and the hint store are four clones
//!   of one allocation, not four copies;
//! * **views are free** — the wire codec can expose a value decoded
//!   from the middle of a frame body as a window into the frame's own
//!   allocation, with no per-value copy at all;
//! * **interop is lossless** — [`Bytes`] ⇄ `ValueBuf` conversions reuse
//!   the underlying `Arc` whenever the window spans the whole backing
//!   (the overwhelmingly common case), so the migration boundary with
//!   code still speaking `Bytes` costs nothing.
//!
//! ## Ownership rules
//!
//! The backing allocation is immutable from construction; a `ValueBuf`
//! never exposes `&mut [u8]`. Narrowing ([`ValueBuf::slice`]) produces a
//! new window over the *same* backing — the allocation lives until the
//! last window drops. Holding a tiny view of a huge frame body pins the
//! whole frame; callers that outlive the request (e.g. long-lived cache
//! residency) get a compact private copy via [`ValueBuf::detach`] when
//! the window covers less than the whole backing.

use bytes::Bytes;
use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable value buffer: a shared allocation
/// plus an offset/len window into it.
#[derive(Clone)]
pub struct ValueBuf {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl ValueBuf {
    /// An empty value.
    pub fn new() -> Self {
        ValueBuf {
            data: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// Copy `data` into a fresh allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let len = data.len();
        ValueBuf { data, off: 0, len }
    }

    /// A window over an existing shared allocation — the zero-copy
    /// constructor the wire codec uses to expose a value inside a frame
    /// body.
    ///
    /// # Panics
    ///
    /// Panics when `off + len` overruns `data` — a window must never
    /// read outside its backing.
    pub fn from_shared(data: Arc<[u8]>, off: usize, len: usize) -> Self {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= data.len()),
            "ValueBuf window {off}+{len} overruns backing of {}",
            data.len()
        );
        ValueBuf { data, off, len }
    }

    /// Length of the window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Copy the window out to an owned `Vec<u8>`.
    ///
    /// This is the escape hatch for callers that genuinely need owned,
    /// growable bytes; the serving path never calls it.
    pub fn to_vec(&self) -> Vec<u8> {
        // lint:allow(hot-path-alloc): the copy IS the contract here
        self.as_slice().to_vec()
    }

    /// A sub-window (relative to this window) over the same backing; no
    /// bytes are copied.
    ///
    /// # Panics
    ///
    /// Panics when the range overruns this window.
    pub fn slice(&self, off: usize, len: usize) -> Self {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "slice {off}+{len} overruns window of {}",
            self.len
        );
        ValueBuf {
            data: Arc::clone(&self.data),
            off: self.off + off,
            len,
        }
    }

    /// True when the window spans its whole backing allocation (so
    /// conversions can reuse the `Arc` instead of copying).
    pub fn is_full_window(&self) -> bool {
        self.off == 0 && self.len == self.data.len()
    }

    /// Drop any excess backing: a full window is returned as-is; a
    /// partial window is copied into a right-sized private allocation so
    /// it stops pinning the rest of the original buffer.
    pub fn detach(self) -> Self {
        if self.is_full_window() {
            self
        } else {
            // lint:allow(hot-path-alloc): the right-sizing copy is the
            // point — it unpins the rest of the original backing.
            ValueBuf::copy_from_slice(self.as_slice())
        }
    }

    /// The shared backing, reusing the `Arc` for full windows and
    /// copying only partial ones.
    pub fn into_shared(self) -> Arc<[u8]> {
        if self.is_full_window() {
            self.data
        } else {
            Arc::from(self.as_slice())
        }
    }

    /// Convert to [`Bytes`], reusing the allocation for full windows.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from_shared(self.into_shared())
    }

    /// True when `self` and `other` are windows over the same backing
    /// allocation (diagnostics and tests).
    pub fn shares_backing_with(&self, other: &ValueBuf) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for ValueBuf {
    fn default() -> Self {
        ValueBuf::new()
    }
}

impl Deref for ValueBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ValueBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for ValueBuf {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for ValueBuf {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let len = data.len();
        ValueBuf { data, off: 0, len }
    }
}

impl From<&[u8]> for ValueBuf {
    fn from(v: &[u8]) -> Self {
        // lint:allow(hot-path-alloc): a borrowed slice has no backing
        // Arc to share; entering ValueBuf from &[u8] must copy once.
        ValueBuf::copy_from_slice(v)
    }
}

impl From<Bytes> for ValueBuf {
    fn from(b: Bytes) -> Self {
        let data = b.into_shared();
        let len = data.len();
        ValueBuf { data, off: 0, len }
    }
}

impl From<ValueBuf> for Bytes {
    fn from(v: ValueBuf) -> Self {
        v.into_bytes()
    }
}

impl fmt::Debug for ValueBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for ValueBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for ValueBuf {}

impl PartialEq<[u8]> for ValueBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for ValueBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for ValueBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for ValueBuf {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<ValueBuf> for Bytes {
    fn eq(&self, other: &ValueBuf) -> bool {
        &self[..] == other.as_slice()
    }
}

impl PartialOrd for ValueBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ValueBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for ValueBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_equality_and_interop() {
        let a = ValueBuf::from(vec![1, 2, 3]);
        let b = ValueBuf::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a, Bytes::from(vec![1, 2, 3]));
        assert_eq!(Bytes::from(vec![1, 2, 3]), a);
        assert!(ValueBuf::new().is_empty());
        assert_eq!(a, vec![1u8, 2, 3]);
    }

    #[test]
    fn clone_and_slice_share_the_backing() {
        let v = ValueBuf::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let c = v.clone();
        assert!(v.shares_backing_with(&c));
        let mid = v.slice(2, 4);
        assert!(v.shares_backing_with(&mid));
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        assert!(!mid.is_full_window());
        let inner = mid.slice(1, 2);
        assert_eq!(&inner[..], &[3, 4]);
    }

    #[test]
    fn bytes_round_trip_is_zero_copy_for_full_windows() {
        let bytes = Bytes::from(vec![9u8; 32]);
        let arc_before = bytes.clone().into_shared();
        let v = ValueBuf::from(bytes);
        assert!(v.is_full_window());
        let back = v.into_bytes().into_shared();
        assert!(
            Arc::ptr_eq(&arc_before, &back),
            "full window reuses the Arc"
        );
    }

    #[test]
    fn partial_window_detaches_by_copying() {
        let v = ValueBuf::from(vec![0u8, 1, 2, 3]).slice(1, 2);
        let d = v.clone().detach();
        assert_eq!(d, v);
        assert!(d.is_full_window());
        assert!(!d.shares_backing_with(&v));
        // A full window detaches for free.
        let f = ValueBuf::from(vec![5u8; 4]);
        let fd = f.clone().detach();
        assert!(fd.shares_backing_with(&f));
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrunning_window_panics() {
        let v = ValueBuf::from(vec![0u8; 4]);
        let _ = v.slice(2, 3);
    }

    #[test]
    fn from_shared_window() {
        let arc: Arc<[u8]> = Arc::from(vec![10u8, 11, 12, 13]);
        let v = ValueBuf::from_shared(Arc::clone(&arc), 1, 2);
        assert_eq!(&v[..], &[11, 12]);
        assert_eq!(v.to_vec(), vec![11, 12]);
    }
}
