//! # ftc-storage — storage substrates for FT-Cache
//!
//! Reproduces the two storage tiers of the paper's environment:
//!
//! * **Node-local NVMe** ([`NvmeCache`]) — per-node, fast, capacity-bounded
//!   with LRU eviction; fed off the critical path by the [`DataMover`],
//!   mirroring HVAC's data-mover thread.
//! * **Parallel file system** ([`Pfs`]) — shared, slow, with per-file read
//!   accounting (so the "one extra PFS access per lost file" invariant of
//!   the hash-ring recaching design is directly testable) and a
//!   processor-sharing cost model ([`PfsModel`]) that produces stragglers
//!   under concurrent post-failure traffic.
//!
//! [`cost::frontier`] pins the calibration to Table II of the paper; the
//! discrete-event simulator and the threaded cluster both read it, so
//! every reproduced figure traces to one set of constants.

#![warn(missing_docs)]

pub mod cost;
pub mod index;
pub mod mover;
pub mod nvme;
pub mod object;
pub mod pfs;
pub mod synth;
pub mod value;

pub use cost::{frontier, frontier_node, CostModel, NodeSpec, TierCost};
pub use index::KeyIndex;
pub use mover::{DataMover, DEFAULT_MOVER_QUEUE_CAP};
pub use nvme::{NvmeCache, NvmeStats};
pub use object::{FileStore, MemStore, ObjectStore};
pub use pfs::{Pfs, PfsModel};
pub use synth::{synth_bytes, verify_synth};
pub use value::ValueBuf;
