//! The data-mover — HVAC's background thread that copies PFS-fetched files
//! onto the local NVMe for future epochs.
//!
//! When an HVAC server misses its NVMe it serves the client *first* (from
//! the PFS) and enqueues the copy; the mover persists it off the critical
//! path. After a failure, the new hash-ring owners recache lost files
//! through exactly this path, which is why the recache cost shows up once
//! and then disappears.

use crate::nvme::NvmeCache;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Background PFS→NVMe copier for one node.
pub struct DataMover {
    tx: Option<Sender<CopyJob>>,
    handle: Option<JoinHandle<()>>,
    moved: Arc<AtomicU64>,
    moved_bytes: Arc<AtomicU64>,
}

/// A queued copy: (key, contents).
type CopyJob = (String, Bytes);

impl DataMover {
    /// Spawn a mover that inserts into `cache`. Errors if the OS refuses
    /// the worker thread (resource exhaustion) — callers surface this as a
    /// typed boot failure instead of panicking mid-cluster-start.
    pub fn spawn(cache: Arc<NvmeCache>) -> std::io::Result<Self> {
        let (tx, rx): (Sender<CopyJob>, Receiver<CopyJob>) = unbounded();
        let moved = Arc::new(AtomicU64::new(0));
        let moved_bytes = Arc::new(AtomicU64::new(0));
        let m = Arc::clone(&moved);
        let mb = Arc::clone(&moved_bytes);
        let handle = std::thread::Builder::new()
            .name("ftc-data-mover".into())
            .spawn(move || {
                while let Ok((key, data)) = rx.recv() {
                    let len = data.len() as u64;
                    cache.insert(&key, data);
                    // ordering: Relaxed — pure statistics; readers poll
                    // (`drain`) and tolerate lag, no data is published.
                    m.fetch_add(1, Ordering::Relaxed);
                    mb.fetch_add(len, Ordering::Relaxed);
                }
            })?;
        Ok(DataMover {
            tx: Some(tx),
            handle: Some(handle),
            moved,
            moved_bytes,
        })
    }

    /// Enqueue a copy; returns false if the mover has shut down.
    pub fn enqueue(&self, key: &str, data: Bytes) -> bool {
        match &self.tx {
            Some(tx) => tx.send((key.to_owned(), data)).is_ok(),
            None => false,
        }
    }

    /// Files copied so far.
    pub fn moved(&self) -> u64 {
        // ordering: Relaxed — monotone statistic; `drain` polls until the
        // target count appears, so staleness only delays, never corrupts.
        self.moved.load(Ordering::Relaxed)
    }

    /// Bytes copied so far.
    pub fn moved_bytes(&self) -> u64 {
        // ordering: Relaxed — monotone statistic, see `moved`.
        self.moved_bytes.load(Ordering::Relaxed)
    }

    /// Shared handles to the (files, bytes) counters, so totals stay
    /// observable after the mover (and its owner) are moved elsewhere.
    pub fn counter_handles(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::clone(&self.moved), Arc::clone(&self.moved_bytes))
    }

    /// Block until every enqueued copy has landed, then stop the thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx); // closes the channel; worker drains then exits
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Wait (bounded) until the backlog drains without shutting down —
    /// lets tests assert "eventually cached" deterministically.
    pub fn drain(&self, expected_moved: u64, timeout: std::time::Duration) -> bool {
        let t0 = std::time::Instant::now();
        while self.moved() < expected_moved {
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }
}

impl Drop for DataMover {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A mover guarded for shared use by a server's request handlers.
pub type SharedMover = Arc<Mutex<DataMover>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn copies_land_in_cache() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn(Arc::clone(&cache)).expect("spawn mover");
        for i in 0..50 {
            assert!(mover.enqueue(&format!("k{i}"), Bytes::from(vec![1u8; 10])));
        }
        assert!(mover.drain(50, Duration::from_secs(5)));
        assert_eq!(cache.len(), 50);
        assert_eq!(mover.moved_bytes(), 500);
        mover.shutdown();
    }

    #[test]
    fn shutdown_drains_backlog() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn(Arc::clone(&cache)).expect("spawn mover");
        for i in 0..200 {
            mover.enqueue(&format!("k{i}"), Bytes::from(vec![0u8; 4]));
        }
        mover.shutdown(); // must not lose queued copies
        assert_eq!(cache.len(), 200);
    }

    #[test]
    fn enqueue_after_drop_is_safe() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mut mover = DataMover::spawn(cache).expect("spawn mover");
        mover.shutdown_inner();
        assert!(!mover.enqueue("x", Bytes::new()));
    }

    #[test]
    fn drain_times_out_when_short() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn(cache).expect("spawn mover");
        mover.enqueue("a", Bytes::new());
        // Expecting 2 moves when only 1 was enqueued must time out.
        assert!(!mover.drain(2, Duration::from_millis(50)));
    }
}
