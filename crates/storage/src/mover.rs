//! The data-mover — HVAC's background thread that copies PFS-fetched files
//! onto the local NVMe for future epochs.
//!
//! When an HVAC server misses its NVMe it serves the client *first* (from
//! the PFS) and enqueues the copy; the mover persists it off the critical
//! path. After a failure, the new hash-ring owners recache lost files
//! through exactly this path, which is why the recache cost shows up once
//! and then disappears.
//!
//! The queue is **bounded**: a recache burst (or a mover wedged behind a
//! slow device) must exert backpressure instead of ballooning memory with
//! parked copies. A full queue rejects the enqueue — the file is already
//! served, only its persistence is skipped, and the next miss retries —
//! and the rejection is counted so the pressure is observable.

use crate::nvme::NvmeCache;
use crate::value::ValueBuf;
use ftc_time::{ClockHandle, ClockSender, TaskHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default bound on queued-but-unpersisted copies. Sized for a whole
/// node's key range recaching at once (the worst organic burst) while
/// still bounding memory to capacity × file size.
pub const DEFAULT_MOVER_QUEUE_CAP: u64 = 4096;

/// Background PFS→NVMe copier for one node.
pub struct DataMover {
    clock: ClockHandle,
    tx: Option<ClockSender<CopyJob>>,
    handle: Option<TaskHandle>,
    moved: Arc<AtomicU64>,
    moved_bytes: Arc<AtomicU64>,
    /// Jobs accepted but not yet persisted (queue depth).
    depth: Arc<AtomicU64>,
    /// Enqueues rejected because the queue was full.
    rejected: Arc<AtomicU64>,
    capacity: u64,
}

/// A queued copy: (key, contents).
type CopyJob = (String, ValueBuf);

impl DataMover {
    /// Spawn a mover with the default queue bound. Errors if the OS
    /// refuses the worker thread (resource exhaustion) — callers surface
    /// this as a typed boot failure instead of panicking mid-cluster-start.
    pub fn spawn(cache: Arc<NvmeCache>) -> std::io::Result<Self> {
        Self::spawn_bounded(cache, DEFAULT_MOVER_QUEUE_CAP)
    }

    /// Spawn a mover whose queue holds at most `capacity` pending copies.
    pub fn spawn_bounded(cache: Arc<NvmeCache>, capacity: u64) -> std::io::Result<Self> {
        Self::spawn_bounded_with_clock(cache, capacity, ClockHandle::wall())
    }

    /// [`DataMover::spawn`] with an injected clock; under a virtual clock
    /// the worker becomes a cooperative task and `drain` consumes virtual
    /// rather than wall time.
    pub fn spawn_with_clock(cache: Arc<NvmeCache>, clock: ClockHandle) -> std::io::Result<Self> {
        Self::spawn_bounded_with_clock(cache, DEFAULT_MOVER_QUEUE_CAP, clock)
    }

    /// [`DataMover::spawn_bounded`] with an injected clock.
    pub fn spawn_bounded_with_clock(
        cache: Arc<NvmeCache>,
        capacity: u64,
        clock: ClockHandle,
    ) -> std::io::Result<Self> {
        let (tx, rx) = clock.channel::<CopyJob>();
        let moved = Arc::new(AtomicU64::new(0));
        let moved_bytes = Arc::new(AtomicU64::new(0));
        let depth = Arc::new(AtomicU64::new(0));
        let m = Arc::clone(&moved);
        let mb = Arc::clone(&moved_bytes);
        let d = Arc::clone(&depth);
        let handle = clock.spawn("ftc-data-mover", move || {
            while let Ok((key, data)) = rx.recv() {
                let len = data.len() as u64;
                cache.insert(&key, data);
                // ordering: Relaxed — pure statistics; readers poll
                // (`drain`) and tolerate lag, no data is published.
                m.fetch_add(1, Ordering::Relaxed);
                mb.fetch_add(len, Ordering::Relaxed);
                // ordering: Relaxed — depth is an admission-control
                // heuristic; a momentarily stale view only lets one
                // extra job through or rejects one early, both fine.
                d.fetch_sub(1, Ordering::Relaxed);
            }
        })?;
        Ok(DataMover {
            clock,
            tx: Some(tx),
            handle: Some(handle),
            moved,
            moved_bytes,
            depth,
            rejected: Arc::new(AtomicU64::new(0)),
            capacity,
        })
    }

    /// Enqueue a copy; returns false (and counts the rejection) if the
    /// queue is at capacity or the mover has shut down. Callers must not
    /// assume the copy will land — the serve already happened, only the
    /// recache is skipped.
    pub fn enqueue(&self, key: &str, data: impl Into<ValueBuf>) -> bool {
        let Some(tx) = &self.tx else {
            // ordering: Relaxed — monotone statistic, publishes no data.
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        // ordering: Relaxed — admission heuristic; see the worker's note.
        if self.depth.load(Ordering::Relaxed) >= self.capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // ordering: Relaxed — paired with the worker-side decrement; the
        // count is advisory, the channel owns the data.
        self.depth.fetch_add(1, Ordering::Relaxed);
        if tx.send((key.to_owned(), data.into())).is_ok() {
            true
        } else {
            // ordering: Relaxed — rollback of the advisory count.
            self.depth.fetch_sub(1, Ordering::Relaxed);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Files copied so far.
    pub fn moved(&self) -> u64 {
        // ordering: Relaxed — monotone statistic; `drain` polls until the
        // target count appears, so staleness only delays, never corrupts.
        self.moved.load(Ordering::Relaxed)
    }

    /// Bytes copied so far.
    pub fn moved_bytes(&self) -> u64 {
        // ordering: Relaxed — monotone statistic, see `moved`.
        self.moved_bytes.load(Ordering::Relaxed)
    }

    /// Copies accepted but not yet persisted.
    pub fn queue_depth(&self) -> u64 {
        // ordering: Relaxed — advisory gauge.
        self.depth.load(Ordering::Relaxed)
    }

    /// Enqueues rejected (full queue or shut-down mover) so far.
    pub fn rejected(&self) -> u64 {
        // ordering: Relaxed — monotone statistic.
        self.rejected.load(Ordering::Relaxed)
    }

    /// The queue bound this mover was spawned with.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Shared handles to the (files, bytes) counters, so totals stay
    /// observable after the mover (and its owner) are moved elsewhere.
    pub fn counter_handles(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::clone(&self.moved), Arc::clone(&self.moved_bytes))
    }

    /// Shared handles to the (queue depth, rejected) pressure counters,
    /// for per-node exposition that outlives the mover.
    pub fn pressure_handles(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (Arc::clone(&self.depth), Arc::clone(&self.rejected))
    }

    /// Block until every enqueued copy has landed, then stop the thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx); // closes the channel; worker drains then exits
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Wait (bounded) until the backlog drains without shutting down —
    /// lets tests assert "eventually cached" deterministically. The wait
    /// is a clock-paced poll: in virtual mode each poll yields to the
    /// worker task, so the drain costs virtual time only.
    pub fn drain(&self, expected_moved: u64, timeout: Duration) -> bool {
        self.clock
            .wait_until(timeout, Duration::from_micros(200), || {
                self.moved() >= expected_moved
            })
    }
}

impl Drop for DataMover {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A mover guarded for shared use by a server's request handlers.
pub type SharedMover = Arc<Mutex<DataMover>>;

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Duration;

    #[test]
    fn copies_land_in_cache() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn(Arc::clone(&cache)).expect("spawn mover");
        for i in 0..50 {
            assert!(mover.enqueue(&format!("k{i}"), Bytes::from(vec![1u8; 10])));
        }
        assert!(mover.drain(50, Duration::from_secs(5)));
        assert_eq!(cache.len(), 50);
        assert_eq!(mover.moved_bytes(), 500);
        assert_eq!(mover.rejected(), 0);
        assert_eq!(mover.queue_depth(), 0);
        mover.shutdown();
    }

    #[test]
    fn shutdown_drains_backlog() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn(Arc::clone(&cache)).expect("spawn mover");
        for i in 0..200 {
            mover.enqueue(&format!("k{i}"), Bytes::from(vec![0u8; 4]));
        }
        mover.shutdown(); // must not lose queued copies
        assert_eq!(cache.len(), 200);
    }

    #[test]
    fn enqueue_after_drop_is_safe_and_counted() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mut mover = DataMover::spawn(cache).expect("spawn mover");
        mover.shutdown_inner();
        assert!(!mover.enqueue("x", Bytes::new()));
        assert_eq!(mover.rejected(), 1);
    }

    #[test]
    fn drain_times_out_when_short() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn(cache).expect("spawn mover");
        mover.enqueue("a", Bytes::new());
        // Expecting 2 moves when only 1 was enqueued must time out.
        assert!(!mover.drain(2, Duration::from_millis(50)));
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let cache = Arc::new(NvmeCache::unbounded());
        // Capacity zero: every enqueue must bounce, deterministically —
        // no race with the worker draining.
        let mover = DataMover::spawn_bounded(Arc::clone(&cache), 0).expect("spawn mover");
        assert!(!mover.enqueue("a", Bytes::from(vec![1u8; 8])));
        assert!(!mover.enqueue("b", Bytes::from(vec![1u8; 8])));
        assert_eq!(mover.rejected(), 2);
        assert_eq!(mover.moved(), 0);
        assert_eq!(cache.len(), 0);
        mover.shutdown();
    }

    #[test]
    fn bounded_queue_still_accepts_up_to_capacity() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn_bounded(Arc::clone(&cache), 1000).expect("spawn mover");
        let mut accepted = 0u64;
        for i in 0..1000 {
            if mover.enqueue(&format!("k{i}"), Bytes::from(vec![0u8; 2])) {
                accepted += 1;
            }
        }
        // The worker drains concurrently, so everything accepted lands.
        assert!(mover.drain(accepted, Duration::from_secs(5)));
        assert_eq!(cache.len(), accepted as usize);
        assert_eq!(accepted + mover.rejected(), 1000, "every enqueue accounted");
        mover.shutdown();
    }

    #[test]
    fn pressure_handles_outlive_mover() {
        let cache = Arc::new(NvmeCache::unbounded());
        let mover = DataMover::spawn_bounded(cache, 0).expect("spawn mover");
        let (depth, rejected) = mover.pressure_handles();
        mover.enqueue("x", Bytes::new());
        mover.shutdown();
        // ordering: Relaxed — test-side observation of the statistic.
        assert_eq!(rejected.load(Ordering::Relaxed), 1);
        assert_eq!(depth.load(Ordering::Relaxed), 0);
    }
}
