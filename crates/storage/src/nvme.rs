//! Node-local NVMe cache — one per compute node (the paper's per-node
//! 3.5 TB XFS volume over two PM9A3 SSDs).
//!
//! Capacity-bounded with LRU eviction. HVAC in practice sizes datasets to
//! fit, but a fault-tolerant cache must survive the recached keys of a dead
//! neighbor pushing a node past its capacity, so eviction is load-bearing
//! here, not hypothetical.
//!
//! ## Sharding
//!
//! The cache can be lock-striped ([`NvmeCache::sharded`]): keys route to
//! shards by the same ring hash the placement uses, so concurrent reads
//! of different keys never contend on one mutex. Each shard runs its own
//! LRU over `capacity / shards` bytes — an approximation of global LRU
//! (standard cache practice; eviction choice can differ from the
//! single-lock cache near capacity). [`NvmeCache::new`] therefore stays
//! single-shard with the exact legacy semantics; bounded configurations
//! that pin eviction order keep using it, while the serving path picks
//! stripes via [`NvmeCache::for_serving`] when the capacity is
//! effectively unbounded (where the two layouts are observably
//! identical).

use crate::value::ValueBuf;
use ftc_hashring::hash::key_hash;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counters for one node's NVMe cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeStats {
    /// `get` calls that found the object.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Objects evicted to make room.
    pub evictions: u64,
    /// Objects inserted.
    pub inserts: u64,
    /// Current resident bytes.
    pub resident_bytes: u64,
    /// Current resident object count.
    pub resident_objects: u64,
}

impl ftc_obs::Export for NvmeStats {
    fn export_into(&self, out: &mut Vec<ftc_obs::Sample>) {
        out.push(ftc_obs::Sample::counter("ftc_nvme_hits_total", self.hits));
        out.push(ftc_obs::Sample::counter(
            "ftc_nvme_misses_total",
            self.misses,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_nvme_evictions_total",
            self.evictions,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_nvme_inserts_total",
            self.inserts,
        ));
        out.push(ftc_obs::Sample::gauge(
            "ftc_nvme_resident_bytes",
            self.resident_bytes as f64,
        ));
        out.push(ftc_obs::Sample::gauge(
            "ftc_nvme_resident_objects",
            self.resident_objects as f64,
        ));
    }
}

#[derive(Debug)]
struct Entry {
    data: ValueBuf,
    /// Monotone access stamp; smallest = least recently used.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Entry>,
    /// stamp -> key, mirror of `map` ordered by recency.
    lru: std::collections::BTreeMap<u64, String>,
    bytes: u64,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
}

/// Capacity-bounded LRU cache of objects on one node's NVMe, optionally
/// lock-striped into independent shards.
#[derive(Debug)]
pub struct NvmeCache {
    shards: Box<[Mutex<Shard>]>,
    /// Byte budget of one shard (total / shard count).
    shard_capacity: u64,
    /// Total configured capacity across all shards.
    capacity: u64,
}

impl NvmeCache {
    /// Shard count used by [`NvmeCache::for_serving`] and
    /// [`NvmeCache::unbounded`].
    pub const DEFAULT_SHARDS: usize = 16;

    /// Single-shard cache bounded to `capacity` bytes — the exact legacy
    /// global-LRU semantics (eviction order is fully determined).
    pub fn new(capacity: u64) -> Self {
        Self::sharded(capacity, 1)
    }

    /// Lock-striped cache: `capacity` bytes split evenly across `shards`
    /// independent LRUs, keys routed by ring hash. Clamped to at least
    /// one shard.
    pub fn sharded(capacity: u64, shards: usize) -> Self {
        let n = shards.max(1);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || Mutex::new(Shard::default()));
        NvmeCache {
            shards: v.into_boxed_slice(),
            shard_capacity: if capacity == u64::MAX {
                u64::MAX
            } else {
                capacity / n as u64
            },
            capacity,
        }
    }

    /// Effectively unbounded cache (tests and fits-in-memory datasets).
    /// Striped by default: with no eviction possible, the sharded and
    /// single-lock layouts are observably identical, so the unbounded
    /// case always takes the contention win.
    pub fn unbounded() -> Self {
        Self::sharded(u64::MAX, Self::DEFAULT_SHARDS)
    }

    /// The layout the serving path should use for a given capacity:
    /// striped when unbounded (identical observables, no lock
    /// contention), single-shard when bounded (per-shard LRU would
    /// perturb pinned eviction order in replayed scenarios).
    pub fn for_serving(capacity: u64) -> Self {
        if capacity == u64::MAX {
            Self::unbounded()
        } else {
            Self::new(capacity)
        }
    }

    /// Configured total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let i = key_hash(key) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Look up an object, refreshing its recency on hit. The returned
    /// value is a window over the cached allocation — no bytes copied.
    pub fn get(&self, key: &str) -> Option<ValueBuf> {
        let mut g = self.shard(key).lock();
        g.next_stamp += 1;
        let stamp = g.next_stamp;
        match g.map.get_mut(key) {
            Some(e) => {
                let old = e.stamp;
                e.stamp = stamp;
                let data = e.data.clone();
                g.lru.remove(&old);
                g.lru.insert(stamp, key.to_owned());
                g.hits += 1;
                Some(data)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Presence check without touching recency or hit/miss counters.
    pub fn peek(&self, key: &str) -> bool {
        self.shard(key).lock().map.contains_key(key)
    }

    /// Insert an object, evicting least-recently-used entries from the
    /// key's shard as needed.
    ///
    /// Returns the keys evicted. An object larger than its shard's budget
    /// is rejected (returned count is empty and the object is not stored).
    pub fn insert(&self, key: &str, data: impl Into<ValueBuf>) -> Vec<String> {
        let data = data.into();
        let size = data.len() as u64;
        if size > self.shard_capacity {
            return Vec::new();
        }
        let mut g = self.shard(key).lock();
        let mut evicted = Vec::new();

        // Replacing an existing entry frees its bytes first.
        if let Some(old) = g.map.remove(key) {
            g.lru.remove(&old.stamp);
            g.bytes -= old.data.len() as u64;
        }

        while g.bytes + size > self.shard_capacity {
            // `bytes > 0` implies the LRU mirror is non-empty; if the
            // mirrors ever disagree, stop evicting instead of spinning.
            let stamp = match g.lru.iter().next() {
                Some((&stamp, _)) => stamp,
                None => break,
            };
            let Some(victim) = g.lru.remove(&stamp) else {
                break;
            };
            match g.map.remove(&victim) {
                Some(e) => g.bytes -= e.data.len() as u64,
                None => break,
            }
            g.evictions += 1;
            evicted.push(victim);
        }

        g.next_stamp += 1;
        let stamp = g.next_stamp;
        g.lru.insert(stamp, key.to_owned());
        g.map.insert(key.to_owned(), Entry { data, stamp });
        g.bytes += size;
        g.inserts += 1;
        evicted
    }

    /// Remove an object (e.g. invalidation); returns whether it existed.
    pub fn remove(&self, key: &str) -> bool {
        let mut g = self.shard(key).lock();
        if let Some(e) = g.map.remove(key) {
            g.lru.remove(&e.stamp);
            g.bytes -= e.data.len() as u64;
            true
        } else {
            false
        }
    }

    /// Drop every object (node wipe).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut g = shard.lock();
            g.map.clear();
            g.lru.clear();
            g.bytes = 0;
        }
    }

    /// Sorted list of resident keys — the warm-rejoin digest source: a
    /// revived node announces these so the recovery engine can reconcile
    /// the surviving contents against the current ring.
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        for shard in self.shards.iter() {
            v.extend(shard.lock().map.keys().cloned());
        }
        v.sort_unstable();
        v
    }

    /// Resident object count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Counter snapshot, summed across shards.
    pub fn stats(&self) -> NvmeStats {
        let mut out = NvmeStats::default();
        for shard in self.shards.iter() {
            let g = shard.lock();
            out.hits += g.hits;
            out.misses += g.misses;
            out.evictions += g.evictions;
            out.inserts += g.inserts;
            out.resident_bytes += g.bytes;
            out.resident_objects += g.map.len() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn b(n: usize) -> Bytes {
        Bytes::from(vec![0xAB; n])
    }

    #[test]
    fn stats_export_counters_and_gauges() {
        use ftc_obs::{Export, Value};
        let stats = NvmeStats {
            hits: 5,
            resident_bytes: 4096,
            ..Default::default()
        };
        let samples = stats.export();
        assert_eq!(samples.len(), 6);
        assert!(samples
            .iter()
            .any(|s| s.name == "ftc_nvme_hits_total" && s.value == Value::Counter(5)));
        assert!(samples
            .iter()
            .any(|s| s.name == "ftc_nvme_resident_bytes" && s.value == Value::Gauge(4096.0)));
    }

    #[test]
    fn hit_miss_accounting() {
        let c = NvmeCache::unbounded();
        assert_eq!(c.get("x"), None);
        c.insert("x", b(3));
        assert_eq!(c.get("x").unwrap().len(), 3);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.resident_bytes, 3);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = NvmeCache::new(30);
        c.insert("a", b(10));
        c.insert("b", b(10));
        c.insert("c", b(10));
        // Touch "a" so "b" is now the LRU.
        assert!(c.get("a").is_some());
        let evicted = c.insert("d", b(10));
        assert_eq!(evicted, vec!["b".to_string()]);
        assert!(c.peek("a") && c.peek("c") && c.peek("d"));
        assert!(!c.peek("b"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn large_insert_evicts_many() {
        let c = NvmeCache::new(30);
        c.insert("a", b(10));
        c.insert("b", b(10));
        c.insert("c", b(10));
        let evicted = c.insert("big", b(25));
        assert_eq!(evicted.len(), 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 25);
    }

    #[test]
    fn oversized_object_rejected() {
        let c = NvmeCache::new(10);
        assert!(c.insert("huge", b(11)).is_empty());
        assert!(!c.peek("huge"));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn replace_frees_old_bytes() {
        let c = NvmeCache::new(20);
        c.insert("a", b(10));
        c.insert("a", b(15));
        assert_eq!(c.resident_bytes(), 15);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn capacity_invariant_under_churn() {
        let c = NvmeCache::new(100);
        for i in 0..1000 {
            c.insert(&format!("k{i}"), b(7));
            assert!(c.resident_bytes() <= 100, "over capacity at i={i}");
        }
        assert!(c.len() <= 100 / 7);
    }

    #[test]
    fn keys_digest_is_sorted() {
        let c = NvmeCache::unbounded();
        c.insert("b", b(1));
        c.insert("a", b(1));
        c.insert("z", b(1));
        assert_eq!(c.keys(), vec!["a", "b", "z"]);
    }

    #[test]
    fn remove_and_clear() {
        let c = NvmeCache::unbounded();
        c.insert("a", b(5));
        c.insert("z", b(5));
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.resident_bytes(), 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn peek_does_not_affect_lru_or_stats() {
        let c = NvmeCache::new(20);
        c.insert("a", b(10));
        c.insert("b", b(10));
        // peek "a" (no recency bump), then inserting "c" must evict "a".
        assert!(c.peek("a"));
        let evicted = c.insert("c", b(10));
        assert_eq!(evicted, vec!["a".to_string()]);
        let s = c.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn sharded_capacity_splits_evenly() {
        let c = NvmeCache::sharded(160, 16);
        assert_eq!(c.shard_count(), 16);
        assert_eq!(c.capacity(), 160);
        // One shard's budget is 10 bytes: an 11-byte object is rejected
        // even though the total capacity would hold it.
        assert!(c.insert("big", b(11)).is_empty());
        assert!(c.insert("ok", b(10)).is_empty());
        assert!(c.peek("ok"));
    }

    #[test]
    fn sharded_get_returns_cached_window_without_copy() {
        let c = NvmeCache::unbounded();
        c.insert("k", b(64));
        let first = c.get("k").unwrap();
        let second = c.get("k").unwrap();
        assert!(first.shares_backing_with(&second), "get must not copy");
    }

    #[test]
    fn serving_layout_by_capacity() {
        assert_eq!(
            NvmeCache::for_serving(u64::MAX).shard_count(),
            NvmeCache::DEFAULT_SHARDS
        );
        assert_eq!(NvmeCache::for_serving(1024).shard_count(), 1);
    }
}
