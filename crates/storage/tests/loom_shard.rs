//! Loom model of one NVMe-cache shard under concurrent readers and an
//! evictor.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI `loom` job):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ftc-storage --test loom_shard --release
//! ```
//!
//! Models the shard protocol from `src/nvme.rs`: cached values are
//! Arc-backed windows ([`ftc_storage::ValueBuf`]), `get` clones the Arc
//! *under* the shard lock and the caller reads the bytes *outside* it,
//! while an evictor may remove the entry and install a replacement
//! concurrently. Two properties must hold in every interleaving:
//!
//! 1. Ownership: a window handed out by `get` stays valid and intact
//!    after its entry is evicted — the clone pins the allocation, so
//!    zero-copy reads never race the evictor into a dangling or aliased
//!    view. A reader sees exactly the old bytes or exactly the new
//!    bytes, never a mix.
//! 2. Accounting: resident-bytes equals the byte sum of resident
//!    entries at every lock hand-off, across the evict and the insert.

#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashMap;

/// The value resident when the model starts.
const OLD: &[u8] = &[0xAA; 16];
/// The replacement the evictor installs under the same key.
const NEW: &[u8] = &[0xBB; 24];

/// One shard: key -> Arc-backed value, plus the resident-byte counter
/// the real shard maintains alongside its map.
struct Shard {
    map: HashMap<&'static str, Arc<Vec<u8>>>,
    bytes: u64,
}

/// The accounting invariant checked at every lock hand-off.
fn check(shard: &Shard) {
    let sum: u64 = shard.map.values().map(|v| v.len() as u64).sum();
    assert_eq!(
        shard.bytes, sum,
        "resident accounting drifted from the map contents"
    );
}

#[test]
fn evicted_windows_stay_valid_and_accounting_is_exact() {
    loom::model(|| {
        let shard = Arc::new(Mutex::new(Shard {
            map: HashMap::from([("hot", Arc::new(OLD.to_vec()))]),
            bytes: OLD.len() as u64,
        }));
        let old_seen = Arc::new(AtomicU64::new(0));
        let new_seen = Arc::new(AtomicU64::new(0));

        // Two readers racing the evictor on the same key: the `get`
        // protocol — clone the Arc under the lock, read outside it.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shard = Arc::clone(&shard);
                let old_seen = Arc::clone(&old_seen);
                let new_seen = Arc::clone(&new_seen);
                thread::spawn(move || {
                    let window = {
                        let g = shard.lock().expect("unpoisoned");
                        check(&g);
                        g.map.get("hot").cloned()
                    };
                    // The key is never absent in this model (the evictor
                    // replaces in the same critical section), so every
                    // reader holds a window — possibly of an allocation
                    // the evictor has since dropped from the map.
                    let v = window.expect("key resident throughout");
                    match v.len() {
                        n if n == OLD.len() => {
                            assert_eq!(&v[..], OLD, "old window corrupted by eviction");
                            // ordering: Relaxed — counters are read only
                            // after every thread has joined.
                            old_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        n if n == NEW.len() => {
                            assert_eq!(&v[..], NEW, "new window corrupted");
                            // ordering: Relaxed — see above.
                            new_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        n => panic!("window is neither old nor new ({n} bytes)"),
                    }
                })
            })
            .collect();

        // Evictor: remove the entry, fix accounting, install the
        // replacement — one critical section, as in `NvmeCache::insert`
        // replacing an existing key.
        let evictor = {
            let shard = Arc::clone(&shard);
            thread::spawn(move || {
                let evicted = {
                    let mut g = shard.lock().expect("unpoisoned");
                    let e = g.map.remove("hot").expect("entry present until evicted");
                    g.bytes -= e.len() as u64;
                    g.map.insert("hot", Arc::new(NEW.to_vec()));
                    g.bytes += NEW.len() as u64;
                    check(&g);
                    e
                };
                // The evictor's own handle outlives the map entry too:
                // eviction returns the victim's bytes intact (the data
                // mover re-homes them without re-reading the PFS).
                assert_eq!(&evicted[..], OLD, "evicted window invalidated");
            })
        };

        for r in readers {
            r.join().expect("reader thread");
        }
        evictor.join().expect("evictor thread");

        let g = shard.lock().expect("unpoisoned");
        check(&g);
        assert_eq!(g.bytes, NEW.len() as u64, "only the replacement resides");
        // ordering: Relaxed — all threads joined; values are final.
        let before = old_seen.load(Ordering::Relaxed);
        let after = new_seen.load(Ordering::Relaxed);
        assert_eq!(
            before + after,
            2,
            "each reader resolved to exactly one window generation"
        );
    });
}
