//! Property tests for the storage substrates: LRU capacity/consistency
//! invariants under arbitrary operation sequences and synthetic-content
//! integrity.

use bytes::Bytes;
use ftc_hashring::hash::key_hash;
use ftc_storage::{synth_bytes, verify_synth, KeyIndex, NvmeCache, NvmeStats, Pfs};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u16),
    Get(u8),
    Remove(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u16..512).prop_map(|(k, s)| Op::Insert(k, s)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Remove),
    ]
}

#[derive(Debug, Clone)]
enum IdxOp {
    Record(u32, u8),
    Forget(u8),
    Drain(u32),
}

fn idx_op_strategy() -> impl Strategy<Value = IdxOp> {
    prop_oneof![
        (0u32..4, any::<u8>()).prop_map(|(n, k)| IdxOp::Record(n, k)),
        any::<u8>().prop_map(IdxOp::Forget),
        (0u32..4).prop_map(IdxOp::Drain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any operation sequence the cache never exceeds capacity, and
    /// resident accounting matches a reference model.
    #[test]
    fn nvme_capacity_and_consistency(
        capacity in 64u64..4096,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let cache = NvmeCache::new(capacity);
        let mut model: std::collections::HashMap<String, usize> = Default::default();
        let mut order: Vec<String> = Vec::new(); // LRU order, front = oldest

        for op in ops {
            match op {
                Op::Insert(k, size) => {
                    let key = format!("k{k}");
                    let size = size as usize;
                    let evicted = cache.insert(&key, Bytes::from(vec![0; size]));
                    if size as u64 > capacity {
                        // Rejected insert: nothing evicted, and any
                        // previously cached value under this key survives.
                        prop_assert!(evicted.is_empty());
                        prop_assert_eq!(cache.peek(&key), model.contains_key(&key));
                        continue;
                    }
                    // Mirror in the model: drop old entry, evict LRU until fit.
                    if model.remove(&key).is_some() {
                        order.retain(|x| x != &key);
                    }
                    let mut resident: usize = model.values().sum();
                    let mut expected_evicted = Vec::new();
                    while resident + size > capacity as usize {
                        let victim = order.remove(0);
                        resident -= model.remove(&victim).unwrap();
                        expected_evicted.push(victim);
                    }
                    model.insert(key.clone(), size);
                    order.push(key);
                    prop_assert_eq!(evicted, expected_evicted);
                }
                Op::Get(k) => {
                    let key = format!("k{k}");
                    let got = cache.get(&key);
                    prop_assert_eq!(got.is_some(), model.contains_key(&key));
                    if model.contains_key(&key) {
                        prop_assert_eq!(got.unwrap().len(), model[&key]);
                        order.retain(|x| x != &key);
                        order.push(key);
                    }
                }
                Op::Remove(k) => {
                    let key = format!("k{k}");
                    let removed = cache.remove(&key);
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                    order.retain(|x| x != &key);
                }
            }
            let resident: usize = model.values().sum();
            prop_assert!(cache.resident_bytes() <= capacity);
            prop_assert_eq!(cache.resident_bytes(), resident as u64);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// Synthetic content is verifiable, path-sensitive, and prefix-stable.
    #[test]
    fn synth_integrity(path in "[a-z0-9/_.]{1,40}", len in 0usize..2048) {
        let data = synth_bytes(&path, len);
        prop_assert_eq!(data.len(), len);
        prop_assert!(verify_synth(&path, &data));
        if len > 0 {
            let mut corrupted = data.to_vec();
            corrupted[len / 2] ^= 0x01;
            prop_assert!(!verify_synth(&path, &corrupted));
        }
    }

    /// A lock-striped `KeyIndex` is observably identical to the
    /// single-lock layout under any operation sequence: the stripes only
    /// partition the maps, they never change what the index reports.
    #[test]
    fn key_index_layouts_are_equivalent(
        shards in 2usize..=16,
        ops in prop::collection::vec(idx_op_strategy(), 1..200),
    ) {
        let single = KeyIndex::with_shards(1);
        let striped = KeyIndex::with_shards(shards);
        for op in ops {
            match op {
                IdxOp::Record(node, k) => {
                    let key = format!("k{k}");
                    single.record(node, &key);
                    striped.record(node, &key);
                    prop_assert_eq!(single.owner(&key), striped.owner(&key));
                }
                IdxOp::Forget(k) => {
                    let key = format!("k{k}");
                    single.forget(&key);
                    striped.forget(&key);
                    prop_assert_eq!(single.owner(&key), None);
                    prop_assert_eq!(striped.owner(&key), None);
                }
                IdxOp::Drain(node) => {
                    // Both walks return sorted keys, so drains compare
                    // exactly even though stripe visit order differs.
                    prop_assert_eq!(single.drain_node(node), striped.drain_node(node));
                }
            }
            prop_assert_eq!(single.len(), striped.len());
            for node in 0..4 {
                prop_assert_eq!(single.count_of(node), striped.count_of(node));
                prop_assert_eq!(single.keys_of(node), striped.keys_of(node));
            }
        }
    }

    /// A sharded cache is exactly `n` independent single-shard caches of
    /// `capacity / n` bytes with keys routed by ring hash: same hit/miss
    /// results, same evicted keys in the same order, same rejections,
    /// same residency and counters — eviction and accounting semantics
    /// are per-shard, and the stripes add nothing else.
    #[test]
    fn nvme_sharded_equals_routed_singles(
        capacity in 256u64..4096,
        shards in 2usize..=8,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let sharded = NvmeCache::sharded(capacity, shards);
        let singles: Vec<NvmeCache> = (0..shards)
            .map(|_| NvmeCache::new(capacity / shards as u64))
            .collect();
        let route = |key: &str| key_hash(key) as usize % shards;
        for op in ops {
            match op {
                Op::Insert(k, size) => {
                    let key = format!("k{k}");
                    let data = Bytes::from(vec![0x5A; size as usize]);
                    let evicted = sharded.insert(&key, data.clone());
                    let expected = singles[route(&key)].insert(&key, data);
                    prop_assert_eq!(evicted, expected);
                }
                Op::Get(k) => {
                    let key = format!("k{k}");
                    let got = sharded.get(&key);
                    let expected = singles[route(&key)].get(&key);
                    prop_assert_eq!(
                        got.as_ref().map(|v| v.len()),
                        expected.as_ref().map(|v| v.len())
                    );
                }
                Op::Remove(k) => {
                    let key = format!("k{k}");
                    prop_assert_eq!(sharded.remove(&key), singles[route(&key)].remove(&key));
                }
            }
            prop_assert_eq!(sharded.len(), singles.iter().map(NvmeCache::len).sum::<usize>());
            prop_assert_eq!(
                sharded.resident_bytes(),
                singles.iter().map(NvmeCache::resident_bytes).sum::<u64>()
            );
        }
        let mut agg = NvmeStats::default();
        for s in singles.iter().map(NvmeCache::stats) {
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.evictions += s.evictions;
            agg.inserts += s.inserts;
            agg.resident_bytes += s.resident_bytes;
            agg.resident_objects += s.resident_objects;
        }
        prop_assert_eq!(sharded.stats(), agg);
        let mut keys: Vec<String> = singles.iter().flat_map(|c| c.keys()).collect();
        keys.sort_unstable();
        prop_assert_eq!(sharded.keys(), keys);
    }

    /// PFS read accounting is exact under arbitrary access sequences.
    #[test]
    fn pfs_read_accounting(accesses in prop::collection::vec(0u8..20, 0..100)) {
        let pfs = Pfs::in_memory();
        for i in 0..10u8 {
            pfs.stage(&format!("f{i}"), synth_bytes(&format!("f{i}"), 16));
        }
        let mut expected: std::collections::HashMap<u8, u64> = Default::default();
        for a in &accesses {
            let key = format!("f{a}");
            let got = pfs.read(&key);
            if *a < 10 {
                prop_assert!(got.is_some());
                *expected.entry(*a).or_insert(0) += 1;
            } else {
                prop_assert!(got.is_none());
            }
        }
        let total: u64 = expected.values().sum();
        prop_assert_eq!(pfs.total_reads(), total);
        for (k, v) in expected {
            prop_assert_eq!(pfs.reads_of(&format!("f{k}")), v);
        }
    }
}
