//! End-to-end exercises of the TCP backend with a toy protocol: echo
//! round trips, deadline behavior against silent peers, reconnect after
//! a server restart, backpressure, and the obs scrape path.

use ftc_hashring::NodeId;
use ftc_net::xport::Transport;
use ftc_net::RpcError;
use ftc_time::ClockHandle;
use ftc_wire::codec::CodecError;
use ftc_wire::codec::{put_str, Reader, Wire};
use ftc_wire::tcp::{scrape_obs, TcpConfig, TcpTransport};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Echo(String);

impl Wire for Echo {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Echo(r.string("echo")?))
    }
}

/// Reserve `n` distinct loopback ports by binding then dropping.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let held: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    held.iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn transport(addrs: &[SocketAddr]) -> TcpTransport<Echo, Echo> {
    let cfg = TcpConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_millis(20),
        ..TcpConfig::default()
    };
    TcpTransport::from_peer_list(addrs, cfg)
}

/// Serve `count` echo requests on a spawned thread, then stop.
fn echo_server(
    t: &TcpTransport<Echo, Echo>,
    node: NodeId,
    count: usize,
) -> std::thread::JoinHandle<()> {
    let listener = Transport::<Echo, Echo>::register(t, node).expect("bind server");
    std::thread::spawn(move || {
        let mut served = 0;
        while served < count {
            if let Some(inc) = listener.accept(Duration::from_millis(20)) {
                let reply = Echo(format!("{}:{}", inc.from(), inc.req().0));
                inc.reply(reply);
                served += 1;
            }
        }
    })
}

#[test]
fn echo_round_trips_over_real_sockets() {
    let addrs = free_addrs(1);
    let t = transport(&addrs);
    let h = echo_server(&t, NodeId(0), 3);
    let caller = t.caller(NodeId(7));
    for i in 0..3 {
        let resp = caller
            .call(NodeId(0), Echo(format!("m{i}")), Duration::from_secs(2))
            .expect("echo served");
        assert_eq!(resp, Echo(format!("n7:m{i}")));
    }
    h.join().expect("server thread");
}

#[test]
fn unknown_node_fails_fast_and_unbound_port_disconnects() {
    let addrs = free_addrs(1);
    let t = transport(&addrs);
    let caller = t.caller(NodeId(1));
    assert_eq!(
        caller
            .call(NodeId(9), Echo("x".into()), Duration::from_millis(200))
            .unwrap_err(),
        RpcError::UnknownNode(NodeId(9))
    );
    // Nothing listens on the reserved port: connection refused must map
    // into the failure-indicating side of the taxonomy.
    let err = caller
        .call(NodeId(0), Echo("x".into()), Duration::from_millis(500))
        .unwrap_err();
    assert!(err.indicates_failure(), "got {err:?}");
}

#[test]
fn accepted_but_never_served_request_times_out() {
    let addrs = free_addrs(1);
    let t = transport(&addrs);
    // Register the listener but never accept(): the connection and
    // handshake succeed, the request frame is written, no reply comes.
    let _listener = Transport::<Echo, Echo>::register(&t, NodeId(0)).expect("bind");
    let caller = t.caller(NodeId(1));
    let clock = ClockHandle::wall();
    let t0 = clock.now();
    let ttl = Duration::from_millis(300);
    let err = caller
        .call(NodeId(0), Echo("hang".into()), ttl)
        .unwrap_err();
    assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
    assert!(clock.since(t0) >= ttl, "must wait out the full deadline");
}

#[test]
fn client_reconnects_after_server_restart() {
    let addrs = free_addrs(1);
    let t = transport(&addrs);
    let h = echo_server(&t, NodeId(0), 1);
    let caller = t.caller(NodeId(3));
    caller
        .call(NodeId(0), Echo("a".into()), Duration::from_secs(2))
        .expect("first epoch");
    h.join().expect("server gone");
    // Server down: the pooled connection dies; calls fail with a
    // failure-indicating error rather than hanging forever.
    let err = caller
        .call(NodeId(0), Echo("b".into()), Duration::from_millis(800))
        .unwrap_err();
    assert!(err.indicates_failure(), "got {err:?}");
    // Server restarts on the same address: the next call must redial
    // transparently (reconnect-on-error) and succeed.
    let h2 = echo_server(&t, NodeId(0), 1);
    let mut ok = false;
    for _ in 0..20 {
        match caller.call(NodeId(0), Echo("c".into()), Duration::from_millis(500)) {
            Ok(resp) => {
                assert_eq!(resp, Echo("n3:c".into()));
                ok = true;
                break;
            }
            Err(_) => ClockHandle::wall().sleep(Duration::from_millis(25)),
        }
    }
    assert!(ok, "client never recovered after restart");
    h2.join().expect("second server");
}

#[test]
fn concurrent_callers_multiplex_one_connection() {
    let addrs = free_addrs(1);
    let t = transport(&addrs);
    let listener = Transport::<Echo, Echo>::register(&t, NodeId(0)).expect("bind");
    let server = std::thread::spawn(move || {
        let mut served = 0;
        while served < 40 {
            if let Some(inc) = listener.accept(Duration::from_millis(20)) {
                let reply = Echo(inc.req().0.clone());
                inc.reply(reply);
                served += 1;
            }
        }
    });
    let caller: Arc<dyn ftc_net::Caller<Echo, Echo>> = Arc::from(t.caller(NodeId(5)));
    let joins: Vec<_> = (0..4)
        .map(|w| {
            let caller = Arc::clone(&caller);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let msg = format!("w{w}-{i}");
                    let resp = caller
                        .call(NodeId(0), Echo(msg.clone()), Duration::from_secs(2))
                        .expect("served");
                    assert_eq!(resp.0, msg, "response matched to the wrong request");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("worker");
    }
    server.join().expect("server");
}

#[test]
fn obs_scrape_serves_exposition_text() {
    let addrs = free_addrs(1);
    let t = transport(&addrs);
    t.set_obs_handler(Arc::new(|| "ftc_up 1\n".to_string()));
    let _listener = Transport::<Echo, Echo>::register(&t, NodeId(0)).expect("bind");
    let text = scrape_obs(addrs[0], Duration::from_secs(1)).expect("scrape");
    assert_eq!(text, "ftc_up 1\n");
}
