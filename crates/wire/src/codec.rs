//! Hand-rolled binary codec — the serde stand-in for framed messages.
//!
//! The build environment is hermetic (no registry), so instead of serde +
//! bincode the wire format is written out by hand: big-endian fixed-width
//! integers, length-prefixed strings and byte arrays, one tag byte per
//! enum variant. The rules that keep decode safe against a hostile peer:
//!
//! * every length prefix is validated against the bytes *actually
//!   remaining* before any allocation — a frame that declares a 4 GiB
//!   string inside a 100-byte body fails with
//!   [`CodecError::Truncated`] without allocating;
//! * unknown tag bytes are typed errors ([`CodecError::BadTag`]), never
//!   panics;
//! * a message must consume its body exactly — trailing bytes are a
//!   protocol violation ([`CodecError::Trailing`]), because they mean
//!   the two sides disagree about the schema.

use std::fmt;
use std::sync::Arc;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// A field needed more bytes than the buffer holds.
    Truncated {
        /// Which field was being read.
        what: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// An enum tag byte matched no known variant.
    BadTag {
        /// Which enum was being read.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// Which field was being read.
        what: &'static str,
    },
    /// The message decoded cleanly but left bytes unconsumed.
    Trailing {
        /// How many bytes were left over.
        left: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what, needed, have } => {
                write!(f, "truncated {what}: needed {needed} bytes, have {have}")
            }
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag byte {tag:#04x}"),
            CodecError::BadUtf8 { what } => write!(f, "invalid utf-8 in {what}"),
            CodecError::Trailing { left } => write!(f, "{left} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A window into a shared frame body: the body's allocation plus an
/// offset/len span. Produced by [`Reader::view`] when the reader was
/// built over a shared buffer ([`Reader::new_shared`]) — the span
/// borrows the frame's own allocation, so decoding a large value field
/// costs zero copies. `ftc-core` converts this into its `ValueBuf`.
#[derive(Debug, Clone)]
pub struct ByteView {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl ByteView {
    /// A view owning a private copy of `bytes` (the fallback when the
    /// reader has no shared backing).
    pub fn copied(bytes: &[u8]) -> Self {
        ByteView {
            data: Arc::from(bytes),
            off: 0,
            len: bytes.len(),
        }
    }

    /// The underlying allocation and the span within it.
    pub fn into_parts(self) -> (Arc<[u8]>, usize, usize) {
        (self.data, self.off, self.len)
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Bounds-checked cursor over a received body.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding straight out of a shared frame body, the body's
    /// allocation — lets [`Reader::view`] hand out zero-copy spans.
    shared: Option<&'a Arc<[u8]>>,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            shared: None,
        }
    }

    /// A reader over a shared frame body; [`Reader::view`] spans will
    /// reference `buf`'s allocation instead of copying.
    pub fn new_shared(buf: &'a Arc<[u8]>) -> Self {
        Reader {
            buf: &buf[..],
            pos: 0,
            shared: Some(buf),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if n > self.remaining() {
            return Err(CodecError::Truncated {
                what,
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Big-endian u32.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let s = self.take(4, what)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Big-endian u64.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let s = self.take(8, what)?;
        Ok(u64::from_be_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Length-prefixed byte array. The declared length is checked against
    /// the remaining buffer *before* allocating, so a hostile length
    /// prefix cannot trigger a huge allocation.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, CodecError> {
        let len = self.u32(what)? as usize;
        // lint:allow(hot-path-alloc): the owned-Vec decoder is for
        // control-plane fields; value bodies go through `view()`.
        Ok(self.take(len, what)?.to_vec())
    }

    /// Length-prefixed byte array as a [`ByteView`]: zero-copy over the
    /// frame's allocation when the reader is shared-backed, one private
    /// copy otherwise. Same validate-before-allocate rule as
    /// [`bytes`](Self::bytes).
    pub fn view(&mut self, what: &'static str) -> Result<ByteView, CodecError> {
        let len = self.u32(what)? as usize;
        let start = self.pos;
        let slice = self.take(len, what)?;
        match self.shared {
            Some(arc) => Ok(ByteView {
                data: Arc::clone(arc),
                off: start,
                len,
            }),
            None => Ok(ByteView::copied(slice)),
        }
    }

    /// Length-prefixed UTF-8 string, same allocation rule as
    /// [`bytes`](Self::bytes).
    pub fn string(&mut self, what: &'static str) -> Result<String, CodecError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw).map_err(|_| CodecError::BadUtf8 { what })
    }

    /// Error unless the buffer was consumed exactly.
    pub fn finish(&self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            left => Err(CodecError::Trailing { left }),
        }
    }
}

/// Append a big-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a length-prefixed byte array.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A message that can cross the TCP fabric: symmetric encode/decode with
/// typed errors. Implemented by `ftc-core` for `CacheRequest` /
/// `CacheResponse` (including the detector's `Ping`/`Pong`).
pub trait Wire: Sized {
    /// Append this message's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one message from the reader (may leave bytes behind —
    /// use [`decode_all`](Self::decode_all) at frame boundaries).
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encode into a fresh buffer.
    fn encode_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a full frame body: the message must consume it exactly.
    fn decode_all(body: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }

    /// Decode a full frame body held in a shared allocation: byte-array
    /// fields read via [`Reader::view`] become zero-copy windows into
    /// `body` instead of private copies. Same exact-consumption rule as
    /// [`decode_all`](Self::decode_all).
    fn decode_all_shared(body: &Arc<[u8]>) -> Result<Self, CodecError> {
        let mut r = Reader::new_shared(body);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        out.push(7u8);
        put_u32(&mut out, 0xdead_beef);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "épochs/µ.dat");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut r = Reader::new(&out);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert_eq!(r.u32("a").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.string("p").unwrap(), "épochs/µ.dat");
        assert_eq!(r.bytes("d").unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn hostile_length_prefix_fails_before_allocating() {
        // Declares a 4 GiB payload inside an 8-byte buffer: must fail
        // with Truncated, not attempt the allocation.
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX);
        out.extend_from_slice(&[0; 4]);
        let mut r = Reader::new(&out);
        let err = r.bytes("blob").unwrap_err();
        assert_eq!(
            err,
            CodecError::Truncated {
                what: "blob",
                needed: u32::MAX as usize,
                have: 4
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut r = Reader::new(&[1, 2, 3]);
        let _ = r.u8("x").unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::Trailing { left: 2 });
    }

    #[test]
    fn shared_view_references_the_frame_allocation() {
        let mut out = Vec::new();
        put_str(&mut out, "key");
        put_bytes(&mut out, &[9, 8, 7, 6]);
        let body: Arc<[u8]> = Arc::from(out);

        let mut r = Reader::new_shared(&body);
        assert_eq!(r.string("k").unwrap(), "key");
        let view = r.view("v").unwrap();
        r.finish().unwrap();
        assert_eq!(view.as_slice(), &[9, 8, 7, 6]);
        let (arc, off, len) = view.into_parts();
        assert!(Arc::ptr_eq(&arc, &body), "shared view must not copy");
        assert_eq!(&arc[off..off + len], &[9, 8, 7, 6]);

        // An unshared reader still produces a correct (copied) view.
        let mut r = Reader::new(&body[..]);
        let _ = r.string("k").unwrap();
        let view = r.view("v").unwrap();
        assert_eq!(view.as_slice(), &[9, 8, 7, 6]);
        let (arc, _, _) = view.into_parts();
        assert!(!Arc::ptr_eq(&arc, &body));
    }

    #[test]
    fn view_hostile_length_prefix_fails_before_allocating() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX);
        out.extend_from_slice(&[0; 2]);
        let body: Arc<[u8]> = Arc::from(out);
        let mut r = Reader::new_shared(&body);
        let err = r.view("blob").unwrap_err();
        assert_eq!(
            err,
            CodecError::Truncated {
                what: "blob",
                needed: u32::MAX as usize,
                have: 2
            }
        );
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xff, 0xfe]);
        let mut r = Reader::new(&out);
        assert_eq!(
            r.string("path").unwrap_err(),
            CodecError::BadUtf8 { what: "path" }
        );
    }
}
