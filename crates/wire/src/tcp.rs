//! The real-socket backend: `ftc_net::Transport` over TCP on the wall
//! clock.
//!
//! ## Shape
//!
//! One [`TcpTransport`] holds the peer map (`NodeId` → socket address)
//! and mints both sides:
//!
//! * [`Transport::register`] binds the node's listed address and runs an
//!   accept loop; each accepted connection is handshaken
//!   ([`crate::frame::Hello`]) and then serviced by a reader thread that
//!   decodes request frames into [`Inbound`]s for the server loop.
//!   Replies travel back over the same connection, matched by frame id.
//! * [`Transport::caller`] returns a pooled client: one connection per
//!   destination peer, dialed lazily, multiplexed by frame id, torn down
//!   and re-dialed on the next call after any error
//!   (*reconnect-on-error*).
//!
//! ## Backpressure and deadlines
//!
//! Client sends go through a per-peer bounded queue drained by a writer
//! thread. When the queue is full, `call` blocks for queue space only
//! until its own deadline, then gives up — so a stalled peer surfaces as
//! [`RpcError::Timeout`], feeding the failure detector exactly like a
//! silent peer in the simulated fabric. Torn connections surface as
//! [`RpcError::Disconnected`] (also detector-feeding); addresses missing
//! from the peer map as [`RpcError::UnknownNode`]. This is the whole
//! mapping from socket reality onto the retry-policy error taxonomy.
//!
//! ## Clocks
//!
//! This backend is wall-clock by construction: sockets do not virtualize.
//! Protocol-visible waits still flow through a [`ClockHandle::wall`]
//! handle so deadline arithmetic reads the same as the rest of the
//! stack; the few genuinely socket-bound waits are annotated
//! `lint:allow(wall-clock)` where they bypass it.

use crate::codec::Wire;
use crate::frame::{
    read_frame, read_frame_shared, read_hello, send_hello, write_frame, FrameError, FrameKind,
    Hello, SharedFrame, DEFAULT_MAX_FRAME,
};
use ftc_hashring::NodeId;
use ftc_net::xport::{Caller, Inbound, Listener, Transport};
use ftc_net::RpcError;
use ftc_time::ClockHandle;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// The node id anonymous connections (observability scrapers) present
/// in their hello.
pub const ANON_NODE: NodeId = NodeId(u32::MAX);

/// Tunables for the TCP backend.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Dial + handshake deadline.
    pub connect_timeout: Duration,
    /// Socket read/write poll granularity: how often blocked I/O wakes
    /// to check stop/dead flags, and the cap on one write's stall.
    pub io_timeout: Duration,
    /// Accept-loop poll interval while no connection is pending.
    pub accept_poll: Duration,
    /// Frame length cap, both directions.
    pub max_frame: u32,
    /// Per-peer outbound queue depth; pushes beyond it block until the
    /// caller's deadline (backpressure).
    pub queue_cap: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_millis(50),
            accept_poll: Duration::from_millis(10),
            max_frame: DEFAULT_MAX_FRAME,
            queue_cap: 256,
        }
    }
}

/// Renders the observability exposition a server offers over
/// [`FrameKind::ObsScrape`].
pub type ObsHandler = Arc<dyn Fn() -> String + Send + Sync>;

struct Shared {
    peers: HashMap<NodeId, SocketAddr>,
    cfg: TcpConfig,
    clock: ClockHandle,
    obs: RwLock<Option<ObsHandler>>,
}

/// TCP implementation of [`Transport`]. Cheap to clone; all clones share
/// the peer map and config.
pub struct TcpTransport<Req, Resp> {
    shared: Arc<Shared>,
    _marker: PhantomData<fn() -> (Req, Resp)>,
}

impl<Req, Resp> Clone for TcpTransport<Req, Resp> {
    fn clone(&self) -> Self {
        TcpTransport {
            shared: Arc::clone(&self.shared),
            _marker: PhantomData,
        }
    }
}

impl<Req, Resp> TcpTransport<Req, Resp> {
    /// A transport over an explicit peer map.
    pub fn new(peers: HashMap<NodeId, SocketAddr>, cfg: TcpConfig) -> Self {
        TcpTransport {
            shared: Arc::new(Shared {
                peers,
                cfg,
                clock: ClockHandle::wall(),
                obs: RwLock::new(None),
            }),
            _marker: PhantomData,
        }
    }

    /// A transport where `addrs[i]` is node `i` — the layout the
    /// `--peers` flag produces.
    pub fn from_peer_list(addrs: &[SocketAddr], cfg: TcpConfig) -> Self {
        let peers = addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (NodeId(i as u32), *a))
            .collect();
        Self::new(peers, cfg)
    }

    /// The address a node is listed at, if any.
    pub fn peer(&self, node: NodeId) -> Option<SocketAddr> {
        self.shared.peers.get(&node).copied()
    }

    /// Number of listed peers.
    pub fn peer_count(&self) -> usize {
        self.shared.peers.len()
    }

    /// Install the exposition renderer served to [`FrameKind::ObsScrape`]
    /// connections (typically Prometheus text from `ftc-obs`).
    pub fn set_obs_handler(&self, h: ObsHandler) {
        *self.shared.obs.write() = Some(h);
    }
}

/// Parse a `host:port,host:port,…` peer list; index = node id.
pub fn parse_peers(s: &str) -> io::Result<Vec<SocketAddr>> {
    s.split(',')
        .map(|part| {
            part.trim().parse::<SocketAddr>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("bad peer `{part}`: {e}"),
                )
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Small plumbing shared by both sides.
// ---------------------------------------------------------------------------

fn lock_poisoned<T>(e: PoisonError<T>) -> T {
    e.into_inner()
}

/// Blocking-read adapter over a socket whose read timeout is the poll
/// granularity: timeouts at any byte become flag checks instead of
/// errors, so [`read_frame`] sees an honest blocking stream yet the
/// thread still notices `stop` within one poll interval.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            // ordering: Relaxed - stop is a shutdown latch; one extra poll
            // interval of lag is harmless.
            if self.stop.load(Ordering::Relaxed) {
                return Err(io::Error::from(io::ErrorKind::ConnectionAborted));
            }
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                other => return other,
            }
        }
    }
}

/// Serialized write half of one connection.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    max_frame: u32,
    /// Reusable encode buffer for [`ConnWriter::write_msg`]: one
    /// allocation per connection instead of one per frame on the reply
    /// path. Grows to the largest message seen and stays there.
    scratch: Mutex<Vec<u8>>,
}

impl ConnWriter {
    fn new(stream: TcpStream, max_frame: u32) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
            max_frame,
            scratch: Mutex::new(Vec::new()),
        }
    }

    fn write(&self, kind: FrameKind, id: u64, body: &[u8]) -> Result<(), FrameError> {
        let mut s = self.stream.lock();
        write_frame(&mut *s, kind, id, body, self.max_frame)
    }

    /// Encode `msg` into the connection's scratch buffer and write the
    /// frame — no per-frame body allocation.
    fn write_msg<M: Wire>(&self, kind: FrameKind, id: u64, msg: &M) -> Result<(), FrameError> {
        let mut buf = self.scratch.lock();
        buf.clear();
        msg.encode(&mut buf);
        let mut s = self.stream.lock();
        write_frame(&mut *s, kind, id, &buf, self.max_frame)
    }
}

fn io_to_rpc(e: &io::Error, to: NodeId) -> RpcError {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => RpcError::Timeout { to },
        _ => RpcError::Disconnected(to),
    }
}

// ---------------------------------------------------------------------------
// Bounded outbound queue (client side backpressure).
// ---------------------------------------------------------------------------

struct OutFrame {
    kind: FrameKind,
    id: u64,
    body: Vec<u8>,
}

struct QueueState {
    buf: VecDeque<OutFrame>,
    closed: bool,
}

/// Hand-rolled bounded MPSC: `Condvar` instead of a channel so the push
/// side can honor the *caller's* deadline rather than a queue-global one.
struct BoundedQueue {
    state: StdMutex<QueueState>,
    cap: usize,
    space: Condvar,
    items: Condvar,
}

enum PushError {
    /// Still full at the deadline — the peer is not draining.
    Full,
    /// Queue closed (connection died).
    Closed,
}

impl BoundedQueue {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            state: StdMutex::new(QueueState {
                // lint:allow(bounded-queue): `cap` is enforced at
                // push_deadline — this deque never exceeds it.
                buf: VecDeque::new(),
                closed: false,
            }),
            cap,
            space: Condvar::new(),
            items: Condvar::new(),
        }
    }

    /// Enqueue, blocking for space until `deadline` (wall instants from
    /// the transport's clock handle).
    fn push_deadline(
        &self,
        item: OutFrame,
        deadline: Instant,
        clock: &ClockHandle,
    ) -> Result<(), PushError> {
        let mut g = self.state.lock().unwrap_or_else(lock_poisoned);
        loop {
            if g.closed {
                return Err(PushError::Closed);
            }
            if g.buf.len() < self.cap {
                g.buf.push_back(item);
                self.items.notify_one();
                return Ok(());
            }
            let left = deadline.saturating_duration_since(clock.now());
            if left.is_zero() {
                return Err(PushError::Full);
            }
            let (ng, _timed_out) = self
                .space
                .wait_timeout(g, left)
                .unwrap_or_else(lock_poisoned);
            g = ng;
        }
    }

    /// Dequeue for the writer thread; `None` once closed and drained.
    fn pop(&self) -> Option<OutFrame> {
        let mut g = self.state.lock().unwrap_or_else(lock_poisoned);
        loop {
            if let Some(item) = g.buf.pop_front() {
                self.space.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.items.wait(g).unwrap_or_else(lock_poisoned);
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(lock_poisoned).closed = true;
        self.space.notify_all();
        self.items.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Client side: pooled, multiplexed connections.
// ---------------------------------------------------------------------------

struct PeerConn<Resp> {
    to: NodeId,
    dead: AtomicBool,
    queue: BoundedQueue,
    pending: Mutex<HashMap<u64, mpsc::SyncSender<Result<Resp, RpcError>>>>,
    stream: TcpStream,
}

impl<Resp> PeerConn<Resp> {
    fn is_dead(&self) -> bool {
        // ordering: Relaxed - dead is a one-way latch; a stale read only
        // delays reconnect by one call.
        self.dead.load(Ordering::Relaxed)
    }

    /// Tear the connection down: close the queue, wake the socket, and
    /// fail every in-flight call with `Disconnected` so the detector
    /// hears about it immediately instead of waiting out TTLs.
    fn kill(&self) {
        // ordering: Relaxed - latch; threads re-check under their own
        // locks before acting.
        if self.dead.swap(true, Ordering::Relaxed) {
            return;
        }
        self.queue.close();
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let waiters: Vec<_> = self.pending.lock().drain().collect();
        for (_, tx) in waiters {
            let _ = tx.send(Err(RpcError::Disconnected(self.to)));
        }
    }
}

type Slot<Resp> = Arc<Mutex<Option<Arc<PeerConn<Resp>>>>>;

struct TcpCaller<Req, Resp> {
    me: NodeId,
    shared: Arc<Shared>,
    slots: Mutex<HashMap<NodeId, Slot<Resp>>>,
    next_id: AtomicU64,
    _marker: PhantomData<fn(Req)>,
}

impl<Req, Resp> TcpCaller<Req, Resp>
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    fn slot(&self, to: NodeId) -> Slot<Resp> {
        Arc::clone(self.slots.lock().entry(to).or_default())
    }

    /// Dial + handshake + spawn the reader and writer threads.
    fn dial(&self, to: NodeId, addr: SocketAddr) -> Result<Arc<PeerConn<Resp>>, RpcError> {
        let cfg = &self.shared.cfg;
        let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)
            .map_err(|e| io_to_rpc(&e, to))?;
        stream.set_nodelay(true).map_err(|e| io_to_rpc(&e, to))?;
        stream
            .set_read_timeout(Some(cfg.connect_timeout))
            .map_err(|e| io_to_rpc(&e, to))?;
        stream
            .set_write_timeout(Some(cfg.io_timeout))
            .map_err(|e| io_to_rpc(&e, to))?;
        let mut hs = &stream;
        send_hello(&mut hs, self.me).map_err(|_| RpcError::Disconnected(to))?;
        let hello: Hello = read_hello(&mut hs).map_err(|_| RpcError::Disconnected(to))?;
        if hello.node != to {
            // The peer map pointed at a live FT-Cache node, but the wrong
            // one — treat as unreachable rather than talk to an impostor.
            return Err(RpcError::Disconnected(to));
        }
        stream
            .set_read_timeout(Some(cfg.io_timeout))
            .map_err(|e| io_to_rpc(&e, to))?;

        let conn = Arc::new(PeerConn {
            to,
            dead: AtomicBool::new(false),
            queue: BoundedQueue::new(cfg.queue_cap),
            pending: Mutex::new(HashMap::new()),
            stream: stream.try_clone().map_err(|e| io_to_rpc(&e, to))?,
        });

        let writer_stream = stream.try_clone().map_err(|e| io_to_rpc(&e, to))?;
        let writer = ConnWriter::new(writer_stream, cfg.max_frame);
        let wconn = Arc::clone(&conn);
        thread::Builder::new()
            .name(format!("wire-cli-w-{to}"))
            .spawn(move || {
                while let Some(f) = wconn.queue.pop() {
                    if writer.write(f.kind, f.id, &f.body).is_err() {
                        break;
                    }
                }
                wconn.kill();
            })
            .map_err(|e| io_to_rpc(&e, to))?;

        let rconn = Arc::clone(&conn);
        let max_frame = cfg.max_frame;
        thread::Builder::new()
            .name(format!("wire-cli-r-{to}"))
            .spawn(move || {
                let mut r = PatientReader {
                    stream: &stream,
                    stop: &rconn.dead,
                };
                // Any read failure — torn stream, oversized or malformed
                // frame — ends the loop and the connection; the pool
                // redials on the next call. Bodies arrive in a shared
                // allocation so a large Data reply decodes zero-copy.
                while let Ok(frame) = read_frame_shared(&mut r, max_frame) {
                    if frame.kind != FrameKind::Response {
                        // Servers only ever send responses on this
                        // connection; anything else is a protocol break.
                        break;
                    }
                    let waiter = rconn.pending.lock().remove(&frame.id);
                    if let Some(tx) = waiter {
                        let out = match Resp::decode_all_shared(&frame.body) {
                            Ok(v) => Ok(v),
                            // Every decode failure maps to the same
                            // verdict: the stream cannot be trusted.
                            // lint:allow(err-catchall)
                            Err(_) => Err(RpcError::Disconnected(rconn.to)),
                        };
                        let undecodable = out.is_err();
                        let _ = tx.send(out);
                        if undecodable {
                            // Schema disagreement: nothing later on this
                            // stream can be trusted either.
                            break;
                        }
                    }
                }
                rconn.kill();
            })
            .map_err(|e| io_to_rpc(&e, to))?;

        Ok(conn)
    }

    fn conn_for(&self, to: NodeId, addr: SocketAddr) -> Result<Arc<PeerConn<Resp>>, RpcError> {
        let slot = self.slot(to);
        let mut g = slot.lock();
        if let Some(c) = g.as_ref() {
            if !c.is_dead() {
                return Ok(Arc::clone(c));
            }
        }
        let fresh = self.dial(to, addr)?;
        *g = Some(Arc::clone(&fresh));
        Ok(fresh)
    }
}

impl<Req, Resp> Caller<Req, Resp> for TcpCaller<Req, Resp>
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    fn node(&self) -> NodeId {
        self.me
    }

    fn clock(&self) -> ClockHandle {
        self.shared.clock.clone()
    }

    fn call(&self, to: NodeId, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        let clock = &self.shared.clock;
        let deadline = clock.deadline(timeout);
        let addr = match self.shared.peers.get(&to) {
            Some(a) => *a,
            None => return Err(RpcError::UnknownNode(to)),
        };
        let conn = self.conn_for(to, addr)?;

        // ordering: Relaxed - ids only need uniqueness, not ordering.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel::<Result<Resp, RpcError>>(1);
        conn.pending.lock().insert(id, tx);
        if conn.is_dead() {
            // The connection died between pool lookup and registration;
            // kill() may have missed our waiter, so clean up ourselves.
            conn.pending.lock().remove(&id);
            return Err(RpcError::Disconnected(to));
        }

        let push = conn.queue.push_deadline(
            OutFrame {
                kind: FrameKind::Request,
                id,
                body: req.encode_vec(),
            },
            deadline,
            clock,
        );
        match push {
            Ok(()) => {}
            Err(PushError::Full) => {
                conn.pending.lock().remove(&id);
                return Err(RpcError::Timeout { to });
            }
            Err(PushError::Closed) => {
                conn.pending.lock().remove(&id);
                return Err(RpcError::Disconnected(to));
            }
        }

        let left = deadline.saturating_duration_since(clock.now());
        match rx.recv_timeout(left) {
            Ok(out) => out,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                conn.pending.lock().remove(&id);
                Err(RpcError::Timeout { to })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                conn.pending.lock().remove(&id);
                Err(RpcError::Disconnected(to))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server side: accept loop + per-connection readers.
// ---------------------------------------------------------------------------

struct TcpInbound<Req, Resp> {
    from: NodeId,
    served_by: NodeId,
    id: u64,
    req: Req,
    writer: Arc<ConnWriter>,
    _marker: PhantomData<fn(Resp)>,
}

impl<Req, Resp> Inbound<Req, Resp> for TcpInbound<Req, Resp>
where
    Req: Send + 'static,
    Resp: Wire + Send + 'static,
{
    fn from(&self) -> NodeId {
        self.from
    }

    fn served_by(&self) -> NodeId {
        self.served_by
    }

    fn req(&self) -> &Req {
        &self.req
    }

    fn reply(self: Box<Self>, resp: Resp) {
        // A failed reply write means the client is gone; it will observe
        // the outcome as Disconnected/Timeout and retry elsewhere. The
        // body encodes into the connection's scratch buffer — no
        // per-reply allocation.
        let _ = self.writer.write_msg(FrameKind::Response, self.id, &resp);
    }
}

/// Server half minted by [`Transport::register`]: owns the accept loop
/// and hands decoded requests to the serve loop via [`Listener::accept`].
struct TcpListenerHandle<Req, Resp> {
    node: NodeId,
    rx: ftc_time::ClockReceiver<Box<dyn Inbound<Req, Resp>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl<Req, Resp> Listener<Req, Resp> for TcpListenerHandle<Req, Resp>
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    fn node(&self) -> NodeId {
        self.node
    }

    fn accept(&self, timeout: Duration) -> Option<Box<dyn Inbound<Req, Resp>>> {
        self.rx.recv_timeout(timeout).ok()
    }

    fn backlog(&self) -> usize {
        self.rx.len()
    }
}

impl<Req, Resp> Drop for TcpListenerHandle<Req, Resp> {
    fn drop(&mut self) {
        // ordering: Relaxed - shutdown latch, polled by accept/conn loops.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// One accepted server-side connection: handshake, then decode request
/// frames until the stream dies or the listener stops.
fn serve_conn<Req, Resp>(
    stream: TcpStream,
    node: NodeId,
    shared: &Shared,
    tx: &ftc_time::ClockSender<Box<dyn Inbound<Req, Resp>>>,
    stop: &AtomicBool,
) -> io::Result<()>
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    let cfg = &shared.cfg;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.connect_timeout))?;
    stream.set_write_timeout(Some(cfg.io_timeout))?;
    let mut hs = &stream;
    let hello = match read_hello(&mut hs) {
        Ok(h) => h,
        // Port scanners, wrong-version peers: close without a word, the
        // typed error already told *this* side everything.
        // lint:allow(err-catchall)
        Err(_) => return Ok(()),
    };
    send_hello(&mut hs, node).map_err(|e| match e {
        crate::frame::HandshakeError::Io(e) => e,
        _ => io::Error::from(io::ErrorKind::InvalidData),
    })?;
    stream.set_read_timeout(Some(cfg.io_timeout))?;

    let writer = Arc::new(ConnWriter::new(stream.try_clone()?, cfg.max_frame));
    let mut r = PatientReader {
        stream: &stream,
        stop,
    };
    loop {
        let frame: SharedFrame = match read_frame_shared(&mut r, cfg.max_frame) {
            Ok(f) => f,
            // Peer went away or sent a malformed frame: either way the
            // conversation is over. lint:allow(err-catchall)
            Err(_) => return Ok(()),
        };
        match frame.kind {
            FrameKind::Request => match Req::decode_all_shared(&frame.body) {
                Ok(req) => {
                    let inbound: Box<dyn Inbound<Req, Resp>> = Box::new(TcpInbound {
                        from: hello.node,
                        served_by: node,
                        id: frame.id,
                        req,
                        writer: Arc::clone(&writer),
                        _marker: PhantomData,
                    });
                    if tx.send(inbound).is_err() {
                        return Ok(());
                    }
                }
                // Undecodable request: schema disagreement, drop the
                // connection so the client redials and re-handshakes.
                // lint:allow(err-catchall)
                Err(_) => return Ok(()),
            },
            FrameKind::ObsScrape => {
                let text = shared.obs.read().clone().map(|h| h()).unwrap_or_default();
                if writer
                    .write(FrameKind::ObsText, frame.id, text.as_bytes())
                    .is_err()
                {
                    return Ok(());
                }
            }
            FrameKind::Response | FrameKind::ObsText => return Ok(()),
        }
    }
}

impl<Req, Resp> Transport<Req, Resp> for TcpTransport<Req, Resp>
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
{
    fn clock(&self) -> ClockHandle {
        self.shared.clock.clone()
    }

    fn register(&self, node: NodeId) -> io::Result<Box<dyn Listener<Req, Resp>>> {
        let addr = self.shared.peers.get(&node).copied().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("node {node} has no address in the peer map"),
            )
        })?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = self.shared.clock.channel::<Box<dyn Inbound<Req, Resp>>>();
        let stop = Arc::new(AtomicBool::new(false));

        let shared = Arc::clone(&self.shared);
        let astop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name(format!("wire-srv-accept-{node}"))
            .spawn(move || {
                loop {
                    // ordering: Relaxed - shutdown latch.
                    if astop.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let shared = Arc::clone(&shared);
                            let tx = tx.clone();
                            let cstop = Arc::clone(&astop);
                            let spawned = thread::Builder::new()
                                .name(format!("wire-srv-conn-{node}"))
                                .spawn(move || {
                                    let _ =
                                        serve_conn::<Req, Resp>(stream, node, &shared, &tx, &cstop);
                                });
                            if spawned.is_err() {
                                // Out of threads: drop the connection; the
                                // client sees Disconnected and retries.
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            // Socket-bound idle wait: the accept loop never
                            // runs under virtual time, and routing this nap
                            // through a ClockHandle would only pretend it
                            // could. lint:allow(wall-clock)
                            thread::sleep(shared.cfg.accept_poll);
                        }
                        // Listener socket itself failed (fd torn down,
                        // EMFILE storm): the node is done accepting.
                        // lint:allow(err-catchall)
                        Err(_) => break,
                    }
                }
            })?;

        Ok(Box::new(TcpListenerHandle {
            node,
            rx,
            stop,
            accept_thread: Some(accept_thread),
        }))
    }

    fn caller(&self, me: NodeId) -> Box<dyn Caller<Req, Resp>> {
        Box::new(TcpCaller::<Req, Resp> {
            me,
            shared: Arc::clone(&self.shared),
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            _marker: PhantomData,
        })
    }
}

/// Dial `addr` and fetch its observability exposition text (the
/// `--prom` output served over [`FrameKind::ObsScrape`]).
pub fn scrape_obs(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut s = &stream;
    send_hello(&mut s, ANON_NODE).map_err(|e| match e {
        crate::frame::HandshakeError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    })?;
    let _hello = read_hello(&mut s).map_err(|e| match e {
        crate::frame::HandshakeError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    })?;
    write_frame(&mut s, FrameKind::ObsScrape, 0, b"", DEFAULT_MAX_FRAME)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if frame.kind != FrameKind::ObsText {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "peer answered scrape with a non-obs frame",
        ));
    }
    String::from_utf8(frame.body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 exposition"))
}
