//! Length-prefixed framing and the versioned connection handshake.
//!
//! ## Frame layout
//!
//! ```text
//! ┌─────────────┬──────────┬────────────┬───────────────────────┐
//! │ len: u32 BE │ kind: u8 │ id: u64 BE │ body: (len - 9) bytes │
//! └─────────────┴──────────┴────────────┴───────────────────────┘
//! ```
//!
//! `len` counts everything after itself (kind + id + body), so a frame
//! occupies `4 + len` bytes on the wire. `id` matches a response to its
//! request over a multiplexed connection. A declared `len` above the
//! negotiated cap is rejected *before any allocation or body read*
//! ([`FrameError::Oversized`]) and the connection is torn down — frames
//! after a framing error cannot be trusted.
//!
//! ## Handshake
//!
//! Each side opens with 9 bytes: `magic "FTCW"` + `version: u8` +
//! `node: u32 BE`. A magic or version mismatch is a typed
//! [`HandshakeError`]; the connection never proceeds to frames.

use crate::codec::CodecError;
use ftc_hashring::NodeId;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Handshake magic: identifies an FT-Cache wire peer.
pub const MAGIC: [u8; 4] = *b"FTCW";

/// Wire protocol version; bumped on any frame- or codec-layer change.
pub const WIRE_VERSION: u8 = 1;

/// Default cap on `len`: generous for cache values, small enough that a
/// hostile length prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Bytes of the post-`len` header (kind + id).
pub const HEADER_TAIL: usize = 1 + 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A request body (client → server).
    Request = 1,
    /// A response body (server → client), `id` echoing the request.
    Response = 2,
    /// An observability scrape: empty body, server replies with
    /// [`FrameKind::ObsText`] over the same connection.
    ObsScrape = 3,
    /// Prometheus exposition text answering an [`FrameKind::ObsScrape`].
    ObsText = 4,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::ObsScrape),
            4 => Some(FrameKind::ObsText),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the body is.
    pub kind: FrameKind,
    /// Request/response correlation id.
    pub id: u64,
    /// The undecoded body bytes.
    pub body: Vec<u8>,
}

/// One decoded frame whose body sits in a shared allocation, so message
/// decode (`Wire::decode_all_shared`) can hand out zero-copy views into
/// it instead of copying value fields. The hot read/serve paths use this;
/// [`Frame`] remains for callers that want an owned body.
#[derive(Debug, Clone)]
pub struct SharedFrame {
    /// What the body is.
    pub kind: FrameKind,
    /// Request/response correlation id.
    pub id: u64,
    /// The undecoded body bytes, shared.
    pub body: Arc<[u8]>,
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// Socket-level failure (includes EOF *inside* a frame, which
    /// surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The declared length exceeds the negotiated cap. Detected before
    /// any body read or allocation.
    Oversized {
        /// The length the peer declared.
        declared: u32,
        /// The cap in force.
        cap: u32,
    },
    /// The declared length cannot even hold the kind + id header.
    Runt {
        /// The length the peer declared.
        declared: u32,
    },
    /// Unknown [`FrameKind`] byte.
    BadKind(u8),
    /// The body failed message decode (reported by callers that decode
    /// in place).
    Codec(CodecError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Oversized { declared, cap } => {
                write!(f, "frame declares {declared} bytes, cap is {cap}")
            }
            FrameError::Runt { declared } => {
                write!(
                    f,
                    "frame declares {declared} bytes, below the 9-byte header"
                )
            }
            FrameError::BadKind(b) => write!(f, "unknown frame kind {b:#04x}"),
            FrameError::Codec(e) => write!(f, "frame body: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Codec(e)
    }
}

/// Read exactly `buf.len()` bytes; `Ok(false)` means clean EOF before
/// the first byte (only meaningful at a frame boundary).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, io::Error> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof)),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read and validate a frame header: `(kind, id, body_len)`. Oversized
/// and runt declarations fail before any body read or allocation.
fn read_frame_header(r: &mut impl Read, cap: u32) -> Result<(FrameKind, u64, usize), FrameError> {
    let mut len4 = [0u8; 4];
    if !read_full(r, &mut len4)? {
        return Err(FrameError::Closed);
    }
    let declared = u32::from_be_bytes(len4);
    if declared > cap {
        return Err(FrameError::Oversized { declared, cap });
    }
    if (declared as usize) < HEADER_TAIL {
        return Err(FrameError::Runt { declared });
    }
    let mut tail = [0u8; HEADER_TAIL];
    if !read_full(r, &mut tail)? {
        return Err(FrameError::Io(io::Error::from(
            io::ErrorKind::UnexpectedEof,
        )));
    }
    let kind = FrameKind::from_u8(tail[0]).ok_or(FrameError::BadKind(tail[0]))?;
    let id = u64::from_be_bytes([
        tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7], tail[8],
    ]);
    Ok((kind, id, declared as usize - HEADER_TAIL))
}

/// Read one frame. A declared length over `cap` (or under the header
/// size) fails without reading or allocating the body; the stream is
/// then desynchronized and the caller must drop the connection.
pub fn read_frame(r: &mut impl Read, cap: u32) -> Result<Frame, FrameError> {
    let (kind, id, body_len) = read_frame_header(r, cap)?;
    let mut body = vec![0u8; body_len];
    if !body.is_empty() && !read_full(r, &mut body)? {
        return Err(FrameError::Io(io::Error::from(
            io::ErrorKind::UnexpectedEof,
        )));
    }
    Ok(Frame { kind, id, body })
}

/// [`read_frame`], but the body lands directly in a shared allocation so
/// downstream decode can expose value fields as zero-copy views — the
/// body is never re-copied between the socket and the cache/client.
pub fn read_frame_shared(r: &mut impl Read, cap: u32) -> Result<SharedFrame, FrameError> {
    let (kind, id, body_len) = read_frame_header(r, cap)?;
    let mut body: Arc<[u8]> = vec![0u8; body_len].into();
    if body_len > 0 {
        // A fresh Arc is unique, so get_mut always succeeds; the guard
        // exists only to avoid an unwrap on the hot path.
        if let Some(slice) = Arc::get_mut(&mut body) {
            if !read_full(r, slice)? {
                return Err(FrameError::Io(io::Error::from(
                    io::ErrorKind::UnexpectedEof,
                )));
            }
        }
    }
    Ok(SharedFrame { kind, id, body })
}

/// Write one frame and flush. Refuses to emit a frame over `cap` — the
/// peer would tear the connection down on receipt anyway.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    id: u64,
    body: &[u8],
    cap: u32,
) -> Result<(), FrameError> {
    let len = (HEADER_TAIL + body.len()) as u64;
    if len > u64::from(cap) {
        return Err(FrameError::Oversized {
            declared: len.min(u64::from(u32::MAX)) as u32,
            cap,
        });
    }
    let mut head = [0u8; 4 + HEADER_TAIL];
    head[..4].copy_from_slice(&(len as u32).to_be_bytes());
    head[4] = kind as u8;
    head[5..].copy_from_slice(&id.to_be_bytes());
    w.write_all(&head)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// The 9-byte connection opener each side sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The peer's wire protocol version.
    pub version: u8,
    /// The peer's node id (`NodeId(u32::MAX)` for anonymous clients,
    /// e.g. observability scrapers).
    pub node: NodeId,
}

/// Why the handshake failed.
#[derive(Debug)]
pub enum HandshakeError {
    /// Socket-level failure or mid-handshake EOF.
    Io(io::Error),
    /// The peer did not open with [`MAGIC`] — not an FT-Cache peer.
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion {
        /// The version byte the peer sent.
        got: u8,
        /// The version this side speaks.
        want: u8,
    },
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::Io(e) => write!(f, "handshake io: {e}"),
            HandshakeError::BadMagic(m) => write!(f, "bad handshake magic {m:02x?}"),
            HandshakeError::BadVersion { got, want } => {
                write!(f, "peer speaks wire version {got}, this side speaks {want}")
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<io::Error> for HandshakeError {
    fn from(e: io::Error) -> Self {
        HandshakeError::Io(e)
    }
}

/// Send this side's hello.
pub fn send_hello(w: &mut impl Write, node: NodeId) -> Result<(), HandshakeError> {
    let mut buf = [0u8; 9];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4] = WIRE_VERSION;
    buf[5..].copy_from_slice(&node.0.to_be_bytes());
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read and validate the peer's hello.
pub fn read_hello(r: &mut impl Read) -> Result<Hello, HandshakeError> {
    let mut buf = [0u8; 9];
    if !read_full(r, &mut buf).map_err(HandshakeError::Io)? {
        return Err(HandshakeError::Io(io::Error::from(
            io::ErrorKind::UnexpectedEof,
        )));
    }
    let magic = [buf[0], buf[1], buf[2], buf[3]];
    if magic != MAGIC {
        return Err(HandshakeError::BadMagic(magic));
    }
    let version = buf[4];
    if version != WIRE_VERSION {
        return Err(HandshakeError::BadVersion {
            got: version,
            want: WIRE_VERSION,
        });
    }
    let node = NodeId(u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]));
    Ok(Hello { version, node })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            FrameKind::Request,
            42,
            b"hello",
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        let f = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(f.kind, FrameKind::Request);
        assert_eq!(f.id, 42);
        assert_eq!(f.body, b"hello");
    }

    #[test]
    fn empty_body_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::ObsScrape, 7, b"", DEFAULT_MAX_FRAME).unwrap();
        let f = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(f.kind, FrameKind::ObsScrape);
        assert!(f.body.is_empty());
    }

    #[test]
    fn shared_frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            FrameKind::Response,
            9,
            b"payload",
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        let f = read_frame_shared(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(f.kind, FrameKind::Response);
        assert_eq!(f.id, 9);
        assert_eq!(&f.body[..], b"payload");

        let mut empty = Vec::new();
        write_frame(&mut empty, FrameKind::ObsScrape, 1, b"", DEFAULT_MAX_FRAME).unwrap();
        let f = read_frame_shared(&mut Cursor::new(&empty), DEFAULT_MAX_FRAME).unwrap();
        assert!(f.body.is_empty());

        assert!(matches!(
            read_frame_shared(&mut Cursor::new(&[]), DEFAULT_MAX_FRAME).unwrap_err(),
            FrameError::Closed
        ));
    }

    #[test]
    fn clean_eof_is_closed() {
        let err = read_frame(&mut Cursor::new(&[]), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, FrameError::Closed));
    }

    #[test]
    fn truncated_length_prefix_is_io_error() {
        // Two of the four length bytes: mid-header EOF, not a clean close.
        let err = read_frame(&mut Cursor::new(&[0u8, 0]), DEFAULT_MAX_FRAME).unwrap_err();
        match err {
            FrameError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected Io(UnexpectedEof), got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_length_fails_without_allocating() {
        // Declares u32::MAX bytes; decode must reject on the cap check
        // alone — the 5-byte input could never back the allocation.
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.push(1);
        let err = read_frame(&mut Cursor::new(&buf), 1024).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Oversized {
                declared: u32::MAX,
                cap: 1024
            }
        ));
    }

    #[test]
    fn runt_and_bad_kind_are_typed() {
        let mut buf = 3u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0; 3]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1024).unwrap_err(),
            FrameError::Runt { declared: 3 }
        ));

        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 0, b"", DEFAULT_MAX_FRAME).unwrap();
        buf[4] = 0xee; // corrupt the kind byte
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf), 1024).unwrap_err(),
            FrameError::BadKind(0xee)
        ));
    }

    #[test]
    fn write_refuses_over_cap() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, FrameKind::Response, 0, &[0; 100], 64).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { cap: 64, .. }));
        assert!(buf.is_empty(), "nothing may hit the wire");
    }

    #[test]
    fn hello_round_trip_and_rejections() {
        let mut buf = Vec::new();
        send_hello(&mut buf, NodeId(3)).unwrap();
        let h = read_hello(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(
            h,
            Hello {
                version: WIRE_VERSION,
                node: NodeId(3)
            }
        );

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_hello(&mut Cursor::new(&bad_magic)).unwrap_err(),
            HandshakeError::BadMagic(_)
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = WIRE_VERSION + 9;
        match read_hello(&mut Cursor::new(&bad_version)).unwrap_err() {
            HandshakeError::BadVersion { got, want } => {
                assert_eq!(got, WIRE_VERSION + 9);
                assert_eq!(want, WIRE_VERSION);
            }
            other => panic!("expected BadVersion, got {other:?}"),
        }

        assert!(matches!(
            read_hello(&mut Cursor::new(&buf[..5])).unwrap_err(),
            HandshakeError::Io(_)
        ));
    }
}
