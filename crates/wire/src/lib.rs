//! # ftc-wire — the real-socket deployment layer for FT-Cache
//!
//! Everything below `ftc-core` so far has been one OS process: threads
//! over the simulated fabric in `ftc-net`, or DES processes in
//! `ftc-sim`. This crate is the third backend — actual TCP — behind the
//! same [`ftc_net::Transport`] trait family, so the protocol stack
//! (client retry loop, hash-ring placement, failure detector, recovery
//! engine) runs unmodified over real sockets.
//!
//! Three layers, bottom-up:
//!
//! * [`codec`] — a hand-rolled binary codec ([`codec::Wire`]) with typed
//!   decode errors; `ftc-core` implements it for `CacheRequest` /
//!   `CacheResponse`.
//! * [`frame`] — length-prefixed frames (`len u32 | kind u8 | id u64 |
//!   body`) with a hard length cap, plus the versioned `FTCW` handshake.
//! * [`tcp`] — [`tcp::TcpTransport`]: server accept loops and pooled,
//!   multiplexed client connections with bounded outbound queues,
//!   reconnect-on-error, and deadlines mapped onto
//!   [`ftc_net::RpcError`].
//!
//! The `ftc-server` / `ftc-client` binaries in the workspace root are
//! thin shells over this crate plus `ftc-core`.

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod tcp;

pub use codec::{ByteView, CodecError, Reader, Wire};
pub use frame::{
    Frame, FrameError, FrameKind, HandshakeError, Hello, SharedFrame, DEFAULT_MAX_FRAME, MAGIC,
    WIRE_VERSION,
};
pub use tcp::{parse_peers, scrape_obs, ObsHandler, TcpConfig, TcpTransport, ANON_NODE};
