//! Property tests for the analysis layer: vector-clock algebra laws, the
//! exhaustive FSM checker at the CI depth, and an end-to-end race-detector
//! regression over a real traced cluster run.

use ftc_analysis::{check_fsm, check_trace, forge_stale_epoch_read, FsmConfig, RaceKind};
use ftc_core::{Cluster, ClusterConfig, FtPolicy};
use ftc_hashring::NodeId;
use ftc_net::VClock;
use proptest::prelude::*;

/// Build a clock from up to 6 actor components (0 entries stay absent,
/// keeping the canonical form).
fn clock_from(parts: &[u64]) -> VClock {
    let mut c = VClock::new();
    for (actor, &v) in parts.iter().enumerate() {
        c.set(actor as u32, v);
    }
    c
}

fn clock_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..4, 0..6)
}

proptest! {
    #[test]
    fn merge_is_commutative(a in clock_strategy(), b in clock_strategy()) {
        let (ca, cb) = (clock_from(&a), clock_from(&b));
        let mut ab = ca.clone();
        ab.merge(&cb);
        let mut ba = cb.clone();
        ba.merge(&ca);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in clock_strategy(),
        b in clock_strategy(),
        c in clock_strategy(),
    ) {
        let (ca, cb, cc) = (clock_from(&a), clock_from(&b), clock_from(&c));
        let mut left = ca.clone();
        left.merge(&cb);
        left.merge(&cc);
        let mut bc = cb.clone();
        bc.merge(&cc);
        let mut right = ca.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent_and_upper_bound(a in clock_strategy(), b in clock_strategy()) {
        let (ca, cb) = (clock_from(&a), clock_from(&b));
        let mut m = ca.clone();
        m.merge(&cb);
        let mut again = m.clone();
        again.merge(&cb);
        prop_assert_eq!(&again, &m, "merge twice = merge once");
        prop_assert!(ca.leq(&m), "merge is an upper bound of the left");
        prop_assert!(cb.leq(&m), "merge is an upper bound of the right");
    }

    #[test]
    fn happens_before_is_a_strict_partial_order(
        a in clock_strategy(),
        b in clock_strategy(),
        c in clock_strategy(),
    ) {
        let (ca, cb, cc) = (clock_from(&a), clock_from(&b), clock_from(&c));
        // Irreflexive.
        prop_assert!(!ca.happens_before(&ca));
        // Asymmetric.
        if ca.happens_before(&cb) {
            prop_assert!(!cb.happens_before(&ca));
        }
        // Transitive.
        if ca.happens_before(&cb) && cb.happens_before(&cc) {
            prop_assert!(ca.happens_before(&cc));
        }
        // Trichotomy-of-relations: exactly one of {a<b, b<a, a==b,
        // concurrent} holds.
        let relations = usize::from(ca.happens_before(&cb))
            + usize::from(cb.happens_before(&ca))
            + usize::from(ca == cb)
            + usize::from(ca.concurrent(&cb));
        prop_assert_eq!(relations, 1);
    }

    #[test]
    fn tick_strictly_advances(a in clock_strategy(), actor in 0u32..8) {
        let before = clock_from(&a);
        let mut after = before.clone();
        after.tick(actor);
        prop_assert!(before.happens_before(&after));
        prop_assert_eq!(after.get(actor), before.get(actor) + 1);
    }
}

#[test]
fn fsm_checker_at_ci_depth_is_clean() {
    // The same configuration CI runs: every interleaving of
    // {kill, revive, timeout, reply} over 3 nodes to depth 6.
    let report = check_fsm(&FsmConfig {
        nodes: 3,
        timeout_limit: 2,
        depth: 6,
        spurious: 1,
        sabotage: false,
    });
    assert!(report.passed(), "{report}");
    assert!(
        report.interleavings >= 100_000,
        "depth-6 exploration should cover >=100k interleavings, got {}",
        report.interleavings
    );
}

#[test]
fn fsm_checker_catches_sabotaged_spec() {
    let report = check_fsm(&FsmConfig {
        sabotage: true,
        ..FsmConfig::default()
    });
    assert!(
        !report.passed(),
        "a desynchronised spec must produce violations"
    );
}

/// Boot a real traced cluster, run reads across a failure + readmit, and
/// assert the happens-before checker finds nothing — then forge an
/// unsynchronised stale-epoch read into the same log and assert it is
/// caught. This is the seeded regression for the race detector.
#[test]
fn traced_cluster_run_is_race_free_until_forged() {
    let mut cfg = ClusterConfig::small(4, FtPolicy::RingRecache);
    cfg.ft.detector.ttl = std::time::Duration::from_millis(20);
    cfg.ft.detector.timeout_limit = 2;
    let cluster = Cluster::start(cfg).expect("boot cluster");
    cluster.network().enable_tracing();

    let paths = cluster.stage_dataset("train", 12, 64);
    let client = cluster.client(0);
    for p in &paths {
        client.read(p).expect("warm read");
    }
    cluster.kill(NodeId(2));
    for p in &paths {
        client.read(p).expect("read under failure");
    }
    cluster.revive(NodeId(0)).ok(); // NodeId(0) was never killed; no-op path
    for p in &paths {
        client.read(p).expect("read after revive");
    }

    let mut log = cluster
        .network()
        .tracer()
        .expect("tracing was enabled")
        .take();
    cluster.shutdown();

    assert!(
        log.iter().any(|r| matches!(
            r.kind,
            ftc_net::TraceEventKind::RingUpdate { joined: false, .. }
        )),
        "the kill must have produced a membership change in the trace"
    );
    let races = check_trace(&log);
    assert!(races.is_empty(), "clean run must be race-free: {races:?}");

    assert!(forge_stale_epoch_read(&mut log), "log has a RingUpdate");
    let races = check_trace(&log);
    assert!(
        races.iter().any(|r| r.kind == RaceKind::StaleEpochRead),
        "forged unsynchronised read must be flagged, got {races:?}"
    );
}
