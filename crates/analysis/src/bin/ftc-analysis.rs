//! CI driver for the analysis layers.
//!
//! ```text
//! ftc-analysis lint [--root DIR]
//! ftc-analysis fsm  [--nodes N] [--limit N] [--depth N] [--spurious N] [--sabotage]
//! ```
//!
//! Both subcommands exit non-zero when they find anything, so they slot
//! directly into CI next to `clippy -D warnings`. The happens-before
//! race detector runs over real traces via the `races` binary in
//! `ftc-bench` (it needs a cluster to trace).

use ftc_analysis::{check_fsm, lint_workspace, FsmConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn arg_value(flag: &str) -> Option<String> {
    std::env::args()
        .position(|a| a == flag)
        .and_then(|i| std::env::args().nth(i + 1))
}

fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    match arg_value(flag) {
        Some(v) => match v.parse() {
            Ok(parsed) => parsed,
            // lint:allow(err-catchall): any unparsable flag value exits
            // with the usage error; the error type is generic here.
            Err(_) => {
                eprintln!("invalid value {v:?} for {flag}");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1);
    match cmd.as_deref() {
        Some("lint") => run_lint(),
        Some("fsm") => run_fsm(),
        _ => {
            eprintln!("usage: ftc-analysis <lint|fsm> [options]");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = arg_value("--root")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn run_fsm() -> ExitCode {
    let config = FsmConfig {
        nodes: arg_or("--nodes", 3),
        timeout_limit: arg_or("--limit", 2),
        depth: arg_or("--depth", 6),
        spurious: arg_or("--spurious", 1),
        sabotage: std::env::args().any(|a| a == "--sabotage"),
    };
    let report = check_fsm(&config);
    println!("{report}");
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
