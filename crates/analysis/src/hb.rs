//! Happens-before race detection over traced runs.
//!
//! The tracer (`ftc_net::trace`) serialises *recording* through one mutex,
//! but causality is carried by the vector clocks: two records are ordered
//! only if one's clock happens-before the other's. Within one actor the
//! instrumentation ticks the actor's own component for every event, so a
//! correctly synchronised run yields a total order per actor — any pair of
//! same-actor records with *concurrent* clocks means the instrumentation
//! points were not actually synchronised (two threads mutated the actor's
//! view without an ordering edge), which is precisely a data race on that
//! shared state.
//!
//! The checker therefore scans same-actor pairs of *conflicting* kinds:
//!
//! * [`RaceKind::StaleEpochRead`] — a `ReadServed` under epoch `e`
//!   concurrent with the `RingUpdate` that retired epoch `e`;
//! * [`RaceKind::MembershipRace`] — a `Declare` concurrent with a
//!   `Readmit` of the same node (failover racing rejoin);
//! * [`RaceKind::EpochRegression`] — two `RingUpdate`s that are ordered
//!   by happens-before but whose epochs do not advance monotonically, or
//!   that are concurrent with each other;
//! * [`RaceKind::RetiredPolicyRead`] — a `PolicyRead` attributed to
//!   policy epoch `e` concurrent with the `PolicyChange` that retired
//!   `e` (a read served under recovery-policy assumptions the runtime
//!   controller had already switched away from).
//!
//! Clean chaos campaigns must produce zero findings;
//! [`forge_stale_epoch_read`] injects a synthetic unsynchronised record so
//! tests (and `races --inject`) can prove the detector actually fires.

use ftc_net::{TraceEventKind, TraceRecord};
use std::fmt;

/// The class of conflict a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// A read completed under a ring epoch concurrently retired.
    StaleEpochRead,
    /// A failure declaration concurrent with a re-admission of the node.
    MembershipRace,
    /// Ring epochs that fail to advance monotonically along
    /// happens-before (or membership updates concurrent with each other).
    EpochRegression,
    /// A read attributed to a policy epoch concurrently retired by the
    /// runtime policy controller.
    RetiredPolicyRead,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::StaleEpochRead => "stale-epoch-read",
            RaceKind::MembershipRace => "membership-race",
            RaceKind::EpochRegression => "epoch-regression",
            RaceKind::RetiredPolicyRead => "retired-policy-read",
        };
        f.write_str(s)
    }
}

/// One unordered conflicting pair found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// What kind of conflict this is.
    pub kind: RaceKind,
    /// `seq` of the first involved record (log append order).
    pub first_seq: u64,
    /// `seq` of the second involved record.
    pub second_seq: u64,
    /// Human-readable description of the pair.
    pub detail: String,
}

impl fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} between #{} and #{}: {}",
            self.kind, self.first_seq, self.second_seq, self.detail
        )
    }
}

/// Reconstruct the happens-before relation of `log` and return every
/// conflicting unordered pair.
///
/// Complexity is quadratic in the number of *state* events per actor
/// (message legs are filtered out first), which is ample for campaign
/// logs of tens of thousands of records.
pub fn check_trace(log: &[TraceRecord]) -> Vec<RaceFinding> {
    let mut findings = Vec::new();
    // Only state events participate in conflicts; message legs exist to
    // carry the clock edges.
    let state: Vec<&TraceRecord> = log
        .iter()
        .filter(|r| {
            !matches!(
                r.kind,
                TraceEventKind::MsgSend { .. }
                    | TraceEventKind::MsgRecv { .. }
                    | TraceEventKind::ReplySend { .. }
                    | TraceEventKind::ReplyRecv { .. }
            )
        })
        .collect();

    for (i, a) in state.iter().enumerate() {
        for b in &state[i + 1..] {
            if a.actor != b.actor {
                // Cross-actor views are independent by design (each
                // client converges on its own, as in the paper); only
                // same-actor shared state can race.
                continue;
            }
            if let Some(f) = conflict(a, b) {
                findings.push(f);
            }
        }
    }
    findings
}

/// The conflict relation on one same-actor record pair.
fn conflict(a: &TraceRecord, b: &TraceRecord) -> Option<RaceFinding> {
    use TraceEventKind as K;
    let concurrent = a.clock.concurrent(&b.clock);
    match (&a.kind, &b.kind) {
        // A read under epoch `e` must be ordered against the update that
        // retired `e` (both directions of the pair ordering in the log).
        (
            K::ReadServed { key, epoch, .. },
            K::RingUpdate {
                old_epoch, node, ..
            },
        )
        | (
            K::RingUpdate {
                old_epoch, node, ..
            },
            K::ReadServed { key, epoch, .. },
        ) if epoch == old_epoch && concurrent => Some(RaceFinding {
            kind: RaceKind::StaleEpochRead,
            first_seq: a.seq,
            second_seq: b.seq,
            detail: format!(
                "read of {key:?} under epoch {epoch} is concurrent with the \
                     membership change for {node} retiring that epoch \
                     ({} vs {})",
                a.clock, b.clock
            ),
        }),
        (K::Declare { node: d }, K::Readmit { node: r })
        | (K::Readmit { node: r }, K::Declare { node: d })
            if d == r && concurrent =>
        {
            Some(RaceFinding {
                kind: RaceKind::MembershipRace,
                first_seq: a.seq,
                second_seq: b.seq,
                detail: format!(
                    "declare and readmit of {d} are causally unordered ({} vs {})",
                    a.clock, b.clock
                ),
            })
        }
        (K::RingUpdate { new_epoch: ae, .. }, K::RingUpdate { old_epoch: bo, .. })
            if !concurrent && a.clock.happens_before(&b.clock) && bo < ae =>
        {
            Some(RaceFinding {
                kind: RaceKind::EpochRegression,
                first_seq: a.seq,
                second_seq: b.seq,
                detail: format!(
                    "membership update from epoch {bo} happens after the \
                     epoch already reached {ae}"
                ),
            })
        }
        // A read attributed to policy epoch `e` must be ordered against
        // the controller switch that retired `e`.
        (
            K::PolicyRead { key, policy_epoch },
            K::PolicyChange { old_epoch, .. },
        )
        | (
            K::PolicyChange { old_epoch, .. },
            K::PolicyRead { key, policy_epoch },
        ) if policy_epoch == old_epoch && concurrent => Some(RaceFinding {
            kind: RaceKind::RetiredPolicyRead,
            first_seq: a.seq,
            second_seq: b.seq,
            detail: format!(
                "read of {key:?} attributed to policy epoch {policy_epoch} is                      concurrent with the controller switch retiring that epoch                      ({} vs {})",
                a.clock, b.clock
            ),
        }),
        (K::RingUpdate { .. }, K::RingUpdate { .. }) if concurrent => Some(RaceFinding {
            kind: RaceKind::EpochRegression,
            first_seq: a.seq,
            second_seq: b.seq,
            detail: format!(
                "two membership updates on one actor are causally unordered \
                 ({} vs {})",
                a.clock, b.clock
            ),
        }),
        _ => None,
    }
}

/// Append a *forged* `ReadServed` record that is causally concurrent with
/// the first `RingUpdate` in `log`, reading under the epoch that update
/// retired — the exact bug the detector exists to catch (a read thread
/// consulting the placement without the lock while a failover thread
/// mutates it).
///
/// Returns `false` (and leaves `log` unchanged) when the log contains no
/// `RingUpdate` to race against.
pub fn forge_stale_epoch_read(log: &mut Vec<TraceRecord>) -> bool {
    let Some(upd) = log
        .iter()
        .find(|r| matches!(r.kind, TraceEventKind::RingUpdate { .. }))
        .cloned()
    else {
        return false;
    };
    let TraceEventKind::RingUpdate {
        node, old_epoch, ..
    } = upd.kind
    else {
        return false;
    };
    // Make the forged clock concurrent with the update's clock: drop one
    // tick of the actor's own component (so the update's clock is not ≤
    // it) and add a component the update never saw (so it is not ≤ the
    // update's clock).
    let mut clock = upd.clock.clone();
    let own = clock.get(upd.actor.0);
    clock.set(upd.actor.0, own.saturating_sub(1));
    clock.set(u32::MAX, 1);
    let seq = log.last().map_or(0, |r| r.seq + 1);
    log.push(TraceRecord {
        seq,
        actor: upd.actor,
        clock,
        kind: TraceEventKind::ReadServed {
            key: "<forged-unsynchronised-read>".to_owned(),
            owner: node,
            epoch: old_epoch,
        },
    });
    true
}

/// Append a *forged* `PolicyRead` record causally concurrent with the
/// first `PolicyChange` in `log`, attributed to the policy epoch that
/// change retired — a read served under a policy the controller had
/// already switched away from, without an ordering edge. Returns `false`
/// (log unchanged) when the log contains no `PolicyChange`.
pub fn forge_retired_policy_read(log: &mut Vec<TraceRecord>) -> bool {
    let Some(chg) = log
        .iter()
        .find(|r| matches!(r.kind, TraceEventKind::PolicyChange { .. }))
        .cloned()
    else {
        return false;
    };
    let TraceEventKind::PolicyChange { old_epoch, .. } = chg.kind else {
        return false;
    };
    // Same construction as forge_stale_epoch_read: drop one own tick,
    // add a component the switch never saw — concurrent both ways.
    let mut clock = chg.clock.clone();
    let own = clock.get(chg.actor.0);
    clock.set(chg.actor.0, own.saturating_sub(1));
    clock.set(u32::MAX, 1);
    let seq = log.last().map_or(0, |r| r.seq + 1);
    log.push(TraceRecord {
        seq,
        actor: chg.actor,
        clock,
        kind: TraceEventKind::PolicyRead {
            key: "<forged-retired-policy-read>".to_owned(),
            policy_epoch: old_epoch,
        },
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_hashring::NodeId;
    use ftc_net::{Tracer, VClock};

    fn ring_update(t: &Tracer, actor: NodeId, node: NodeId, old: u64) {
        t.record(
            actor,
            TraceEventKind::RingUpdate {
                node,
                old_epoch: old,
                new_epoch: old + 1,
                joined: false,
            },
        );
    }

    #[test]
    fn ordered_read_then_update_is_clean() {
        let t = Tracer::new();
        t.record(
            NodeId(100),
            TraceEventKind::ReadServed {
                key: "f".into(),
                owner: NodeId(1),
                epoch: 0,
            },
        );
        ring_update(&t, NodeId(100), NodeId(1), 0);
        assert!(check_trace(&t.take()).is_empty());
    }

    #[test]
    fn forged_concurrent_read_is_flagged() {
        let t = Tracer::new();
        ring_update(&t, NodeId(100), NodeId(1), 0);
        let mut log = t.take();
        assert!(forge_stale_epoch_read(&mut log));
        let findings = check_trace(&log);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, RaceKind::StaleEpochRead);
    }

    #[test]
    fn forge_needs_a_ring_update() {
        let mut log = Vec::new();
        assert!(!forge_stale_epoch_read(&mut log));
        assert!(log.is_empty());
    }

    #[test]
    fn ordered_policy_read_then_change_is_clean() {
        let t = Tracer::new();
        t.record(
            NodeId(100),
            TraceEventKind::PolicyRead {
                key: "f".into(),
                policy_epoch: 1,
            },
        );
        t.record(
            NodeId(100),
            TraceEventKind::PolicyChange {
                old_epoch: 1,
                new_epoch: 2,
            },
        );
        assert!(check_trace(&t.take()).is_empty());
    }

    #[test]
    fn forged_retired_policy_read_is_flagged() {
        let t = Tracer::new();
        t.record(
            NodeId(100),
            TraceEventKind::PolicyChange {
                old_epoch: 1,
                new_epoch: 2,
            },
        );
        let mut log = t.take();
        assert!(forge_retired_policy_read(&mut log));
        let findings = check_trace(&log);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, RaceKind::RetiredPolicyRead);
    }

    #[test]
    fn forge_retired_policy_read_needs_a_change() {
        let mut log = Vec::new();
        assert!(!forge_retired_policy_read(&mut log));
        assert!(log.is_empty());
    }

    #[test]
    fn cross_actor_events_never_conflict() {
        let t = Tracer::new();
        // Two clients each see epoch 0 retire — independently, which is
        // the system's design, not a race.
        ring_update(&t, NodeId(100), NodeId(1), 0);
        t.record(
            NodeId(101),
            TraceEventKind::ReadServed {
                key: "f".into(),
                owner: NodeId(1),
                epoch: 0,
            },
        );
        assert!(check_trace(&t.take()).is_empty());
    }

    #[test]
    fn concurrent_declare_and_readmit_is_flagged() {
        let t = Tracer::new();
        t.record(NodeId(100), TraceEventKind::Declare { node: NodeId(2) });
        let mut log = t.take();
        // Forge a readmit on the same actor with a clock the declare
        // never observed.
        let mut clock = VClock::new();
        clock.set(u32::MAX, 1);
        log.push(TraceRecord {
            seq: 1,
            actor: NodeId(100),
            clock,
            kind: TraceEventKind::Readmit { node: NodeId(2) },
        });
        let findings = check_trace(&log);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, RaceKind::MembershipRace);
    }

    #[test]
    fn epoch_regression_is_flagged() {
        let t = Tracer::new();
        ring_update(&t, NodeId(100), NodeId(1), 0);
        // A later (causally ordered) update claiming to start from a
        // stale epoch.
        t.record(
            NodeId(100),
            TraceEventKind::RingUpdate {
                node: NodeId(2),
                old_epoch: 0,
                new_epoch: 1,
                joined: false,
            },
        );
        let findings = check_trace(&t.take());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, RaceKind::EpochRegression);
    }
}
