//! # ftc-analysis — static and dynamic analyses for the FT-Cache repo
//!
//! Three layers, all offline (nothing here runs on the request path):
//!
//! * [`hb`] — a happens-before race detector. The transport piggybacks a
//!   vector clock on every message leg (see `ftc_net::trace`); upper
//!   layers record shared-state transitions (ring-epoch changes,
//!   detector suspicion/declare/revive, cache-map mutations). The
//!   checker replays the log, reconstructs the happens-before relation,
//!   and flags conflicting event pairs that are causally *unordered* —
//!   e.g. a read served under ring epoch `e` concurrent with the
//!   membership update that retired epoch `e`.
//! * [`fsm`] — an exhaustive bounded model checker for the failure-
//!   detector + recache lifecycle. It drives the *real*
//!   `ftc_core::FailureDetector` and `ftc_hashring::HashRing` through
//!   every interleaving of {timeout, reply, kill, revive} to a depth
//!   bound, asserting the chaos-harness invariants on every reachable
//!   state.
//! * [`lint`] — repo-specific source lints enforced in CI: no
//!   `unwrap`/`expect` outside test code, no `Err(_)` catch-alls in
//!   fallback logic without an explicit waiver, and a justification
//!   comment on every atomic-ordering choice.
//! * [`explore`] — a bounded-DFS schedule explorer over the virtual-time
//!   driver's recorded choice points (`ftc_time::with_virtual_sched`),
//!   with partial-order-reduction-lite pruning keyed on vector-clock
//!   execution fingerprints.
//! * [`linz`] — a Wing–Gong-style linearizability checker over the
//!   per-op histories the transport records (`ftc_net::history`), with
//!   an epoch-aware freshness rule and the documented hinted-handoff
//!   exception.
//! * [`replay`] — the one text format both chaos-campaign seeds and
//!   explored schedules serialize through for byte-identical replay.
//!
//! The `ftc-analysis` binary exposes `lint` and `fsm` subcommands for CI;
//! the `races` binary in `ftc-bench` feeds chaos-campaign traces through
//! [`hb::check_trace`]; the `chaos` binary's `--explore` / `--check-linz`
//! modes drive [`explore`] and [`linz`] over whole virtual clusters.

#![warn(missing_docs)]

pub mod explore;
pub mod fsm;
pub mod hb;
pub mod lint;
pub mod linz;
pub mod replay;

pub use explore::{bounded_dfs, fingerprint_trace, DfsConfig, DfsReport, RunOutcome, Violation};
pub use fsm::{check_fsm, FsmConfig, FsmReport};
pub use hb::{
    check_trace, forge_retired_policy_read, forge_stale_epoch_read, RaceFinding, RaceKind,
};
pub use lint::{lint_source, lint_workspace, LintFinding};
pub use linz::{
    check_history, forge_corrupt_read_value, forge_stale_linz_read, LinzReport, LinzViolation,
};
pub use replay::{Replayable, REPLAY_MAGIC};
