//! `Replayable` — one tiny text format for everything that replays.
//!
//! Two artifacts in this repo promise byte-identical reproduction: a
//! chaos campaign (replayed from its seed + options) and an explored
//! schedule (replayed from its recorded choice list). Both now
//! serialize through this helper instead of growing two ad-hoc
//! formats. The format is deliberately dumb — a header line naming the
//! artifact kind, then `key=value` lines, `#` comments ignored:
//!
//! ```text
//! ftc-replay v1 schedule
//! strategy=random-walk
//! seed=42
//! choices=1/3 0/2 2/4
//! ```
//!
//! Values may not contain newlines; keys may not contain `=`. That is
//! the entire spec.

use ftc_time::sched::ScheduleTrace;

/// Magic first-line prefix every replay file starts with.
pub const REPLAY_MAGIC: &str = "ftc-replay v1";

/// A parsed (or under-construction) replay descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replayable {
    /// Artifact kind, e.g. `"schedule"` or `"campaign"`.
    pub kind: String,
    /// Ordered `key=value` payload.
    pub fields: Vec<(String, String)>,
}

impl Replayable {
    /// An empty descriptor of the given kind.
    pub fn new(kind: &str) -> Self {
        Replayable {
            kind: kind.to_owned(),
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a field as any `FromStr` type.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Render to the text format (ends with a newline).
    pub fn to_text(&self) -> String {
        let mut out = format!("{REPLAY_MAGIC} {}\n", self.kind);
        for (k, v) in &self.fields {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    /// Parse the text format; errors carry a human-readable reason.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty replay file")?;
        let kind = header
            .strip_prefix(REPLAY_MAGIC)
            .ok_or_else(|| format!("bad header {header:?}: expected `{REPLAY_MAGIC} <kind>`"))?
            .trim();
        if kind.is_empty() {
            return Err(format!("header {header:?} names no artifact kind"));
        }
        let mut fields = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: {line:?} is not key=value", i + 2))?;
            fields.push((k.to_owned(), v.to_owned()));
        }
        Ok(Replayable {
            kind: kind.to_owned(),
            fields,
        })
    }

    /// Wrap a recorded schedule: kind `schedule`, the strategy that
    /// produced it, its seed, and the choice list.
    pub fn from_schedule(trace: &ScheduleTrace, strategy: &str, seed: u64) -> Self {
        Replayable::new("schedule")
            .field("strategy", strategy)
            .field("seed", seed)
            .field("choices", trace.render())
    }

    /// Decode the `choices` field back into a [`ScheduleTrace`].
    pub fn schedule_trace(&self) -> Result<ScheduleTrace, String> {
        let raw = self.get("choices").ok_or("no `choices` field")?;
        let mut choices = Vec::new();
        for tok in raw.split_whitespace() {
            let (c, n) = tok
                .split_once('/')
                .ok_or_else(|| format!("choice token {tok:?} is not chosen/of"))?;
            let c: u32 = c.parse().map_err(|_| format!("bad chosen in {tok:?}"))?;
            let n: u32 = n.parse().map_err(|_| format!("bad count in {tok:?}"))?;
            choices.push((c, n));
        }
        Ok(ScheduleTrace { choices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let r = Replayable::new("campaign")
            .field("seed", 7)
            .field("policy", "ring")
            .field("recovery", "proactive");
        let text = r.to_text();
        assert!(text.starts_with("ftc-replay v1 campaign\n"));
        let back = Replayable::parse(&text).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.get_parsed::<u64>("seed"), Some(7));
        assert_eq!(back.get("policy"), Some("ring"));
    }

    #[test]
    fn schedule_round_trips() {
        let trace = ScheduleTrace {
            choices: vec![(1, 3), (0, 2), (2, 4)],
        };
        let r = Replayable::from_schedule(&trace, "random-walk", 42);
        let back = Replayable::parse(&r.to_text()).expect("parse");
        assert_eq!(back.get("strategy"), Some("random-walk"));
        assert_eq!(back.schedule_trace().expect("trace"), trace);
    }

    #[test]
    fn parse_rejects_garbage_with_reasons() {
        assert!(Replayable::parse("").is_err());
        assert!(Replayable::parse("not a replay\nseed=1").is_err());
        assert!(Replayable::parse("ftc-replay v1 \n").is_err());
        let bad = Replayable::parse("ftc-replay v1 schedule\nno-equals-here");
        assert!(bad.expect_err("must fail").contains("key=value"));
        let r = Replayable::parse("ftc-replay v1 schedule\n# comment\n\nchoices=9/x").expect("ok");
        assert!(r.schedule_trace().is_err());
    }
}
