//! Linearizability checking for recorded cache histories.
//!
//! Input: the per-op history the transport records when
//! `Network::enable_history` is on (see `ftc_net::history`) — every
//! completed client read as an `[invoke, ret]` interval with value
//! digest, serving node and ring-epoch attribution; every server-side
//! value landing (replica write / recache push) and dataset staging as
//! a write; every client ring-epoch bump as a point event.
//!
//! Two specifications are checked:
//!
//! 1. **Register linearizability per key** (Wing–Gong / Porcupine
//!    style). Keys are independent registers, so the history partitions
//!    per key and each partition is searched separately: does a total
//!    order exist, consistent with real-time precedence (`a.ret <
//!    b.invoke` ⇒ a before b), in which every read returns the latest
//!    preceding write's digest? The search is the classic frontier
//!    recursion with memoization on (remaining-set, register value) and
//!    a per-key step budget; budget exhaustion is reported as
//!    *inconclusive*, never silently dropped.
//! 2. **Epoch freshness per client**: a read a client *invokes after*
//!    its own ring-epoch bump to `e` has completed must be attributed
//!    to epoch ≥ `e`. (The client stamps the invoke before taking the
//!    placement lock, so a completed bump is fully ordered before the
//!    epoch capture — the rule admits no false positives from in-flight
//!    bumps.) Reads served through the failover path are flagged
//!    `handoff` by the client and exempted — the documented
//!    hinted-handoff exception: a successor may serve a key while the
//!    membership change that re-homed it is still propagating.
//!
//! [`forge_stale_linz_read`] and [`forge_corrupt_read_value`] fabricate
//! one violation of each rule into a clean history — the self-tests
//! behind `chaos --check-linz --sabotage-linz`.

use ftc_net::{OpKind, OpRecord};
use std::collections::{BTreeMap, HashMap};

/// One specification breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinzViolation {
    /// A non-handoff read was attributed to an epoch older than one its
    /// own client had already finished bumping to before the invoke.
    StaleEpochRead {
        /// The reading client.
        actor: u32,
        /// The key read.
        key: String,
        /// Epoch the read was attributed to.
        read_epoch: u64,
        /// The newer epoch the client had already reached.
        bumped_epoch: u64,
    },
    /// No linearization of the key's reads/writes exists: some read
    /// returned a value no latest-preceding-write could explain.
    ValueNotLinearizable {
        /// The key whose partition has no valid linearization.
        key: String,
        /// Ops in the partition (for the report).
        ops: usize,
    },
}

impl std::fmt::Display for LinzViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinzViolation::StaleEpochRead {
                actor,
                key,
                read_epoch,
                bumped_epoch,
            } => write!(
                f,
                "stale-epoch read: client {actor} read {key} under epoch {read_epoch} after \
                 completing its bump to epoch {bumped_epoch}"
            ),
            LinzViolation::ValueNotLinearizable { key, ops } => write!(
                f,
                "value not linearizable: no legal linearization of the {ops} op(s) on {key}"
            ),
        }
    }
}

/// Checker output.
#[derive(Debug)]
pub struct LinzReport {
    /// Total ops checked.
    pub ops: usize,
    /// Distinct keys partitioned.
    pub keys: usize,
    /// Completed reads.
    pub reads: usize,
    /// Writes (including seeds).
    pub writes: usize,
    /// Epoch bumps.
    pub bumps: usize,
    /// Reads exempted by the handoff exception.
    pub handoff_exempt: usize,
    /// Key partitions whose search ran out of budget (not violations,
    /// but not proofs either).
    pub inconclusive: usize,
    /// Everything that failed.
    pub violations: Vec<LinzViolation>,
}

impl LinzReport {
    /// True when no violation was found (inconclusive partitions do not
    /// fail the check, but they are visible in the report).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for LinzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "linz: {} op(s) over {} key(s) ({} read / {} write / {} bump, {} handoff-exempt), \
             {} inconclusive, {} violation(s)",
            self.ops,
            self.keys,
            self.reads,
            self.writes,
            self.bumps,
            self.handoff_exempt,
            self.inconclusive,
            self.violations.len()
        )
    }
}

/// Search-step budget per key partition; hit ⇒ the partition is counted
/// inconclusive. Generous: the fast path resolves uniform-value
/// partitions without search, so only genuinely ambiguous histories
/// spend budget.
const SEARCH_BUDGET: usize = 200_000;

/// Check a recorded history against both specifications.
pub fn check_history(ops: &[OpRecord]) -> LinzReport {
    let mut report = LinzReport {
        ops: ops.len(),
        keys: 0,
        reads: 0,
        writes: 0,
        bumps: 0,
        handoff_exempt: 0,
        inconclusive: 0,
        violations: Vec::new(),
    };

    // ---- Rule 2: per-client epoch freshness -------------------------
    // Bumps per actor, sorted by completion time.
    let mut bumps_by_actor: HashMap<u32, Vec<(std::time::Duration, u64)>> = HashMap::new();
    for op in ops {
        if op.kind == OpKind::EpochBump {
            report.bumps += 1;
            bumps_by_actor
                .entry(op.actor.0)
                .or_default()
                .push((op.ret, op.epoch));
        }
    }
    for v in bumps_by_actor.values_mut() {
        v.sort_unstable();
    }
    for op in ops {
        if op.kind != OpKind::Read {
            continue;
        }
        report.reads += 1;
        if op.handoff {
            report.handoff_exempt += 1;
            continue;
        }
        let Some(bumps) = bumps_by_actor.get(&op.actor.0) else {
            continue;
        };
        // Highest epoch this client had fully bumped to before the read
        // was invoked. Strictly before: execution takes zero virtual
        // time, so a bump and a read stamped at the *same* instant are
        // concurrent (either execution order is possible) and impose no
        // freshness obligation.
        let reached = bumps
            .iter()
            .take_while(|&&(ret, _)| ret < op.invoke)
            .map(|&(_, e)| e)
            .max();
        if let Some(reached) = reached {
            if op.epoch < reached {
                report.violations.push(LinzViolation::StaleEpochRead {
                    actor: op.actor.0,
                    key: op.key.clone(),
                    read_epoch: op.epoch,
                    bumped_epoch: reached,
                });
            }
        }
    }

    // ---- Rule 1: per-key register linearizability -------------------
    let mut by_key: BTreeMap<&str, Vec<&OpRecord>> = BTreeMap::new();
    for op in ops {
        match op.kind {
            OpKind::Read => {
                by_key.entry(op.key.as_str()).or_default().push(op);
            }
            OpKind::Write => {
                report.writes += 1;
                by_key.entry(op.key.as_str()).or_default().push(op);
            }
            OpKind::EpochBump => {}
        }
    }
    report.keys = by_key.len();
    for (key, part) in &by_key {
        match check_register(part) {
            RegisterVerdict::Linearizable => {}
            RegisterVerdict::Violation => {
                report.violations.push(LinzViolation::ValueNotLinearizable {
                    key: (*key).to_owned(),
                    ops: part.len(),
                });
            }
            RegisterVerdict::Inconclusive => report.inconclusive += 1,
        }
    }
    report
}

enum RegisterVerdict {
    Linearizable,
    Violation,
    Inconclusive,
}

/// Decide one key partition. Fast path: when every write agrees on one
/// digest, a read is legal iff it returns that digest (any
/// interleaving works) — the overwhelmingly common case for a
/// content-addressed cache. Otherwise run the Wing–Gong search.
fn check_register(part: &[&OpRecord]) -> RegisterVerdict {
    let mut write_digests: Vec<u64> = part
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .map(|o| o.digest)
        .collect();
    write_digests.sort_unstable();
    write_digests.dedup();
    if write_digests.len() <= 1 {
        let legal = |r: &&&OpRecord| write_digests.first().is_some_and(|&d| d == r.digest);
        let all_match = part
            .iter()
            .filter(|o| o.kind == OpKind::Read)
            .all(|r| legal(&r));
        return if all_match {
            RegisterVerdict::Linearizable
        } else if write_digests.is_empty() {
            // Reads of a key nothing ever wrote: nothing to compare
            // against (the harness normally seeds staged values, so
            // this means history was enabled mid-run).
            RegisterVerdict::Inconclusive
        } else {
            RegisterVerdict::Violation
        };
    }
    // Multi-valued history: full search on intervals.
    let mut ops: Vec<&OpRecord> = part.to_vec();
    ops.sort_by_key(|o| (o.invoke, o.ret, o.id));
    let mut budget = SEARCH_BUDGET;
    let mut memo: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut remaining: Vec<bool> = vec![true; ops.len()];
    match search(&ops, &mut remaining, None, &mut budget, &mut memo) {
        Some(true) => RegisterVerdict::Linearizable,
        Some(false) => RegisterVerdict::Violation,
        None => RegisterVerdict::Inconclusive,
    }
}

/// Wing–Gong frontier recursion. `Some(true)` = a valid linearization
/// completes the remaining ops given the register holds `value`;
/// `None` = budget exhausted.
fn search(
    ops: &[&OpRecord],
    remaining: &mut Vec<bool>,
    value: Option<u64>,
    budget: &mut usize,
    memo: &mut std::collections::HashSet<u64>,
) -> Option<bool> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    if remaining.iter().all(|&r| !r) {
        return Some(true);
    }
    // Memoize on (remaining-set, value): revisiting the same frontier
    // with the same register contents cannot change the answer.
    let mut state_key: u64 = value.unwrap_or(u64::MAX).wrapping_mul(0x9e3779b97f4a7c15);
    for (i, &r) in remaining.iter().enumerate() {
        if r {
            state_key = state_key.wrapping_add(ftc_net::fnv1a(&(i as u64).to_le_bytes()));
        }
    }
    if !memo.insert(state_key) {
        return Some(false);
    }
    // An op may linearize next iff no other remaining op returned
    // before it was invoked.
    let min_ret = ops
        .iter()
        .enumerate()
        .filter(|&(i, _)| remaining[i])
        .map(|(_, o)| o.ret)
        .min()?;
    for i in 0..ops.len() {
        if !remaining[i] || ops[i].invoke > min_ret {
            continue;
        }
        let op = ops[i];
        let next_value = match op.kind {
            OpKind::Write => Some(op.digest),
            OpKind::Read => {
                if value != Some(op.digest) {
                    continue; // this read cannot go first here
                }
                value
            }
            OpKind::EpochBump => value,
        };
        remaining[i] = false;
        match search(ops, remaining, next_value, budget, memo) {
            Some(true) => {
                remaining[i] = true;
                return Some(true);
            }
            Some(false) => {}
            None => {
                remaining[i] = true;
                return None;
            }
        }
        remaining[i] = true;
    }
    Some(false)
}

/// Fabricate a stale-epoch read into a clean history: find a non-handoff
/// read invoked after its client finished an epoch bump, and re-attribute
/// it to an older epoch. Returns false when the history has no eligible
/// read (no bump ever completed before a read).
pub fn forge_stale_linz_read(ops: &mut [OpRecord]) -> bool {
    let mut bumps_by_actor: HashMap<u32, Vec<(std::time::Duration, u64)>> = HashMap::new();
    for op in ops.iter() {
        if op.kind == OpKind::EpochBump {
            bumps_by_actor
                .entry(op.actor.0)
                .or_default()
                .push((op.ret, op.epoch));
        }
    }
    for v in bumps_by_actor.values_mut() {
        v.sort_unstable();
    }
    for op in ops.iter_mut() {
        if op.kind != OpKind::Read || op.handoff {
            continue;
        }
        let Some(bumps) = bumps_by_actor.get(&op.actor.0) else {
            continue;
        };
        // Mirror the checker's strict-order rule: only a read invoked
        // strictly after a bump completed is forgeable.
        let reached = bumps
            .iter()
            .take_while(|&&(ret, _)| ret < op.invoke)
            .map(|&(_, e)| e)
            .max();
        if let Some(reached) = reached {
            if reached > 0 {
                op.epoch = reached - 1;
                return true;
            }
        }
    }
    false
}

/// Fabricate a wrong-value read: flip one read's digest so no write
/// explains it. Returns false on a history with no reads.
pub fn forge_corrupt_read_value(ops: &mut [OpRecord]) -> bool {
    for op in ops.iter_mut() {
        if op.kind == OpKind::Read {
            op.digest ^= 0xdead_beef_dead_beef;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_hashring::NodeId;
    use std::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn write(key: &str, at: u64, digest: u64) -> OpRecord {
        OpRecord {
            id: 0,
            actor: NodeId(9),
            kind: OpKind::Write,
            key: key.into(),
            node: NodeId(9),
            epoch: 0,
            invoke: ms(at),
            ret: ms(at),
            digest,
            handoff: false,
        }
    }

    fn read(key: &str, actor: u32, invoke: u64, ret: u64, epoch: u64, digest: u64) -> OpRecord {
        OpRecord {
            id: 0,
            actor: NodeId(actor),
            kind: OpKind::Read,
            key: key.into(),
            node: NodeId(1),
            epoch,
            invoke: ms(invoke),
            ret: ms(ret),
            digest,
            handoff: false,
        }
    }

    fn bump(actor: u32, at: u64, epoch: u64) -> OpRecord {
        OpRecord {
            id: 0,
            actor: NodeId(actor),
            kind: OpKind::EpochBump,
            key: String::new(),
            node: NodeId(0),
            epoch,
            invoke: ms(at),
            ret: ms(at),
            digest: 0,
            handoff: false,
        }
    }

    #[test]
    fn clean_single_value_history_passes() {
        let ops = vec![
            write("a", 0, 7),
            read("a", 100, 1, 2, 0, 7),
            read("a", 101, 3, 4, 0, 7),
            bump(100, 5, 1),
            read("a", 100, 6, 7, 1, 7),
        ];
        let r = check_history(&ops);
        assert!(r.passed(), "{r}: {:?}", r.violations);
        assert_eq!((r.reads, r.writes, r.bumps), (3, 1, 1));
    }

    #[test]
    fn stale_epoch_read_is_flagged_and_handoff_is_exempt() {
        let mut ops = vec![
            write("a", 0, 7),
            bump(100, 5, 3),
            read("a", 100, 6, 7, 2, 7), // invoked after the bump, older epoch
        ];
        let r = check_history(&ops);
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            &r.violations[0],
            LinzViolation::StaleEpochRead {
                actor: 100,
                read_epoch: 2,
                bumped_epoch: 3,
                ..
            }
        ));
        // The same read marked handoff is the documented exception.
        ops[2].handoff = true;
        let r = check_history(&ops);
        assert!(r.passed(), "{r}");
        assert_eq!(r.handoff_exempt, 1);
    }

    #[test]
    fn overlapping_read_may_keep_the_old_epoch() {
        // Read invoked at t=4, bump completes at t=5: overlap is legal.
        let ops = vec![
            write("a", 0, 7),
            read("a", 100, 4, 6, 2, 7),
            bump(100, 5, 3),
        ];
        assert!(check_history(&ops).passed());
    }

    #[test]
    fn wing_gong_accepts_overlapping_two_value_history() {
        // w(1) then w(2) concurrent with r→1 and a later r→2: legal.
        let ops = vec![
            write("a", 0, 1),
            OpRecord {
                invoke: ms(10),
                ret: ms(20),
                ..write("a", 0, 2)
            },
            read("a", 100, 11, 14, 0, 1), // overlaps w(2): may precede it
            read("a", 100, 30, 31, 0, 2),
        ];
        let r = check_history(&ops);
        assert!(r.passed(), "{r}: {:?}", r.violations);
    }

    #[test]
    fn wing_gong_rejects_value_from_the_past() {
        // w(1) completes, then w(2) completes, then a read returns 1:
        // real-time order forbids it.
        let ops = vec![
            write("a", 0, 1),
            write("a", 10, 2),
            read("a", 100, 20, 21, 0, 1),
        ];
        let r = check_history(&ops);
        assert_eq!(r.violations.len(), 1, "{r}");
        assert!(matches!(
            &r.violations[0],
            LinzViolation::ValueNotLinearizable { ops: 3, .. }
        ));
    }

    #[test]
    fn forges_break_clean_histories() {
        let mut ops = vec![
            write("a", 0, 7),
            bump(100, 5, 1),
            read("a", 100, 6, 8, 1, 7),
        ];
        assert!(check_history(&ops).passed());
        assert!(forge_stale_linz_read(&mut ops));
        assert!(!check_history(&ops).passed());

        let mut ops = vec![write("a", 0, 7), read("a", 100, 1, 2, 0, 7)];
        assert!(check_history(&ops).passed());
        assert!(forge_corrupt_read_value(&mut ops));
        let r = check_history(&ops);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn read_of_unwritten_key_is_inconclusive_not_violating() {
        let ops = vec![read("ghost", 100, 1, 2, 0, 5)];
        let r = check_history(&ops);
        assert!(r.passed());
        assert_eq!(r.inconclusive, 1);
    }
}
