//! Repo-specific source lints, enforced in CI alongside clippy.
//!
//! Seven rules, each encoding a convention this codebase adopted after
//! real incidents (panicking boot paths mid-campaign, a catch-all arm
//! that silently diverted NoFT reads to the PFS, an unjustified
//! `Relaxed` snapshot that could report more completions than
//! initiations, bare wall-clock calls that made whole subsystems
//! impossible to run deterministically in virtual time, recovery
//! tunables scattered as magic numbers that the runtime policy
//! controller could not govern, the unbounded serve queue that the
//! overload-armor PR replaced with admission control, and the per-hop
//! value copies that the zero-copy data-plane PR removed):
//!
//! * **unwrap** — no `.unwrap()` / `.expect(` in non-test library code.
//!   Typed errors or destructuring `let-else` are required; a deliberate
//!   exception carries a `lint:allow(unwrap)` comment on the same or one
//!   of the three preceding lines.
//! * **err-catchall** — no `Err(_) =>` / `Err(..) =>` arms: fallback
//!   logic must name the failure it handles, or carry a
//!   `lint:allow(err-catchall)` waiver comment.
//! * **ordering** — every atomic-ordering choice (`Ordering::Relaxed`,
//!   `::Acquire`, …) needs a justification comment containing
//!   `ordering:` within the ten preceding lines.
//! * **wall-clock** — in the protocol crates (`crates/net`, `crates/core`,
//!   `crates/storage`, `crates/obs`) and the umbrella `src/`, no direct
//!   `Instant::now(` / `SystemTime::now(` / `thread::sleep(` /
//!   `.elapsed(`: time must flow through the injected
//!   `ftc_time::ClockHandle`, so the entire stack stays runnable on a
//!   `VirtualClock`. The clock crate itself and the non-protocol crates
//!   (DES simulator, training driver, slurm shim, this crate) are exempt;
//!   a deliberate exception carries `lint:allow(wall-clock)`.
//! * **policy-const** — in `crates/core` and the umbrella `src/`, the
//!   recovery-policy tunables (`recache_rate`, `recache_burst`,
//!   `replication`) must not be initialised from numeric literals outside
//!   `policy.rs` / `controller.rs`: every tunable flows through the named
//!   defaults in `ftc_core::policy` or the controller's config surface,
//!   so a runtime policy switch governs *all* of them. A deliberate
//!   exception (e.g. a sabotage harness zeroing the bucket) carries
//!   `lint:allow(policy-const)`.
//! * **bounded-queue** — in the protocol ingress layers (`crates/net`,
//!   `crates/wire`, `crates/core`), no unbounded queue construction:
//!   `VecDeque::new(` and unbounded channel constructors (`channel()`,
//!   `unbounded()`) are banned outside test code. Overload protection is
//!   only as good as its weakest ingress point — one unbounded buffer
//!   upstream of the admission queue turns load-shedding into
//!   load-hiding. Every queue names its bound (`with_capacity` + an
//!   enforced cap, a bounded channel) or carries a
//!   `lint:allow(bounded-queue)` waiver stating what bounds it.
//! * **hot-path-alloc** — in the serving read-path files (client, server,
//!   single-flight, the value/cache/index/object stores, the wire codec),
//!   no copying constructors on value bytes: `.to_vec()`, `Vec::from(`,
//!   and path-qualified `::copy_from_slice(` are banned. The zero-copy
//!   data plane hands `ValueBuf` windows (refcount bumps) between tiers;
//!   one stray `.to_vec()` on the reply path silently reintroduces a
//!   per-read allocation that no test catches but every benchmark pays
//!   for. A deliberate copy (the `ValueBuf::to_vec` escape hatch itself,
//!   `detach`'s right-sizing copy, a conversion at a boundary that must
//!   own its bytes) carries a `lint:allow(hot-path-alloc)` waiver naming
//!   why the copy is required.
//!
//! There is no `syn` in this build environment, so the scanner is a
//! hand-rolled lexer: it strips line/block comments (keeping their text
//! for waiver and justification lookup), string/char literals (raw
//! strings included), and whole `#[cfg(test)]` items (brace-balanced), and
//! then pattern-matches on what remains. That is conservative enough for
//! this repo's idiom and has no false positives on the current tree —
//! which the `workspace_is_lint_clean` test pins.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`"unwrap"`, `"err-catchall"`, `"ordering"`,
    /// `"wall-clock"`, `"policy-const"`, `"bounded-queue"`,
    /// `"hot-path-alloc"`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lines a waiver comment may precede its waived code by.
const WAIVER_LOOKBACK: usize = 3;
/// Lines a justification comment may precede an atomic ordering by.
const ORDERING_LOOKBACK: usize = 10;

/// Path prefixes (repo-relative) where the `wall-clock` rule applies:
/// the protocol layers that must run identically on wall and virtual
/// clocks. `crates/time` (the clock layer itself) and the non-protocol
/// crates are deliberately absent.
const WALL_CLOCK_SCOPE: &[&str] = &[
    "crates/core/",
    "crates/net/",
    "crates/obs/",
    "crates/storage/",
    // The TCP backend is inherently wall-bound (socket deadlines, accept
    // polls) — but it is scoped, not exempted: every wall-clock call in
    // `crates/wire` must carry an explicit `lint:allow(wall-clock)`
    // waiver naming its reason, so new ones are a review decision.
    "crates/wire/",
    "src/",
];

/// Calls the `wall-clock` rule bans inside [`WALL_CLOCK_SCOPE`].
const WALL_CLOCK_CALLS: &[&str] = &[
    "Instant::now(",
    "SystemTime::now(",
    "thread::sleep(",
    ".elapsed(",
];

/// True when `label` (a repo-relative path) falls under the wall-clock
/// rule's scope.
fn wall_clock_scoped(label: &Path) -> bool {
    let l = label.to_string_lossy().replace('\\', "/");
    WALL_CLOCK_SCOPE.iter().any(|p| l.starts_with(p))
}

/// An aliased import of a banned wall-clock symbol — the evasion
/// `use std::time::Instant as I;` + `I::now()` that the plain substring
/// list misses. Collected in a pre-pass over the whole file (the alias
/// may be declared far from its call sites).
struct WallClockAlias {
    /// What the alias renames, for the finding message.
    origin: &'static str,
    /// The call pattern to scan for (`I::now(` / `nap(`).
    needle: String,
}

/// Scan `use` declarations for aliases of the banned wall-clock symbols.
/// Handles the two spellings that occur in practice: a single renamed
/// item (`use std::time::Instant as I;`) and a renamed item inside a
/// brace list (`use std::time::{Duration, Instant as I};`).
fn collect_wall_clock_aliases(code: &[String]) -> Vec<WallClockAlias> {
    const RENAMABLE: &[(&str, &[(&str, &str)])] = &[
        (
            "std::time::",
            &[
                ("Instant", "std::time::Instant"),
                ("SystemTime", "std::time::SystemTime"),
            ],
        ),
        ("std::thread::", &[("sleep", "std::thread::sleep")]),
    ];
    let mut out = Vec::new();
    for line in code {
        let Some(use_pos) = line.find("use ") else {
            continue;
        };
        let stmt = &line[use_pos + 4..];
        for &(module, items) in RENAMABLE {
            let Some(pos) = stmt.find(module) else {
                continue;
            };
            let rest = &stmt[pos + module.len()..];
            // Single item or brace list; either way the interesting part
            // ends at `}` or `;`.
            let list = rest
                .strip_prefix('{')
                .unwrap_or(rest)
                .split(['}', ';'])
                .next()
                .unwrap_or("");
            for item in list.split(',') {
                let Some((name, alias)) = item.split_once(" as ") else {
                    continue;
                };
                let (name, alias) = (name.trim(), alias.trim());
                if alias.is_empty() || !alias.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    continue;
                }
                if let Some(&(_, origin)) = items.iter().find(|&&(n, _)| n == name) {
                    let needle = if name == "sleep" {
                        format!("{alias}(")
                    } else {
                        format!("{alias}::now(")
                    };
                    out.push(WallClockAlias { origin, needle });
                }
            }
        }
    }
    out
}

/// First aliased wall-clock call on the line, with a left word boundary
/// so `kidnap(` never matches a `sleep as nap` alias.
fn find_aliased_call<'a>(code: &str, aliases: &'a [WallClockAlias]) -> Option<&'a WallClockAlias> {
    for a in aliases {
        let mut search = 0;
        while let Some(pos) = code[search..].find(a.needle.as_str()) {
            let start = search + pos;
            search = start + a.needle.len();
            if start > 0 {
                let prev = code.as_bytes()[start - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            return Some(a);
        }
    }
    None
}

/// Path prefixes (repo-relative) where the `bounded-queue` rule applies:
/// the layers requests flow through before admission control can shed
/// them. The umbrella `src/` and the non-protocol crates are exempt —
/// harness-side collections are workload-bounded by construction.
const BOUNDED_QUEUE_SCOPE: &[&str] = &["crates/core/", "crates/net/", "crates/wire/"];

/// Constructors the `bounded-queue` rule bans inside
/// [`BOUNDED_QUEUE_SCOPE`]: the unbounded deque, and unbounded channel
/// constructors (`ftc_time::ClockHandle::channel()`, `mpsc::channel()`,
/// crossbeam's `unbounded()`).
const BOUNDED_QUEUE_CALLS: &[&str] = &["VecDeque::new(", "channel()", "unbounded()"];

/// True when `label` falls under the bounded-queue rule's scope.
fn bounded_queue_scoped(label: &Path) -> bool {
    let l = label.to_string_lossy().replace('\\', "/");
    BOUNDED_QUEUE_SCOPE.iter().any(|p| l.starts_with(p))
}

/// Exact files (repo-relative) where the `hot-path-alloc` rule applies:
/// the serving read path, where every per-read allocation multiplies by
/// request rate. Deliberately a file list, not a prefix list — the miss
/// path (`pfs.rs`, where synthesis allocates by nature) and the
/// background movers copy legitimately and stay out of scope.
const HOT_PATH_ALLOC_SCOPE: &[&str] = &[
    "crates/core/src/client.rs",
    "crates/core/src/server.rs",
    "crates/core/src/singleflight.rs",
    "crates/storage/src/value.rs",
    "crates/storage/src/nvme.rs",
    "crates/storage/src/index.rs",
    "crates/storage/src/object.rs",
    "crates/wire/src/codec.rs",
    "crates/wire/src/frame.rs",
];

/// Copying constructors the `hot-path-alloc` rule bans inside
/// [`HOT_PATH_ALLOC_SCOPE`]. `::copy_from_slice(` is matched
/// path-qualified so the method *definition* in `value.rs` does not
/// trip its own rule.
const HOT_PATH_ALLOC_CALLS: &[&str] = &[".to_vec()", "Vec::from(", "::copy_from_slice("];

/// True when `label` is one of the hot-path files.
fn hot_path_alloc_scoped(label: &Path) -> bool {
    let l = label.to_string_lossy().replace('\\', "/");
    HOT_PATH_ALLOC_SCOPE.iter().any(|p| l == *p)
}

/// Path prefixes where the `policy-const` rule applies: the core crate
/// (where the tunables are consumed) and the umbrella harness. The two
/// files that *define* the tunables are exempt by name.
const POLICY_CONST_SCOPE: &[&str] = &["crates/core/", "src/"];

/// The recovery-policy tunables the `policy-const` rule guards.
const POLICY_CONST_FIELDS: &[&str] = &["recache_rate", "recache_burst", "replication"];

/// True when `label` falls under the policy-const rule's scope.
fn policy_const_scoped(label: &Path) -> bool {
    let l = label.to_string_lossy().replace('\\', "/");
    POLICY_CONST_SCOPE.iter().any(|p| l.starts_with(p))
        && !(l.ends_with("policy.rs") || l.ends_with("controller.rs"))
}

/// `recache_rate: 50_000.0` / `replication: 2` … — a policy tunable
/// initialised from a numeric literal in place. Type ascriptions
/// (`replication: u32`) and named constants do not match.
fn has_policy_const(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    for field in POLICY_CONST_FIELDS {
        let mut search = 0;
        while let Some(pos) = code[search..].find(field) {
            let start = search + pos;
            search = start + field.len();
            // Word boundary on the left: `max_replication` must not match.
            if start > 0 {
                let prev = bytes[start - 1] as char;
                if prev.is_alphanumeric() || prev == '_' {
                    continue;
                }
            }
            let rest = code[start + field.len()..].trim_start();
            let Some(rest) = rest.strip_prefix(':') else {
                continue;
            };
            // `::` is a path segment, not a field init.
            if rest.starts_with(':') {
                continue;
            }
            if rest.trim_start().starts_with(|c: char| c.is_ascii_digit()) {
                return Some(field);
            }
        }
    }
    None
}

/// Lint every library source file under `root` (the workspace root).
///
/// Scope: `crates/*/src/**.rs` — excluding `crates/bench` (experiment
/// binaries exit on broken preconditions by design) — plus the root
/// `src/`. Shims are stand-ins for external crates and are not held to
/// repo conventions.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "bench"))
        .collect();
    crate_dirs.sort();
    let mut src_dirs: Vec<PathBuf> = crate_dirs.iter().map(|c| c.join("src")).collect();
    src_dirs.push(root.join("src"));

    for dir in src_dirs {
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        files.sort();
        for file in files {
            let source = fs::read_to_string(&file)?;
            let label = file.strip_prefix(root).unwrap_or(&file);
            findings.extend(lint_source(label, &source));
        }
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one source file. `label` is used in findings (typically the
/// repo-relative path).
pub fn lint_source(label: &Path, source: &str) -> Vec<LintFinding> {
    let lexed = lex(source);
    let mut findings = Vec::new();
    let wall_scoped = wall_clock_scoped(label);
    let wall_aliases = if wall_scoped {
        collect_wall_clock_aliases(&lexed.code)
    } else {
        Vec::new()
    };
    let policy_scoped = policy_const_scoped(label);
    let bounded_scoped = bounded_queue_scoped(label);
    let hot_scoped = hot_path_alloc_scoped(label);

    let waived = |rule: &str, line_idx: usize| -> bool {
        let marker = format!("lint:allow({rule})");
        let lo = line_idx.saturating_sub(WAIVER_LOOKBACK);
        lexed.comments[lo..=line_idx]
            .iter()
            .any(|c| c.contains(&marker))
    };

    for (i, code) in lexed.code.iter().enumerate() {
        if lexed.in_test[i] {
            continue;
        }
        let line_no = i + 1;

        if (code.contains(".unwrap()") || code.contains(".expect(")) && !waived("unwrap", i) {
            findings.push(LintFinding {
                file: label.to_path_buf(),
                line: line_no,
                rule: "unwrap",
                message: "unwrap()/expect() in non-test code; return a typed \
                          error or destructure, or waive with lint:allow(unwrap)"
                    .into(),
            });
        }

        if has_err_catchall(code) && !waived("err-catchall", i) {
            findings.push(LintFinding {
                file: label.to_path_buf(),
                line: line_no,
                rule: "err-catchall",
                message: "catch-all Err arm; name the failure being handled, \
                          or waive with lint:allow(err-catchall)"
                    .into(),
            });
        }

        if wall_scoped {
            if let Some(call) = WALL_CLOCK_CALLS.iter().find(|c| code.contains(*c)) {
                if !waived("wall-clock", i) {
                    findings.push(LintFinding {
                        file: label.to_path_buf(),
                        line: line_no,
                        rule: "wall-clock",
                        message: format!(
                            "direct wall-clock call `{call}..)` in a protocol layer; \
                             go through the injected ftc_time::ClockHandle, or waive \
                             with lint:allow(wall-clock)"
                        ),
                    });
                }
            } else if let Some(a) = find_aliased_call(code, &wall_aliases) {
                if !waived("wall-clock", i) {
                    findings.push(LintFinding {
                        file: label.to_path_buf(),
                        line: line_no,
                        rule: "wall-clock",
                        message: format!(
                            "aliased wall-clock call `{}..)` ({} renamed by a `use .. as` \
                             import) in a protocol layer; go through the injected \
                             ftc_time::ClockHandle, or waive with lint:allow(wall-clock)",
                            a.needle, a.origin
                        ),
                    });
                }
            }
        }

        if bounded_scoped {
            if let Some(call) = BOUNDED_QUEUE_CALLS.iter().find(|c| code.contains(*c)) {
                if !waived("bounded-queue", i) {
                    findings.push(LintFinding {
                        file: label.to_path_buf(),
                        line: line_no,
                        rule: "bounded-queue",
                        message: format!(
                            "unbounded queue construction `{call}..)` in a protocol \
                             ingress layer; name the bound (with_capacity + an enforced \
                             cap, or a bounded channel), or waive with \
                             lint:allow(bounded-queue) stating what bounds it"
                        ),
                    });
                }
            }
        }

        if hot_scoped {
            if let Some(call) = HOT_PATH_ALLOC_CALLS.iter().find(|c| code.contains(*c)) {
                if !waived("hot-path-alloc", i) {
                    findings.push(LintFinding {
                        file: label.to_path_buf(),
                        line: line_no,
                        rule: "hot-path-alloc",
                        message: format!(
                            "copying allocation `{call}..)` on the serving read path; \
                             hand a ValueBuf window (clone is a refcount bump) instead, \
                             or waive with lint:allow(hot-path-alloc) naming why the \
                             copy is required"
                        ),
                    });
                }
            }
        }

        if policy_scoped {
            if let Some(field) = has_policy_const(code) {
                if !waived("policy-const", i) {
                    findings.push(LintFinding {
                        file: label.to_path_buf(),
                        line: line_no,
                        rule: "policy-const",
                        message: format!(
                            "hard-coded recovery-policy tunable `{field}`; route it                              through the named defaults in ftc_core::policy or the                              controller's config surface, or waive with                              lint:allow(policy-const)"
                        ),
                    });
                }
            }
        }

        if mentions_atomic_ordering(code) {
            let lo = i.saturating_sub(ORDERING_LOOKBACK);
            let justified = lexed.comments[lo..=i]
                .iter()
                .any(|c| c.contains("ordering:"));
            if !justified {
                findings.push(LintFinding {
                    file: label.to_path_buf(),
                    line: line_no,
                    rule: "ordering",
                    message: "atomic Ordering choice without a nearby \
                              `ordering:` justification comment"
                        .into(),
                });
            }
        }
    }
    findings
}

/// `Err(_) =>` or `Err(..) =>`, tolerating interior whitespace.
fn has_err_catchall(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(pos) = code[search..].find("Err") {
        let start = search + pos;
        search = start + 3;
        let rest = code[start + 3..].trim_start();
        let Some(inner) = rest.strip_prefix('(') else {
            continue;
        };
        let inner = inner.trim_start();
        let after = if let Some(r) = inner.strip_prefix("..") {
            r
        } else if let Some(r) = inner.strip_prefix('_') {
            // `_x` is a named-but-unused binding; only a bare `_` is a
            // catch-all.
            if r.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
                continue;
            }
            r
        } else {
            continue;
        };
        // Word-boundary on the left: `MyErr(_)` must not match.
        if start > 0 {
            let prev = bytes[start - 1] as char;
            if prev.is_alphanumeric() || prev == '_' || prev == ':' {
                continue;
            }
        }
        if after.trim_start().starts_with(')') {
            return true;
        }
    }
    false
}

/// `Ordering::<atomic variant>` — `cmp::Ordering::Less` etc. stay exempt.
fn mentions_atomic_ordering(code: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = code[search..].find("Ordering::") {
        let start = search + pos + "Ordering::".len();
        search = start;
        let rest = &code[start..];
        if ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
            .iter()
            .any(|v| rest.starts_with(v))
        {
            return true;
        }
    }
    false
}

/// Per-line lexing result.
struct Lexed {
    /// Source lines with comments, strings, and char literals blanked.
    code: Vec<String>,
    /// Comment text per line (line + block, concatenated).
    comments: Vec<String>,
    /// Whether the line belongs to a `#[cfg(test)]` item.
    in_test: Vec<bool>,
}

fn lex(source: &str) -> Lexed {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut mode = Mode::Code;
    let mut chars = source.chars().peekable();

    while let Some(c) = chars.next() {
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            continue;
        }
        let line_code = code.last_mut().expect("lines start non-empty"); // lint:allow(unwrap) in own source: invariant-true by construction
        let line_comment = comments.last_mut().expect("lines start non-empty"); // lint:allow(unwrap)
        match mode {
            Mode::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    mode = Mode::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(1);
                }
                '"' => {
                    line_code.push(' ');
                    mode = Mode::Str;
                }
                'r' | 'b' => {
                    // Possible raw-string head: r", r#", br", rb#"…
                    let mut lookahead = chars.clone();
                    let mut hashes = 0u32;
                    let mut saw_quote = false;
                    // Allow one more prefix letter (br / rb).
                    if matches!(lookahead.peek(), Some('r' | 'b')) {
                        lookahead.next();
                    }
                    while lookahead.peek() == Some(&'#') {
                        hashes += 1;
                        lookahead.next();
                    }
                    if lookahead.peek() == Some(&'"') {
                        saw_quote = true;
                    }
                    if saw_quote {
                        // Consume up to and including the opening quote.
                        while let Some(&n) = chars.peek() {
                            chars.next();
                            if n == '"' {
                                break;
                            }
                        }
                        line_code.push(' ');
                        mode = Mode::RawStr(hashes);
                    } else {
                        line_code.push(c);
                    }
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let mut lookahead = chars.clone();
                    match lookahead.next() {
                        Some('\\') => {
                            line_code.push(' ');
                            mode = Mode::Char;
                        }
                        Some(_) if lookahead.next() == Some('\'') => {
                            line_code.push(' ');
                            mode = Mode::Char;
                        }
                        _ => line_code.push(c), // lifetime: keep as code
                    }
                }
                _ => line_code.push(c),
            },
            Mode::LineComment => line_comment.push(c),
            Mode::BlockComment(depth) => match c {
                '*' if chars.peek() == Some(&'/') => {
                    chars.next();
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(depth + 1);
                }
                _ => line_comment.push(c),
            },
            Mode::Str => match c {
                '\\' => {
                    chars.next();
                }
                '"' => mode = Mode::Code,
                _ => {}
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut lookahead = chars.clone();
                    let mut n = 0;
                    while n < hashes && lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        n += 1;
                    }
                    if n == hashes {
                        for _ in 0..hashes {
                            chars.next();
                        }
                        mode = Mode::Code;
                    }
                }
            }
            Mode::Char => match c {
                '\\' => {
                    chars.next();
                }
                '\'' => mode = Mode::Code,
                _ => {}
            },
        }
    }

    let in_test = mark_test_items(&code);
    Lexed {
        code,
        comments,
        in_test,
    }
}

/// Mark every line belonging to a `#[cfg(test)]`-gated item, by
/// brace-balancing from the attribute to the end of the item it gates.
fn mark_test_items(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].replace(' ', "").contains("#[cfg(test)]") {
            // From here, skip until the gated item's braces balance out.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                in_test[j] = true;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<LintFinding> {
        lint_source(Path::new("test.rs"), src)
    }

    fn rules(findings: &[LintFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_in_plain_code() {
        let f = lint_str("fn f() { let x = g().unwrap(); }\n");
        assert_eq!(rules(&f), vec!["unwrap"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn expect_is_flagged_too() {
        let f = lint_str("fn f() { g().expect(\"boom\"); }\n");
        assert_eq!(rules(&f), vec!["unwrap"]);
    }

    #[test]
    fn unwrap_inside_cfg_test_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { g().unwrap(); }\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn unwrap_in_string_or_comment_is_fine() {
        let src = "fn f() { let s = \".unwrap()\"; } // .unwrap() here too\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn waiver_comment_suppresses_unwrap() {
        let src = "// lint:allow(unwrap): established invariant\nfn f() { g().unwrap(); }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn waiver_must_be_near() {
        let mut src = String::from("// lint:allow(unwrap)\n");
        src.push_str(&"\n".repeat(WAIVER_LOOKBACK + 1));
        src.push_str("fn f() { g().unwrap(); }\n");
        assert_eq!(rules(&lint_str(&src)), vec!["unwrap"]);
    }

    #[test]
    fn err_catchall_variants_are_flagged() {
        assert_eq!(
            rules(&lint_str("match r { Ok(_) => {} Err(_) => {} }\n")),
            vec!["err-catchall"]
        );
        assert_eq!(
            rules(&lint_str("match r { Ok(_) => {} Err(..) => {} }\n")),
            vec!["err-catchall"]
        );
        assert_eq!(
            rules(&lint_str("match r { Ok(_) => {} Err( _ ) => {} }\n")),
            vec!["err-catchall"]
        );
    }

    #[test]
    fn named_err_bindings_are_fine() {
        assert!(lint_str("match r { Ok(_) => {} Err(e) => handle(e) }\n").is_empty());
        assert!(lint_str("match r { Ok(_) => {} Err(_ignored) => {} }\n").is_empty());
        // Enum variants that merely end in Err must not match.
        assert!(lint_str("match r { MyErr(_) => {} other => {} }\n").is_empty());
    }

    #[test]
    fn ordering_without_justification_is_flagged() {
        let f = lint_str("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n");
        assert_eq!(rules(&f), vec!["ordering"]);
    }

    #[test]
    fn ordering_with_nearby_justification_is_fine() {
        let src =
            "// ordering: Relaxed - monotone statistic\nfn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_exempt() {
        assert!(lint_str("fn f() -> Ordering { Ordering::Less }\n").is_empty());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "fn f() { let s = r#\"x.unwrap() \"quoted\" \"#; }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn lifetimes_do_not_derail_the_lexer() {
        // If 'a opened a char literal the following unwrap would be
        // swallowed as literal content and missed.
        let src = "fn f<'a>(x: &'a T) { x.get().unwrap(); }\n";
        assert_eq!(rules(&lint_str(src)), vec!["unwrap"]);
    }

    #[test]
    fn char_literals_are_blanked() {
        let src = "fn f() { let c = '\"'; let s = \".unwrap()\"; }\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn block_comments_nest() {
        let src = "/* outer /* inner */ still comment .unwrap() */ fn f() {}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn wall_clock_calls_are_flagged_in_protocol_crates() {
        for call in [
            "Instant::now()",
            "SystemTime::now()",
            "std::thread::sleep(d)",
            "t0.elapsed()",
        ] {
            let src = format!("fn f() {{ let _ = {call}; }}\n");
            let f = lint_source(Path::new("crates/core/src/client.rs"), &src);
            assert_eq!(rules(&f), vec!["wall-clock"], "call {call}");
        }
    }

    #[test]
    fn wall_clock_rule_is_scoped_to_protocol_layers() {
        let src = "fn f() { let t = Instant::now(); }\n";
        // The clock layer and the non-protocol crates own their use of
        // wall time.
        for exempt in [
            "crates/time/src/lib.rs",
            "crates/sim/src/lib.rs",
            "crates/train/src/lib.rs",
            "test.rs",
        ] {
            assert!(
                lint_source(Path::new(exempt), src).is_empty(),
                "{exempt} must be exempt"
            );
        }
        assert_eq!(
            rules(&lint_source(Path::new("src/chaos.rs"), src)),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn wall_clock_in_tests_or_comments_is_fine() {
        let test_gated = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n";
        assert!(lint_source(Path::new("crates/net/src/transport.rs"), test_gated).is_empty());
        let comment = "fn f() {} // Instant::now() would be wrong here\n";
        assert!(lint_source(Path::new("crates/net/src/transport.rs"), comment).is_empty());
    }

    #[test]
    fn wall_clock_waiver_suppresses() {
        let src =
            "// lint:allow(wall-clock): process boot stamp, never virtualized\nfn f() { let t = Instant::now(); }\n";
        assert!(lint_source(Path::new("crates/core/src/server.rs"), src).is_empty());
    }

    #[test]
    fn wall_clock_fully_qualified_paths_are_flagged() {
        // Evasion regression: spelling the full path instead of importing
        // must not slip past the substring list.
        for call in [
            "std::time::SystemTime::now()",
            "std::time::Instant::now()",
            "::std::thread::sleep(d)",
        ] {
            let src = format!("fn f() {{ let _ = {call}; }}\n");
            let f = lint_source(Path::new("crates/net/src/transport.rs"), &src);
            assert_eq!(rules(&f), vec!["wall-clock"], "call {call}");
        }
    }

    #[test]
    fn wall_clock_aliased_instant_import_is_flagged() {
        // Evasion regression: `use .. as` renames hide the symbol from
        // the direct substring list; the alias pre-pass must catch it.
        let src = "use std::time::Instant as I;\nfn f() { let t = I::now(); }\n";
        let f = lint_source(Path::new("crates/core/src/client.rs"), src);
        assert_eq!(rules(&f), vec!["wall-clock"]);
        assert!(
            f[0].message.contains("std::time::Instant"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn wall_clock_aliased_brace_list_import_is_flagged() {
        let src = "use std::time::{Duration, SystemTime as St};\nfn f() { let t = St::now(); }\n";
        let f = lint_source(Path::new("crates/obs/src/timeline.rs"), src);
        assert_eq!(rules(&f), vec!["wall-clock"]);
        assert!(
            f[0].message.contains("std::time::SystemTime"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn wall_clock_aliased_sleep_is_flagged_with_word_boundary() {
        let src = "use std::thread::sleep as nap;\nfn f(d: Duration) { nap(d); }\n";
        let f = lint_source(Path::new("src/chaos.rs"), src);
        assert_eq!(rules(&f), vec!["wall-clock"]);
        // A lookalike identifier ending in the alias must not match.
        let src = "use std::thread::sleep as nap;\nfn f(d: Duration) { kidnap(d); }\n";
        assert!(lint_source(Path::new("src/chaos.rs"), src).is_empty());
    }

    #[test]
    fn wall_clock_aliases_respect_scope_and_waivers() {
        let src = "use std::time::Instant as I;\nfn f() { let t = I::now(); }\n";
        // Out-of-scope crates may alias freely.
        assert!(lint_source(Path::new("crates/sim/src/lib.rs"), src).is_empty());
        // The waiver works on aliased calls like on direct ones.
        let waived = "use std::time::Instant as I;\n// lint:allow(wall-clock): boot stamp\nfn f() { let t = I::now(); }\n";
        assert!(lint_source(Path::new("crates/core/src/client.rs"), waived).is_empty());
        // Aliasing something harmless must not arm the rule.
        let harmless = "use std::time::Duration as D;\nfn f(d: D) { let _ = d; }\n";
        assert!(lint_source(Path::new("crates/core/src/client.rs"), harmless).is_empty());
    }

    #[test]
    fn policy_const_literal_is_flagged_in_scope() {
        let src = "fn f() { let c = RecoveryConfig { recache_rate: 100.0, ..d }; }\n";
        let f = lint_source(Path::new("crates/core/src/recovery.rs"), src);
        assert_eq!(rules(&f), vec!["policy-const"]);
        let src = "fn f() { cfg.quiet = PolicyDecision { replication: 2, ..q }; }\n";
        assert_eq!(
            rules(&lint_source(Path::new("src/chaos.rs"), src)),
            vec!["policy-const"]
        );
    }

    #[test]
    fn policy_const_defining_files_are_exempt() {
        let src = "pub const X: f64 = 1.0; fn f() { let c = C { recache_burst: 512 }; }\n";
        assert!(lint_source(Path::new("crates/core/src/policy.rs"), src).is_empty());
        assert!(lint_source(Path::new("crates/core/src/controller.rs"), src).is_empty());
        // Out-of-scope crates own their literals.
        assert!(lint_source(Path::new("crates/sim/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn policy_const_ignores_types_constants_and_lookalikes() {
        for src in [
            "pub struct C { pub replication: u32 }\n",
            "fn f() { C { replication: DEFAULT_REPLICATION } }\n",
            "fn f() { C { max_replication: 3 } }\n",
            "fn f() { crate::policy::replication::tune() }\n",
        ] {
            assert!(
                lint_source(Path::new("crates/core/src/client.rs"), src).is_empty(),
                "{src}"
            );
        }
    }

    #[test]
    fn policy_const_waiver_suppresses() {
        let src = "// lint:allow(policy-const): sabotage mode starves the bucket\nfn f() { C { recache_rate: 0.0 } }\n";
        assert!(lint_source(Path::new("src/chaos.rs"), src).is_empty());
    }

    #[test]
    fn bounded_queue_constructors_are_flagged_in_scope() {
        for call in [
            "VecDeque::new()",
            "clock.channel()",
            "mpsc::channel()",
            "crossbeam::channel::unbounded()",
        ] {
            let src = format!("fn f() {{ let q = {call}; }}\n");
            for scoped in [
                "crates/core/src/server.rs",
                "crates/net/src/transport.rs",
                "crates/wire/src/tcp.rs",
            ] {
                let f = lint_source(Path::new(scoped), &src);
                assert_eq!(rules(&f), vec!["bounded-queue"], "{call} in {scoped}");
            }
        }
    }

    #[test]
    fn bounded_queue_rule_is_scoped_and_waivable() {
        let src = "fn f() { let q: VecDeque<u8> = VecDeque::new(); }\n";
        // Harness and non-protocol crates own their collections.
        for exempt in ["src/chaos.rs", "crates/sim/src/lib.rs", "test.rs"] {
            assert!(
                lint_source(Path::new(exempt), src).is_empty(),
                "{exempt} must be exempt"
            );
        }
        // Bounded construction does not match.
        let bounded = "fn f(cap: usize) { let q = VecDeque::with_capacity(cap); }\n";
        assert!(lint_source(Path::new("crates/core/src/server.rs"), bounded).is_empty());
        // A waiver naming the bound suppresses.
        let waived = "// lint:allow(bounded-queue): cap enforced at push_deadline\nfn f() { let q = VecDeque::new(); }\n";
        assert!(lint_source(Path::new("crates/wire/src/tcp.rs"), waived).is_empty());
        // Test code is exempt like everywhere else.
        let test_gated = "#[cfg(test)]\nmod tests {\n    fn f() { let q = VecDeque::new(); }\n}\n";
        assert!(lint_source(Path::new("crates/net/src/transport.rs"), test_gated).is_empty());
    }

    #[test]
    fn hot_path_alloc_copies_are_flagged_in_scope() {
        for call in [
            "bytes.to_vec()",
            "Vec::from(slice)",
            "ValueBuf::copy_from_slice(body)",
            "Bytes::copy_from_slice(body)",
        ] {
            let src = format!("fn f() {{ let v = {call}; }}\n");
            for scoped in [
                "crates/core/src/server.rs",
                "crates/storage/src/nvme.rs",
                "crates/wire/src/codec.rs",
            ] {
                let f = lint_source(Path::new(scoped), &src);
                assert_eq!(rules(&f), vec!["hot-path-alloc"], "{call} in {scoped}");
            }
        }
    }

    #[test]
    fn hot_path_alloc_is_file_scoped_and_waivable() {
        let src = "fn f(b: &[u8]) { let v = b.to_vec(); }\n";
        // Miss path, movers, harness, and non-protocol crates copy freely.
        for exempt in [
            "crates/storage/src/pfs.rs",
            "crates/storage/src/mover.rs",
            "crates/core/src/recovery.rs",
            "src/chaos.rs",
            "test.rs",
        ] {
            assert!(
                lint_source(Path::new(exempt), src).is_empty(),
                "{exempt} must be exempt"
            );
        }
        // The definition of `copy_from_slice` itself does not match the
        // path-qualified needle.
        let def = "pub fn copy_from_slice(data: &[u8]) -> Self { Self::of(data) }\n";
        assert!(lint_source(Path::new("crates/storage/src/value.rs"), def).is_empty());
        // A waiver naming the reason suppresses.
        let waived = "// lint:allow(hot-path-alloc): detach right-sizes a partial window\nfn f(b: &[u8]) { let v = b.to_vec(); }\n";
        assert!(lint_source(Path::new("crates/storage/src/value.rs"), waived).is_empty());
        // Test code is exempt like everywhere else.
        let test_gated =
            "#[cfg(test)]\nmod tests {\n    fn f(b: &[u8]) { let v = b.to_vec(); }\n}\n";
        assert!(lint_source(Path::new("crates/core/src/client.rs"), test_gated).is_empty());
    }

    #[test]
    fn workspace_is_lint_clean() {
        // The repo enforces its own conventions: the full library tree
        // must produce zero findings (CI runs the same check via the
        // ftc-analysis binary).
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/analysis has a workspace root two levels up");
        let findings = lint_workspace(root).expect("lint walk");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
