//! Bounded-DFS schedule exploration over the virtual-time driver.
//!
//! `ftc-time`'s [`ftc_time::with_virtual_sched`] turns every point where
//! more than one task is runnable into a recorded *choice point*. This
//! module is the driver that walks the resulting schedule tree:
//!
//! * Each run is launched with a **forced prefix** of choices
//!   ([`ftc_time::ForcedPrefix`]); past the prefix the run takes the
//!   FIFO default and records what it saw.
//! * After a run, every choice point at or past the prefix with untried
//!   siblings becomes a new frontier entry (`prefix + [sibling]`),
//!   bounded by [`DfsConfig::depth`] choice points — classic iterative
//!   stateless model checking, rebuilt on real threads via the
//!   cooperative driver.
//! * **Partial-order-reduction-lite**: two executions that are linear
//!   extensions of the same happens-before partial order produce the
//!   same multiset of `(actor, vector clock, event)` trace records, so
//!   the caller can hand each run an order-independent fingerprint
//!   (see [`fingerprint_trace`]) built from the vector clocks the
//!   transport already stamps ([`crate::hb`]). A run whose fingerprint
//!   was already seen is *not expanded* — its subtree can only contain
//!   interleavings equivalent to ones reachable from the first
//!   occurrence. This is weaker than sleep-set DPOR (the equivalent run
//!   itself still executed) but prunes the frontier it would have
//!   spawned.
//!
//! The driver is deliberately agnostic about *what* runs: the chaos
//! harness passes a closure that boots a whole virtual cluster, runs a
//! campaign, and returns invariant results; unit tests pass toy task
//! graphs.

use crate::replay::Replayable;
use ftc_net::TraceRecord;
use ftc_time::sched::ScheduleTrace;
use std::collections::HashSet;

/// What one explored run reported back to the driver.
pub struct RunOutcome {
    /// Did every invariant hold under this schedule?
    pub ok: bool,
    /// Deterministic rendering of the run (used both for violation
    /// messages and for byte-identical replay comparison).
    pub report: String,
    /// Order-independent execution fingerprint (e.g.
    /// [`fingerprint_trace`] over the run's vector-clock trace), or
    /// `None` to disable equivalence pruning for this run.
    pub fingerprint: Option<u64>,
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Maximum number of runs to execute.
    pub max_runs: usize,
    /// Maximum choice-point depth at which new branches are opened
    /// (runs themselves always execute to completion).
    pub depth: usize,
    /// Stop as soon as the first violating schedule is found.
    pub stop_on_violation: bool,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            max_runs: 128,
            depth: 24,
            stop_on_violation: true,
        }
    }
}

/// A schedule that broke an invariant, with the run's report.
pub struct Violation {
    /// The recorded schedule; replaying it reproduces the run.
    pub schedule: ScheduleTrace,
    /// The violating run's rendered report.
    pub report: String,
}

/// What a [`bounded_dfs`] exploration covered.
pub struct DfsReport {
    /// Runs executed.
    pub runs: usize,
    /// Total choice points observed across all runs.
    pub choice_points: u64,
    /// Runs with a fingerprint not seen before (≈ distinct partial
    /// orders reached).
    pub distinct: usize,
    /// Runs skipped from expansion because their fingerprint matched an
    /// earlier run (POR-lite).
    pub pruned_equivalent: usize,
    /// Violating schedules found.
    pub violations: Vec<Violation>,
    /// True when the frontier emptied within budget: every schedule of
    /// the tree (up to `depth`, modulo pruned-equivalent subtrees) ran.
    pub exhausted: bool,
}

impl DfsReport {
    /// True when no explored schedule broke an invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for DfsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dfs: {} run(s), {} choice point(s), {} distinct, {} pruned-equivalent, \
             {} violation(s){}",
            self.runs,
            self.choice_points,
            self.distinct,
            self.pruned_equivalent,
            self.violations.len(),
            if self.exhausted {
                ", tree exhausted"
            } else {
                ", budget hit"
            }
        )
    }
}

/// Explore the schedule tree of `run` depth-first. `run` receives the
/// forced choice prefix for this run and must execute the system under
/// `ForcedPrefix(prefix)` via `with_virtual_sched`, returning the full
/// recorded trace plus the outcome.
pub fn bounded_dfs(
    mut run: impl FnMut(Vec<u32>) -> (ScheduleTrace, RunOutcome),
    cfg: &DfsConfig,
) -> DfsReport {
    let mut report = DfsReport {
        runs: 0,
        choice_points: 0,
        distinct: 0,
        pruned_equivalent: 0,
        violations: Vec::new(),
        exhausted: true,
    };
    let mut seen: HashSet<u64> = HashSet::new();
    // LIFO frontier of forced prefixes: deepest-first backtracking.
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
    while let Some(prefix) = frontier.pop() {
        if report.runs >= cfg.max_runs {
            report.exhausted = false;
            break;
        }
        let from = prefix.len();
        let (trace, outcome) = run(prefix);
        report.runs += 1;
        report.choice_points += trace.len() as u64;
        if !outcome.ok {
            report.violations.push(Violation {
                schedule: trace.clone(),
                report: outcome.report,
            });
            if cfg.stop_on_violation {
                report.exhausted = false;
                break;
            }
        }
        let fresh = match outcome.fingerprint {
            Some(fp) => seen.insert(fp),
            None => true,
        };
        if !fresh {
            report.pruned_equivalent += 1;
            continue; // POR-lite: don't expand an equivalent execution
        }
        report.distinct += 1;
        let horizon = trace.choices.len().min(cfg.depth);
        for i in from..horizon {
            let (chosen, n) = trace.choices[i];
            let stem: Vec<u32> = trace.choices[..i].iter().map(|&(c, _)| c).collect();
            for sibling in (chosen + 1)..n {
                let mut next = stem.clone();
                next.push(sibling);
                frontier.push(next);
            }
        }
    }
    report
}

/// Order-independent fingerprint of a traced execution: the FNV hash of
/// every `(actor, vector clock, event kind)` record, combined
/// commutatively. Linear extensions of the same happens-before partial
/// order carry identical record multisets, so they collide here — which
/// is exactly what the POR-lite pruning in [`bounded_dfs`] wants.
/// Message-leg records are skipped (their payload repeats what the
/// clocks already encode).
pub fn fingerprint_trace(records: &[TraceRecord]) -> u64 {
    let mut acc: u64 = 0;
    for r in records {
        // `seq` is the global append order — exactly the thing that
        // differs between equivalent interleavings — so it is excluded.
        let line = format!("{:?}|{:?}|{:?}", r.actor, r.clock, r.kind);
        acc = acc.wrapping_add(ftc_net::fnv1a(line.as_bytes()));
    }
    acc
}

/// Render a violating schedule as a replay file (see [`crate::replay`]).
pub fn schedule_file(v: &Violation, strategy: &str, seed: u64) -> String {
    Replayable::from_schedule(&v.schedule, strategy, seed).to_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_time::sched::ForcedPrefix;
    use ftc_time::with_virtual_sched;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// The canonical check-then-act bug: task `safe` increments a shared
    /// cell atomically; task `racy` reads, yields, then writes read+1.
    /// Both wake at the same virtual instant, so the schedule decides
    /// whether the update is lost. FIFO (spawn order) always runs
    /// `safe` first and hides the bug.
    fn racy_counter(prefix: Vec<u32>) -> (ScheduleTrace, RunOutcome) {
        let (total, trace) = with_virtual_sched(Box::new(ForcedPrefix::new(prefix)), |clock| {
            let cell = Arc::new(Mutex::new(0u64));
            let c1 = clock.clone();
            let cell1 = Arc::clone(&cell);
            let safe = clock
                .spawn("safe", move || {
                    c1.sleep(Duration::from_millis(1));
                    *cell1.lock().expect("cell") += 1;
                })
                .expect("spawn");
            let c2 = clock.clone();
            let cell2 = Arc::clone(&cell);
            let racy = clock
                .spawn("racy", move || {
                    c2.sleep(Duration::from_millis(1));
                    let read = *cell2.lock().expect("cell");
                    c2.sleep(Duration::from_nanos(1)); // yield inside the RMW
                    *cell2.lock().expect("cell") = read + 1;
                })
                .expect("spawn");
            safe.join().expect("clean");
            racy.join().expect("clean");
            let v = *cell.lock().expect("cell");
            v
        });
        let ok = total == 2;
        (
            trace,
            RunOutcome {
                ok,
                report: format!("total={total}"),
                fingerprint: None,
            },
        )
    }

    #[test]
    fn dfs_finds_the_lost_update_fifo_misses() {
        // FIFO alone (empty prefix, first run) passes…
        let (_, first) = racy_counter(Vec::new());
        assert!(
            first.ok,
            "spawn-order schedule hides the bug: {}",
            first.report
        );
        // …but the DFS finds the interleaving that loses the update.
        let report = bounded_dfs(racy_counter, &DfsConfig::default());
        assert!(
            !report.passed(),
            "exhaustive exploration must find the lost update ({report})"
        );
        let v = &report.violations[0];
        assert_eq!(v.report, "total=1");
        // The violating schedule replays to the identical outcome.
        let (trace2, again) = racy_counter(v.schedule.choices.iter().map(|&(c, _)| c).collect());
        assert_eq!(
            again.report, v.report,
            "replay must reproduce the violation"
        );
        assert_eq!(
            trace2, v.schedule,
            "replay must re-record the same schedule"
        );
    }

    #[test]
    fn dfs_exhausts_small_trees_and_counts() {
        let report = bounded_dfs(
            racy_counter,
            &DfsConfig {
                max_runs: 512,
                depth: 16,
                stop_on_violation: false,
            },
        );
        assert!(
            report.exhausted,
            "tiny tree must be fully explored: {report}"
        );
        assert!(!report.passed());
        assert!(report.runs >= 2, "at least FIFO + one sibling: {report}");
    }

    #[test]
    fn equivalent_fingerprints_prune_expansion() {
        // Every run reports the same fingerprint: only the first run may
        // expand, so the frontier collapses after its siblings.
        let report = bounded_dfs(
            |prefix| {
                let (trace, mut out) = racy_counter(prefix);
                out.fingerprint = Some(42);
                out.ok = true; // ignore the bug; this test is about pruning
                (trace, out)
            },
            &DfsConfig {
                max_runs: 512,
                depth: 16,
                stop_on_violation: false,
            },
        );
        assert!(report.exhausted);
        assert_eq!(report.distinct, 1, "{report}");
        assert_eq!(report.pruned_equivalent, report.runs - 1, "{report}");
    }

    #[test]
    fn fingerprint_is_order_independent() {
        use ftc_hashring::NodeId;
        use ftc_net::{TraceEventKind, Tracer};
        let t = Tracer::new();
        t.record(NodeId(1), TraceEventKind::Declare { node: NodeId(2) });
        t.record(NodeId(3), TraceEventKind::CacheInsert { key: "k".into() });
        let mut records = t.take();
        let a = fingerprint_trace(&records);
        records.swap(0, 1);
        assert_eq!(a, fingerprint_trace(&records));
    }
}
