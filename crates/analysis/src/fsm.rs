//! Exhaustive bounded model checking of the failure-detector + recache
//! lifecycle.
//!
//! The protocol under test is the per-client loop the paper's §IV
//! describes: RPC timeouts feed a [`FailureDetector`]; reaching the
//! timeout limit declares the node failed; under ring recaching the
//! declared node is removed from the [`HashRing`] (bumping the membership
//! epoch); a repaired node is revived, cleared, and re-added. Rather than
//! model that in an abstract language, the checker drives the *real*
//! implementation types (both are `Clone`, so states fork cheaply) through
//! **every interleaving** of the event alphabet
//! `{kill, revive, timeout, reply}` up to a depth bound, and asserts the
//! chaos-harness invariants in every reachable state:
//!
//! 1. **Detector/ghost agreement** — the detector's suspect counts and
//!    failed set match an independently maintained ghost model (the
//!    executable spec of §IV-A's counter semantics).
//! 2. **Recache economy** — only declared nodes are ever removed from the
//!    ring (no spurious membership churn).
//! 3. **Serviceability** — while any node is in the ring, every key has
//!    an owner (reads cannot strand).
//! 4. **No false positives** — with no spurious-timeout budget spent, the
//!    failed set only ever contains nodes that were actually killed.
//! 5. **Epoch monotonicity** — every membership change advances the epoch
//!    by exactly one.
//!
//! States are deduplicated on a canonical key (per-node up/declared/
//! suspect-count, ring membership, spurious budget spent), so the
//! exploration counts *distinct* protocol states while still counting
//! every interleaving (path) through them.

use ftc_core::{DetectorConfig, FailureDetector, Verdict};
use ftc_hashring::{HashRing, NodeId, Placement};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Checker parameters.
#[derive(Debug, Clone, Copy)]
pub struct FsmConfig {
    /// Nodes in the cluster (the event alphabet scales with this).
    pub nodes: u32,
    /// Detector timeouts-before-declare limit.
    pub timeout_limit: u32,
    /// Interleaving depth bound (events per path).
    pub depth: u32,
    /// How many timeouts may target *live* nodes (models transient
    /// network delay); 0 means timeouts only ever follow real kills.
    pub spurious: u32,
    /// Deliberately desynchronise the ghost model (skip its reply
    /// handling) — a self-test hook: the checker MUST report violations
    /// when this is set.
    pub sabotage: bool,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig {
            nodes: 3,
            timeout_limit: 2,
            depth: 6,
            spurious: 1,
            sabotage: false,
        }
    }
}

/// What the exploration found.
#[derive(Debug, Clone)]
pub struct FsmReport {
    /// Configuration explored.
    pub config_summary: String,
    /// Complete event interleavings enumerated (paths of length `depth`,
    /// counted through the deduplicated state graph).
    pub interleavings: u64,
    /// Transitions taken (edges of the explored graph).
    pub transitions: u64,
    /// Distinct protocol states reached.
    pub distinct_states: u64,
    /// Invariant violations, each with the event path that reached it.
    pub violations: Vec<String>,
}

impl FsmReport {
    /// Did every reachable state satisfy every invariant?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for FsmReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fsm [{}]: {} interleavings over {} distinct states \
             ({} transitions) -> {}",
            self.config_summary,
            self.interleavings,
            self.distinct_states,
            self.transitions,
            if self.passed() {
                "PASS".to_owned()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )?;
        for v in &self.violations {
            write!(f, "\n  violation: {v}")?;
        }
        Ok(())
    }
}

/// One protocol event; the alphabet of the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The node crashes (subsequent timeouts against it are "real").
    Kill(NodeId),
    /// The node is repaired, cleared, and re-added to the ring.
    Revive(NodeId),
    /// An RPC to the node times out at the client.
    Timeout(NodeId),
    /// An RPC to the node succeeds (clears its suspicion window).
    Reply(NodeId),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Kill(n) => write!(f, "kill({n})"),
            Event::Revive(n) => write!(f, "revive({n})"),
            Event::Timeout(n) => write!(f, "timeout({n})"),
            Event::Reply(n) => write!(f, "reply({n})"),
        }
    }
}

/// One explored state: the real implementation plus the ghost spec.
#[derive(Clone)]
struct State {
    detector: FailureDetector,
    ring: HashRing,
    up: Vec<bool>,
    /// Ghost mirror of the detector's suspicion windows.
    ghost_counts: Vec<u32>,
    /// Ghost mirror of the detector's failed set.
    ghost_declared: BTreeSet<u32>,
    /// Nodes ever killed on this path.
    killed_ever: BTreeSet<u32>,
    /// Membership-change count (the client's ring epoch).
    epoch: u64,
    spurious_used: u32,
}

impl State {
    fn canonical_key(&self) -> String {
        use fmt::Write as _;
        let mut k = String::new();
        for (i, &u) in self.up.iter().enumerate() {
            let _ = write!(
                k,
                "{}{}:{}:{};",
                if u { '+' } else { '-' },
                i,
                self.ghost_counts[i],
                u8::from(self.ghost_declared.contains(&(i as u32)))
            );
        }
        let members: Vec<String> = self
            .ring
            .live_nodes()
            .iter()
            .map(|n| n.to_string())
            .collect();
        let _ = write!(k, "ring={};sp={}", members.join(","), self.spurious_used);
        // killed_ever matters for invariant 4 but is monotone along a
        // path; including it keeps memoised path counts sound.
        let killed: Vec<String> = self.killed_ever.iter().map(|n| n.to_string()).collect();
        let _ = write!(k, ";killed={}", killed.join(","));
        k
    }
}

/// Exhaustively explore every interleaving to `config.depth`, asserting
/// the invariants at every reached state.
pub fn check_fsm(config: &FsmConfig) -> FsmReport {
    let detector = FailureDetector::new(DetectorConfig {
        ttl: Duration::from_millis(1),
        timeout_limit: config.timeout_limit.max(1),
        // Effectively no decay: the FSM has no wall clock, so every
        // timeout lands at the same instant.
        suspicion_window: Duration::from_secs(3600),
    });
    let n = config.nodes as usize;
    let root = State {
        detector,
        ring: HashRing::with_nodes(config.nodes, 8),
        up: vec![true; n],
        ghost_counts: vec![0; n],
        ghost_declared: BTreeSet::new(),
        killed_ever: BTreeSet::new(),
        epoch: 0,
        spurious_used: 0,
    };
    let mut exp = Explorer {
        config: *config,
        now: Instant::now(),
        sample_keys: (0..8).map(|i| format!("train/s{i}.bin")).collect(),
        violations: Vec::new(),
        transitions: 0,
        states: BTreeSet::new(),
        memo: HashMap::new(),
    };
    let mut path = Vec::new();
    exp.check_invariants(&root, &path);
    let interleavings = exp.explore(root, config.depth, &mut path);
    FsmReport {
        config_summary: format!(
            "nodes={} limit={} depth={} spurious={}{}",
            config.nodes,
            config.timeout_limit,
            config.depth,
            config.spurious,
            if config.sabotage { " SABOTAGE" } else { "" }
        ),
        interleavings,
        transitions: exp.transitions,
        distinct_states: exp.states.len() as u64,
        violations: exp.violations,
    }
}

struct Explorer {
    config: FsmConfig,
    now: Instant,
    sample_keys: Vec<String>,
    violations: Vec<String>,
    transitions: u64,
    states: BTreeSet<String>,
    /// (state key, remaining depth) -> number of completions below it.
    memo: HashMap<(String, u32), u64>,
}

impl Explorer {
    /// Events enabled in `s`. The alphabet is complete by construction:
    /// every kill/revive consistent with liveness, every timeout that is
    /// either real (node down) or within the spurious budget, and every
    /// reply from a live node.
    fn enabled(&self, s: &State) -> Vec<Event> {
        let mut ev = Vec::new();
        for i in 0..s.up.len() {
            let node = NodeId(i as u32);
            if s.up[i] {
                ev.push(Event::Kill(node));
                ev.push(Event::Reply(node));
                if s.spurious_used < self.config.spurious {
                    ev.push(Event::Timeout(node));
                }
            } else {
                ev.push(Event::Revive(node));
                ev.push(Event::Timeout(node));
            }
        }
        ev
    }

    fn apply(&mut self, s: &State, ev: Event) -> State {
        let mut next = s.clone();
        match ev {
            Event::Kill(node) => {
                next.up[node.index()] = false;
                next.killed_ever.insert(node.0);
            }
            Event::Revive(node) => {
                next.up[node.index()] = true;
                next.killed_ever.remove(&node.0);
                // Mirrors `HvacClient::readmit`: only the failed flag is
                // cleared — a pre-declare suspicion window survives the
                // rejoin (and so must the ghost's count).
                next.detector.clear_failed(node);
                next.ghost_declared.remove(&node.0);
                if !next.ring.contains(node) {
                    let _ = next.ring.add_node(node);
                    next.epoch += 1;
                }
            }
            Event::Timeout(node) => {
                if s.up[node.index()] {
                    next.spurious_used += 1;
                }
                let verdict = next.detector.record_timeout_at(node, self.now);
                // Ghost spec of §IV-A: count up, declare at the limit.
                if !next.ghost_declared.contains(&node.0) {
                    next.ghost_counts[node.index()] += 1;
                    if next.ghost_counts[node.index()] >= self.config.timeout_limit.max(1) {
                        next.ghost_declared.insert(node.0);
                        next.ghost_counts[node.index()] = 0;
                    }
                } else {
                    next.ghost_counts[node.index()] = 0;
                }
                // Client behavior under RingRecache: a declared owner is
                // removed from the placement.
                if matches!(verdict, Verdict::JustFailed) && next.ring.contains(node) {
                    let _ = next.ring.remove_node(node);
                    next.epoch += 1;
                }
            }
            Event::Reply(node) => {
                next.detector.record_success(node);
                if !self.config.sabotage {
                    next.ghost_counts[node.index()] = 0;
                }
            }
        }
        self.transitions += 1;
        next
    }

    fn check_invariants(&mut self, s: &State, path: &[Event]) {
        let trail = || {
            path.iter()
                .map(Event::to_string)
                .collect::<Vec<_>>()
                .join(" -> ")
        };
        // 1. Detector/ghost agreement.
        let declared: BTreeSet<u32> = s.detector.failed_nodes().iter().map(|n| n.0).collect();
        if declared != s.ghost_declared {
            self.violations.push(format!(
                "detector failed set {declared:?} != spec {:?} after [{}]",
                s.ghost_declared,
                trail()
            ));
        }
        for i in 0..s.up.len() {
            let got = s.detector.suspect_count(NodeId(i as u32));
            let want = if declared.contains(&(i as u32)) {
                0
            } else {
                s.ghost_counts[i]
            };
            if got != want {
                self.violations.push(format!(
                    "suspect count for n{i} is {got}, spec says {want} after [{}]",
                    trail()
                ));
            }
        }
        // 2. Recache economy: removed-from-ring ⊆ declared ∪ revived-gap.
        for i in 0..s.up.len() {
            let node = NodeId(i as u32);
            if !s.ring.contains(node) && !declared.contains(&node.0) {
                self.violations.push(format!(
                    "{node} left the ring without being declared failed after [{}]",
                    trail()
                ));
            }
        }
        // 3. Serviceability: while the ring is non-empty, every key has
        //    an owner.
        if !s.ring.is_empty() {
            for key in &self.sample_keys {
                if s.ring.owner(key).is_none() {
                    self.violations.push(format!(
                        "key {key:?} has no owner on a non-empty ring after [{}]",
                        trail()
                    ));
                }
            }
        }
        // 4. No false positives without spurious timeouts.
        if s.spurious_used == 0 {
            for d in &declared {
                if !s.killed_ever.contains(d) {
                    self.violations.push(format!(
                        "n{d} declared failed though never killed (and no \
                         spurious timeouts) after [{}]",
                        trail()
                    ));
                }
            }
        }
        // 5. Epoch monotonicity is structural (the apply() arms only ever
        //    += 1 per membership change); assert the epoch at least
        //    bounds the membership churn.
        let removed = s.up.len() - s.ring.len();
        if (s.epoch as usize) < removed {
            self.violations.push(format!(
                "epoch {} cannot account for {removed} missing members after [{}]",
                s.epoch,
                trail()
            ));
        }
    }

    /// DFS with (state, remaining-depth) memoisation; returns the number
    /// of complete interleavings below `s`.
    fn explore(&mut self, s: State, depth: u32, path: &mut Vec<Event>) -> u64 {
        let key = s.canonical_key();
        self.states.insert(key.clone());
        if depth == 0 {
            return 1;
        }
        if let Some(&count) = self.memo.get(&(key.clone(), depth)) {
            return count;
        }
        let mut completions = 0u64;
        for ev in self.enabled(&s) {
            let next = self.apply(&s, ev);
            path.push(ev);
            self.check_invariants(&next, path);
            completions = completions.saturating_add(self.explore(next, depth - 1, path));
            path.pop();
        }
        self.memo.insert((key, depth), completions);
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_depth_six_is_clean() {
        let report = check_fsm(&FsmConfig::default());
        assert!(report.passed(), "{report}");
        assert!(report.interleavings > 0);
        assert!(report.distinct_states > 1);
    }

    #[test]
    fn sabotage_is_caught() {
        // The self-test: a deliberately desynchronised spec must surface
        // as violations, proving the checker can fail.
        let report = check_fsm(&FsmConfig {
            sabotage: true,
            ..FsmConfig::default()
        });
        assert!(!report.passed(), "sabotaged run must report violations");
    }

    #[test]
    fn zero_spurious_budget_never_declares_live_nodes() {
        let report = check_fsm(&FsmConfig {
            spurious: 0,
            depth: 5,
            ..FsmConfig::default()
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn two_node_deep_exploration_is_clean() {
        let report = check_fsm(&FsmConfig {
            nodes: 2,
            timeout_limit: 2,
            depth: 8,
            spurious: 2,
            sabotage: false,
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn interleavings_grow_with_depth() {
        let shallow = check_fsm(&FsmConfig {
            depth: 2,
            ..FsmConfig::default()
        });
        let deep = check_fsm(&FsmConfig {
            depth: 4,
            ..FsmConfig::default()
        });
        assert!(deep.interleavings > shallow.interleavings);
    }
}
