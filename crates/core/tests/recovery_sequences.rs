//! Multi-failure sequences through the recovery engine.
//!
//! The single-failure path is pinned by the unit tests; what breaks
//! recovery engines in practice is the *second* fault arriving while the
//! first is still being repaired. These tests drive the real threaded
//! cluster through compound failure schedules and check the two
//! engine-level invariants: every staged key stays readable with correct
//! bytes, and recovery always quiesces.

use ftc_core::{Cluster, ClusterConfig, FtPolicy, RecoveryConfig};
use ftc_hashring::NodeId;
use ftc_storage::synth_bytes;
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::{Duration, Instant};

const FILE_SIZE: usize = 32;

/// Read every path until the cluster declares `node` dead (reads drive
/// the timeout detector), bounded so a wedged detector fails loudly.
fn drive_until_declared(c: &ftc_core::HvacClient, paths: &[String], node: NodeId) {
    let t0 = Instant::now();
    while c.live_nodes().contains(&node) {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "{node} was never declared failed"
        );
        for p in paths {
            let _ = c.read(p);
        }
    }
}

/// The successor that inherited a dead node's keys dies too, while the
/// proactive recache job for the first death is still in flight. The
/// engine must re-route the remaining pushes to the shrunken ring and
/// still quiesce with every key readable.
#[test]
fn successor_death_mid_recache_reroutes_pushes() {
    let cluster = Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot");
    let paths = cluster.stage_dataset("train", 48, FILE_SIZE);
    let c = cluster
        .client_with_recovery(
            0,
            RecoveryConfig {
                probe: false,
                // Slow the bucket down so the first job is still mid-flight
                // when the second failure lands.
                recache_rate: 4_000.0,
                recache_burst: 4,
                ..Default::default()
            },
        )
        .expect("client");
    for p in &paths {
        c.read(p).unwrap();
    }
    let lost: Vec<String> = paths
        .iter()
        .filter(|p| c.owner_of(p) == Some(NodeId(0)))
        .cloned()
        .collect();
    assert!(!lost.is_empty(), "node 0 must own something");

    cluster.kill(NodeId(0));
    drive_until_declared(&c, &lost, NodeId(0));

    // Whoever now owns the first lost key is recache's push target — kill
    // it while the job runs.
    let successor = c.owner_of(&lost[0]).expect("ring not empty");
    cluster.kill(successor);
    drive_until_declared(&c, &paths, successor);

    let engine = c.recovery().expect("engine running");
    assert!(
        engine.wait_quiesced(Duration::from_secs(15)),
        "recovery must quiesce after a double failure (stats: {:?})",
        engine.stats()
    );
    // Every key is readable and correct on the two-node ring.
    for p in &paths {
        assert_eq!(c.read(p).unwrap(), synth_bytes(p, FILE_SIZE), "corrupt {p}");
    }
    // …and after the movers settle, wholly from cache: nothing stayed
    // lost.
    assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
    cluster.pfs().reset_read_counters();
    for p in &paths {
        c.read(p).unwrap();
    }
    assert_eq!(
        cluster.pfs().total_reads(),
        0,
        "all keys re-homed despite the successor dying mid-recache"
    );
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of kills and (warm) revives up to depth 4 leaves
    /// the cluster with every key readable and the recovery engine
    /// quiesced. Kills that would empty the ring are skipped, as are
    /// revives of living nodes — the schedule is otherwise arbitrary.
    #[test]
    fn any_kill_revive_interleaving_converges(
        actions in prop::collection::vec((0u8..2, 0u8..4), 1..5),
    ) {
        let cluster =
            Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 24, FILE_SIZE);
        let c = cluster
            .client_with_recovery(0, RecoveryConfig { probe: false, ..Default::default() })
            .expect("client");
        for p in &paths {
            c.read(p).unwrap();
        }
        let mut alive: HashSet<u32> = (0..4).collect();
        for &(kind, n) in &actions {
            let node = NodeId(u32::from(n));
            if kind == 0 {
                if alive.len() > 1 && alive.remove(&node.0) {
                    cluster.kill(node);
                    drive_until_declared(&c, &paths, node);
                }
            } else if !alive.contains(&node.0) {
                cluster.revive(node).expect("revive");
                alive.insert(node.0);
            }
        }
        // Let the lazy path converge, then require the engine to drain.
        for _ in 0..2 {
            for p in &paths {
                let _ = c.read(p);
            }
        }
        let engine = c.recovery().expect("engine running");
        prop_assert!(
            engine.wait_quiesced(Duration::from_secs(15)),
            "engine did not quiesce after {:?} (stats: {:?})",
            actions,
            engine.stats()
        );
        for p in &paths {
            prop_assert_eq!(
                c.read(p).unwrap(),
                synth_bytes(p, FILE_SIZE),
                "unreadable or corrupt key after {:?}",
                actions
            );
        }
        cluster.shutdown();
    }
}
