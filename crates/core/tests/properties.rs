//! Property tests for the failure detector and policy plumbing.

use ftc_core::{
    CacheNet, DetectorConfig, FailureDetector, FtConfig, FtPolicy, HvacClient, PlacementKind,
    RetryPolicy, ServerHandle, Verdict,
};
use ftc_hashring::NodeId;
use ftc_net::Network;
use ftc_storage::{synth_bytes, Pfs};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
enum Ev {
    Timeout(u8),
    Success(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u8..8).prop_map(Ev::Timeout),
        (0u8..8).prop_map(Ev::Success),
    ]
}

/// One fault rule a chaos case may apply to the 3-node rig before reading.
#[derive(Debug, Clone, Copy)]
enum Fault {
    Kill(u8),
    Flaky(u8, u8, u8),
    PartitionTo(u8),
    PartitionFrom(u8),
    Drop(u8),
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u8..3).prop_map(Fault::Kill),
        (0u8..3, 0u8..3, 1u8..4).prop_map(|(n, up, down)| Fault::Flaky(n, up, down)),
        (0u8..3).prop_map(Fault::PartitionTo),
        (0u8..3).prop_map(Fault::PartitionFrom),
        (0u8..101).prop_map(Fault::Drop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A node is declared failed iff some run of consecutive timeouts
    /// (uninterrupted by a success on that node) reaches the limit —
    /// checked against a reference interpreter of the event stream.
    #[test]
    fn detector_matches_reference(
        limit in 1u32..6,
        events in prop::collection::vec(ev_strategy(), 0..120),
    ) {
        // Effectively-infinite suspicion window: the reference model is
        // the artifact's pure consecutive counter.
        let mut det = FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(1),
            timeout_limit: limit,
            suspicion_window: Duration::from_secs(86_400),
        });
        let mut ref_counts = [0u32; 8];
        let mut ref_failed = [false; 8];
        for ev in &events {
            match *ev {
                Ev::Timeout(n) => {
                    let verdict = det.record_timeout_at(NodeId(n.into()), Instant::now());
                    if ref_failed[n as usize] {
                        prop_assert_eq!(verdict, Verdict::AlreadyFailed);
                    } else {
                        ref_counts[n as usize] += 1;
                        if ref_counts[n as usize] >= limit {
                            ref_failed[n as usize] = true;
                            prop_assert_eq!(verdict, Verdict::JustFailed);
                        } else {
                            prop_assert_eq!(
                                verdict,
                                Verdict::Suspect { count: ref_counts[n as usize] }
                            );
                        }
                    }
                }
                Ev::Success(n) => {
                    det.record_success(NodeId(n.into()));
                    if !ref_failed[n as usize] {
                        ref_counts[n as usize] = 0;
                    }
                }
            }
        }
        for n in 0..8u32 {
            prop_assert_eq!(det.is_failed(NodeId(n)), ref_failed[n as usize]);
        }
    }

    /// JustFailed is emitted exactly once per node per failure episode.
    #[test]
    fn just_failed_is_an_edge(
        limit in 1u32..5,
        timeouts in 1usize..40,
    ) {
        let mut det = FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(1),
            timeout_limit: limit,
            suspicion_window: Duration::from_secs(86_400),
        });
        let mut edges = 0;
        for _ in 0..timeouts {
            if det.record_timeout_at(NodeId(0), Instant::now()) == Verdict::JustFailed {
                edges += 1;
            }
        }
        prop_assert_eq!(edges, u32::from(timeouts as u32 >= limit) as usize);
    }

    /// `record_success` fully damps a partially-elapsed suspicion window:
    /// after a success, the node needs a whole fresh run of `limit`
    /// timeouts no matter how many were pending or how much time passed.
    #[test]
    fn success_damps_partial_window(
        limit in 2u32..6,
        pre in 1u32..8,
        gap_ms in 0u64..300,
    ) {
        let mut det = FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(1),
            timeout_limit: limit,
            suspicion_window: Duration::from_millis(100),
        });
        let n = NodeId(0);
        let base = Instant::now();
        for i in 0..pre.min(limit - 1) {
            det.record_timeout_at(n, base + Duration::from_millis(u64::from(i)));
        }
        prop_assert!(!det.is_failed(n));
        det.record_success(n);
        prop_assert_eq!(det.suspect_count(n), 0);
        for j in 0..limit - 1 {
            let at = base + Duration::from_millis(gap_ms + u64::from(j));
            prop_assert_eq!(
                det.record_timeout_at(n, at),
                Verdict::Suspect { count: j + 1 }
            );
        }
        prop_assert!(!det.is_failed(n));
    }

    /// Every placement kind built for any policy produces a live owner for
    /// any key until all nodes are removed.
    #[test]
    fn placements_stay_total(
        nodes in 1u32..32,
        kills in prop::collection::vec(0u32..32, 0..16),
        key in "[a-z0-9/._-]{1,48}",
    ) {
        for policy in [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache] {
            let mut p = PlacementKind::default_for(policy).build(nodes);
            let mut live = nodes as i64;
            for &k in &kills {
                let victim = NodeId(k % nodes);
                if p.contains(victim) && live > 1 {
                    p.remove_node(victim).unwrap();
                    live -= 1;
                }
            }
            let owner = p.owner(&key);
            prop_assert!(owner.is_some());
            prop_assert!(p.contains(owner.unwrap()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Livelock freedom: under ANY combination of kills, flaky links,
    /// asymmetric partitions, and i.i.d. loss, `read_traced` returns —
    /// with some outcome — after at most `max_attempts` timed-out RPCs.
    #[test]
    fn read_terminates_within_attempt_cap(
        policy_idx in 0u8..3,
        faults in prop::collection::vec(fault_strategy(), 0..6),
    ) {
        const CLIENT: NodeId = NodeId(100);
        const MAX_ATTEMPTS: u32 = 8;
        let policy =
            [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache][policy_idx as usize];
        let net: CacheNet = Network::instant(policy_idx as u64 + 1);
        let pfs = Arc::new(Pfs::in_memory());
        let files: Vec<String> = (0..4).map(|i| format!("train/s{i}.bin")).collect();
        for p in &files {
            pfs.stage(p, synth_bytes(p, 32));
        }
        let _servers: Vec<ServerHandle> = (0..3)
            .map(|i| {
                ServerHandle::spawn(NodeId(i), &net, Arc::clone(&pfs), u64::MAX)
                    .expect("spawn server")
            })
            .collect();
        let mut cfg = FtConfig::for_policy(policy);
        cfg.detector.ttl = Duration::from_millis(5);
        cfg.detector.timeout_limit = 2;
        cfg.detector.suspicion_window = Duration::from_secs(1);
        cfg.retry = RetryPolicy {
            max_attempts: MAX_ATTEMPTS,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            deadline_budget: Duration::from_millis(250),
        };
        let client = HvacClient::new(CLIENT, &net, Arc::clone(&pfs), 3, cfg);

        for f in &faults {
            match *f {
                Fault::Kill(n) => net.kill(NodeId(n.into())),
                Fault::Flaky(n, up, down) =>
                    net.set_flaky(NodeId(n.into()), up.into(), down.into()),
                Fault::PartitionTo(n) => net.partition_oneway(CLIENT, NodeId(n.into())),
                Fault::PartitionFrom(n) => net.partition_oneway(NodeId(n.into()), CLIENT),
                Fault::Drop(pct) => net.set_drop_prob(f64::from(pct) / 100.0),
            }
        }

        for p in &files {
            let before = client.metrics().snapshot().rpc_timeouts;
            let _ = client.read(p); // any outcome; *returning* is the property
            let spent = client.metrics().snapshot().rpc_timeouts - before;
            prop_assert!(
                spent <= u64::from(MAX_ATTEMPTS),
                "read of {} issued {} timed-out RPCs, cap is {}",
                p, spent, MAX_ATTEMPTS
            );
        }
    }
}
