//! Property tests for the failure detector and policy plumbing.

use ftc_core::{DetectorConfig, FailureDetector, FtPolicy, PlacementKind, Verdict};
use ftc_hashring::NodeId;
use proptest::prelude::*;
use std::time::Duration;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Timeout(u8),
    Success(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u8..8).prop_map(Ev::Timeout),
        (0u8..8).prop_map(Ev::Success),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A node is declared failed iff some run of consecutive timeouts
    /// (uninterrupted by a success on that node) reaches the limit —
    /// checked against a reference interpreter of the event stream.
    #[test]
    fn detector_matches_reference(
        limit in 1u32..6,
        events in prop::collection::vec(ev_strategy(), 0..120),
    ) {
        let mut det = FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(1),
            timeout_limit: limit,
        });
        let mut ref_counts = [0u32; 8];
        let mut ref_failed = [false; 8];
        for ev in &events {
            match *ev {
                Ev::Timeout(n) => {
                    let verdict = det.record_timeout(NodeId(n.into()));
                    if ref_failed[n as usize] {
                        prop_assert_eq!(verdict, Verdict::AlreadyFailed);
                    } else {
                        ref_counts[n as usize] += 1;
                        if ref_counts[n as usize] >= limit {
                            ref_failed[n as usize] = true;
                            prop_assert_eq!(verdict, Verdict::JustFailed);
                        } else {
                            prop_assert_eq!(
                                verdict,
                                Verdict::Suspect { count: ref_counts[n as usize] }
                            );
                        }
                    }
                }
                Ev::Success(n) => {
                    det.record_success(NodeId(n.into()));
                    if !ref_failed[n as usize] {
                        ref_counts[n as usize] = 0;
                    }
                }
            }
        }
        for n in 0..8u32 {
            prop_assert_eq!(det.is_failed(NodeId(n)), ref_failed[n as usize]);
        }
    }

    /// JustFailed is emitted exactly once per node per failure episode.
    #[test]
    fn just_failed_is_an_edge(
        limit in 1u32..5,
        timeouts in 1usize..40,
    ) {
        let mut det = FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(1),
            timeout_limit: limit,
        });
        let mut edges = 0;
        for _ in 0..timeouts {
            if det.record_timeout(NodeId(0)) == Verdict::JustFailed {
                edges += 1;
            }
        }
        prop_assert_eq!(edges, u32::from(timeouts as u32 >= limit) as usize);
    }

    /// Every placement kind built for any policy produces a live owner for
    /// any key until all nodes are removed.
    #[test]
    fn placements_stay_total(
        nodes in 1u32..32,
        kills in prop::collection::vec(0u32..32, 0..16),
        key in "[a-z0-9/._-]{1,48}",
    ) {
        for policy in [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache] {
            let mut p = PlacementKind::default_for(policy).build(nodes);
            let mut live = nodes as i64;
            for &k in &kills {
                let victim = NodeId(k % nodes);
                if p.contains(victim) && live > 1 {
                    p.remove_node(victim).unwrap();
                    live -= 1;
                }
            }
            let owner = p.owner(&key);
            prop_assert!(owner.is_some());
            prop_assert!(p.contains(owner.unwrap()));
        }
    }
}
