//! Property tests for the TCP codec of the cache protocol.
//!
//! The codec is the trust boundary of the real-socket deployment: a
//! malformed or hostile byte stream must produce a typed [`CodecError`],
//! never a panic or an attacker-sized allocation. Three properties pin
//! that down for every framed message type:
//!
//! 1. round trip — `decode_all(encode_vec(m)) == m`;
//! 2. prefix rejection — every *strict* prefix of a valid encoding fails
//!    to decode (no message is a prefix of another, so a torn read can
//!    never silently truncate a payload);
//! 3. garbage tolerance — `decode_all` of arbitrary bytes returns
//!    `Ok`/`Err` without panicking, and what it accepts re-encodes
//!    canonically.
//!
//! A frame-layer round trip through `write_frame`/`read_frame` covers the
//! full path a socket sees. The malformed-frame corpus (truncated length
//! prefix, oversized declared length, bad magic/version byte) lives next
//! to the frame code in `ftc-wire`.

use ftc_core::{CacheRequest, CacheResponse, ServeSource};
use ftc_storage::ValueBuf;
use ftc_wire::codec::Wire;
use ftc_wire::frame::{read_frame, write_frame, FrameKind};
use ftc_wire::DEFAULT_MAX_FRAME;
use proptest::prelude::*;

/// Build a `CacheRequest` from flattened draws (the shim has no enum
/// strategy; a selector byte picks the variant).
fn req_from(sel: u8, path: String, payload: Vec<u8>) -> CacheRequest {
    match sel % 5 {
        0 => CacheRequest::Read { path },
        1 => CacheRequest::Ping,
        2 => CacheRequest::Put {
            path,
            bytes: ValueBuf::from(payload),
        },
        3 => CacheRequest::Digest,
        _ => CacheRequest::Evict { path },
    }
}

/// Build a `CacheResponse` from flattened draws.
fn resp_from(
    sel: u8,
    path: String,
    payload: Vec<u8>,
    keys: Vec<String>,
    flag: bool,
) -> CacheResponse {
    match sel % 7 {
        0 => CacheResponse::Data {
            path,
            bytes: ValueBuf::from(payload),
            source: if flag {
                ServeSource::NvmeHit
            } else {
                ServeSource::PfsFetch
            },
        },
        1 => CacheResponse::NotFound { path },
        2 => CacheResponse::Pong,
        3 => CacheResponse::PutAck { path },
        4 => CacheResponse::DigestReply { keys },
        5 => CacheResponse::Overloaded,
        _ => CacheResponse::EvictAck {
            path,
            existed: flag,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Requests survive an encode/decode round trip bit-exactly.
    #[test]
    fn request_round_trips(
        sel in any::<u8>(),
        path in "[a-zA-Z0-9/_.-]{0,80}",
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let m = req_from(sel, path, payload);
        let bytes = m.encode_vec();
        prop_assert_eq!(CacheRequest::decode_all(&bytes).expect("round trip"), m);
    }

    /// Responses survive an encode/decode round trip bit-exactly.
    #[test]
    fn response_round_trips(
        sel in any::<u8>(),
        path in "[a-zA-Z0-9/_.-]{0,80}",
        payload in prop::collection::vec(any::<u8>(), 0..512),
        keys in prop::collection::vec("[a-z0-9/]{0,24}", 0..12),
        flag in any::<bool>(),
    ) {
        let m = resp_from(sel, path, payload, keys, flag);
        let bytes = m.encode_vec();
        prop_assert_eq!(CacheResponse::decode_all(&bytes).expect("round trip"), m);
    }

    /// No valid encoding decodes from a strict prefix of itself: a torn
    /// read can never be mistaken for a shorter complete message.
    #[test]
    fn strict_prefixes_never_decode(
        sel in any::<u8>(),
        path in "[a-zA-Z0-9/_.-]{0,40}",
        payload in prop::collection::vec(any::<u8>(), 0..64),
        keys in prop::collection::vec("[a-z0-9/]{0,12}", 0..6),
        flag in any::<bool>(),
        cut in any::<u16>(),
    ) {
        let req = req_from(sel, path.clone(), payload.clone()).encode_vec();
        let cut_at = (cut as usize) % req.len();
        prop_assert!(CacheRequest::decode_all(&req[..cut_at]).is_err());

        let resp = resp_from(sel, path, payload, keys, flag).encode_vec();
        let cut_at = (cut as usize) % resp.len();
        prop_assert!(CacheResponse::decode_all(&resp[..cut_at]).is_err());
    }

    /// Arbitrary bytes never panic the decoder, and anything it does
    /// accept re-encodes to exactly the bytes it consumed (the codec is
    /// canonical, so there is one byte string per message).
    #[test]
    fn garbage_never_panics_and_accepts_only_canonical(
        junk in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        if let Ok(m) = CacheRequest::decode_all(&junk) {
            prop_assert_eq!(m.encode_vec(), junk.clone());
        }
        if let Ok(m) = CacheResponse::decode_all(&junk) {
            prop_assert_eq!(m.encode_vec(), junk);
        }
    }

    /// The full socket path: a request framed by `write_frame` comes back
    /// through `read_frame` with kind, id and body intact.
    #[test]
    fn frames_round_trip_through_the_wire_layer(
        sel in any::<u8>(),
        path in "[a-zA-Z0-9/_.-]{0,80}",
        payload in prop::collection::vec(any::<u8>(), 0..512),
        id in any::<u64>(),
        kind_sel in any::<bool>(),
    ) {
        let m = req_from(sel, path, payload);
        let kind = if kind_sel { FrameKind::Request } else { FrameKind::Response };
        let mut wire = Vec::new();
        write_frame(&mut wire, kind, id, &m.encode_vec(), DEFAULT_MAX_FRAME)
            .expect("frame fits");
        let frame = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).expect("read back");
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.id, id);
        prop_assert_eq!(CacheRequest::decode_all(&frame.body).expect("body"), m);
    }
}
