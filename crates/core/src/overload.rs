//! Overload armor — graceful degradation under cascading load.
//!
//! The ring keeps serving through node *death*; this module defends
//! against the nastier regime: nodes that are slow-but-alive, retry
//! storms after an incident, and recache traffic that itself triggers
//! suspicion. Four building blocks, shared by the in-process fabric and
//! the TCP wire because they all sit above the transport seam:
//!
//! * [`AdmissionQueue`] — server side: a bounded, priority-classed
//!   request queue. Work is shed (a typed `Overloaded` reply, *not* a
//!   timeout) when a class queue is full or when, at pop time, the time
//!   already spent queued plus the EWMA service-time estimate exceeds
//!   the client's assumed deadline — serving it would only burn cycles
//!   on a reply the caller has stopped waiting for.
//! * [`CircuitBreaker`] — client side, per node: closed → open on
//!   consecutive failures, open → half-open after a cool-off, half-open
//!   admits exactly a probe quota. Short-circuited calls never hit the
//!   wire, so a struggling node sees its offered load collapse instead
//!   of compound.
//! * [`RetryBudget`] — client side: a token bucket that every *retry*
//!   (never a first attempt) must pay for, replacing unconditional
//!   `RetryPolicy` retries. A cluster-wide incident then costs at most
//!   `capacity + refill·t` extra requests instead of `attempts × load`.
//! * [`HedgeConfig`] — client side: after a latency-derived p99 delay, a
//!   read is hedged to the next replica owner and the first success
//!   wins; the armor disables hedging in brownout so the cure cannot
//!   become the disease.
//!
//! Every struct takes explicit `now: Instant` readings so the whole
//! layer runs deterministically on the virtual clock.

use crate::proto::CacheRequest;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Default per-class admission queue capacity when armored.
pub const DEFAULT_ADMISSION_CAPACITY: usize = 64;
/// Default client-deadline assumption for deadline-aware shedding.
pub const DEFAULT_ASSUMED_TTL: Duration = Duration::from_millis(100);
/// Default EWMA smoothing factor for the service-time estimate.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.2;
/// Default consecutive failures that trip a breaker open.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 5;
/// Default cool-off before an open breaker admits probes.
pub const DEFAULT_BREAKER_OPEN_FOR: Duration = Duration::from_millis(200);
/// Default probe quota while half-open.
pub const DEFAULT_BREAKER_PROBES: u32 = 2;
/// Default retry-budget deposit (tokens).
pub const DEFAULT_BUDGET_CAPACITY: f64 = 32.0;
/// Default retry-budget refill rate (tokens/second).
pub const DEFAULT_BUDGET_REFILL: f64 = 50.0;
/// Default clamp bounds for the hedge delay.
pub const DEFAULT_HEDGE_MIN_DELAY: Duration = Duration::from_micros(200);
/// Default upper clamp for the hedge delay (also the cold-start value
/// before any latency samples exist).
pub const DEFAULT_HEDGE_MAX_DELAY: Duration = Duration::from_millis(20);
/// Read latencies remembered for the hedge-delay p99.
pub const HEDGE_WINDOW: usize = 256;

// ---------------------------------------------------------------------------
// Priority classes
// ---------------------------------------------------------------------------

/// Admission priority of one request. Foreground reads outrank the
/// background traffic (recache pushes, anti-entropy digests/evicts,
/// hint drains) that a recovering cluster generates in bursts; control
/// probes are never shed, so a breaker's half-open probe or the
/// readmission prober always learns the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Liveness probes (`Ping`): tiny, and shedding one would turn
    /// "overloaded" into "suspect dead" on the prober.
    Control,
    /// Training-path reads: the SLO traffic.
    Foreground,
    /// Recache / anti-entropy / replication writes: retryable by their
    /// own engines, so they absorb the shedding first.
    Background,
}

/// The admission class of a protocol request.
pub fn priority_of(req: &CacheRequest) -> Priority {
    match req {
        CacheRequest::Ping => Priority::Control,
        CacheRequest::Read { .. } => Priority::Foreground,
        CacheRequest::Put { .. } | CacheRequest::Digest | CacheRequest::Evict { .. } => {
            Priority::Background
        }
    }
}

// ---------------------------------------------------------------------------
// EWMA service-time estimator
// ---------------------------------------------------------------------------

/// Exponentially-weighted moving average of observed service times.
/// Seeded lazily by the first observation (no prior), so a cold server
/// never sheds on a fantasy estimate.
#[derive(Debug, Clone, Copy)]
pub struct EwmaEstimator {
    alpha: f64,
    mean_us: Option<f64>,
}

impl EwmaEstimator {
    /// Estimator with smoothing factor `alpha` in (0, 1].
    pub fn new(alpha: f64) -> Self {
        EwmaEstimator {
            alpha: alpha.clamp(1e-6, 1.0),
            mean_us: None,
        }
    }

    /// Fold one measured service time into the estimate.
    pub fn observe(&mut self, took: Duration) {
        let us = took.as_secs_f64() * 1e6;
        self.mean_us = Some(match self.mean_us {
            None => us,
            Some(m) => m + self.alpha * (us - m),
        });
    }

    /// Current estimate; zero before the first observation.
    pub fn estimate(&self) -> Duration {
        match self.mean_us {
            None => Duration::ZERO,
            Some(us) => Duration::from_secs_f64((us / 1e6).max(0.0)),
        }
    }
}

// ---------------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------------

/// Server-side admission tuning. The default is *disabled*: requests are
/// served in arrival order with no shedding, byte-identical to the
/// pre-armor server. [`AdmissionConfig::armored`] turns the queue on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Whether admission control is active at all.
    pub enabled: bool,
    /// Per-class queue capacity; a full class sheds at enqueue.
    pub queue_capacity: usize,
    /// Shed at pop when `queue_wait + ewma_estimate > assumed_ttl`
    /// (the caller has a deadline; serving past it is pure waste).
    pub deadline_aware: bool,
    /// The per-RPC deadline clients are assumed to run with — the wire
    /// does not carry deadlines, so the server mirrors the detector TTL.
    pub assumed_ttl: Duration,
    /// EWMA smoothing factor for the service-time estimate.
    pub ewma_alpha: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            queue_capacity: DEFAULT_ADMISSION_CAPACITY,
            deadline_aware: false,
            assumed_ttl: DEFAULT_ASSUMED_TTL,
            ewma_alpha: DEFAULT_EWMA_ALPHA,
        }
    }
}

impl AdmissionConfig {
    /// Armored preset: bounded queues, deadline-aware shedding against
    /// `assumed_ttl`.
    pub fn armored(assumed_ttl: Duration) -> Self {
        AdmissionConfig {
            enabled: true,
            deadline_aware: true,
            assumed_ttl,
            ..Default::default()
        }
    }
}

/// Why the admission queue shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The class queue was at capacity when the request arrived.
    QueueFull,
    /// At pop, queue wait + estimated service time exceeded the assumed
    /// client deadline.
    DeadlineHopeless,
}

/// One queued item: the payload plus its admission stamp and class.
struct Admitted<T> {
    item: T,
    enqueued: Instant,
}

/// A bounded, priority-classed admission queue with deadline-aware
/// shedding. Pure data structure — the server's event loop feeds it
/// `(item, priority, now)` and drains it with `pop(now)`; all shedding
/// decisions come back as values so the caller owns the `Overloaded`
/// replies and the shed accounting.
pub struct AdmissionQueue<T> {
    config: AdmissionConfig,
    ewma: EwmaEstimator,
    // One VecDeque per priority class, indexed by Priority discriminant
    // order (Control, Foreground, Background). Bounded by
    // `config.queue_capacity` at push — never grows past it.
    classes: [VecDeque<Admitted<T>>; 3],
}

impl<T> AdmissionQueue<T> {
    /// Empty queue under `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        let cap = config.queue_capacity.min(4096);
        AdmissionQueue {
            ewma: EwmaEstimator::new(config.ewma_alpha),
            classes: std::array::from_fn(|_| VecDeque::with_capacity(cap.min(64))),
            config,
        }
    }

    fn class_index(p: Priority) -> usize {
        match p {
            Priority::Control => 0,
            Priority::Foreground => 1,
            Priority::Background => 2,
        }
    }

    /// Total queued items across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offer one item. `Err` returns the item with the shed reason —
    /// control traffic is never capacity-shed.
    pub fn push(
        &mut self,
        item: T,
        priority: Priority,
        now: Instant,
    ) -> Result<(), (T, ShedReason)> {
        let q = &mut self.classes[Self::class_index(priority)];
        if priority != Priority::Control && q.len() >= self.config.queue_capacity {
            return Err((item, ShedReason::QueueFull));
        }
        q.push_back(Admitted {
            item,
            enqueued: now,
        });
        Ok(())
    }

    /// Take the next serveable item, highest class first. Items whose
    /// deadline is already hopeless are returned as sheds instead.
    pub fn pop(&mut self, now: Instant) -> Option<Result<T, (T, ShedReason)>> {
        let est = self.ewma.estimate();
        for (ci, q) in self.classes.iter_mut().enumerate() {
            let Some(adm) = q.pop_front() else { continue };
            let control = ci == Self::class_index(Priority::Control);
            if self.config.deadline_aware && !control {
                let waited = now.saturating_duration_since(adm.enqueued);
                if waited + est > self.config.assumed_ttl {
                    return Some(Err((adm.item, ShedReason::DeadlineHopeless)));
                }
            }
            return Some(Ok(adm.item));
        }
        None
    }

    /// Record a measured service time into the EWMA.
    pub fn observe_service(&mut self, took: Duration) {
        self.ewma.observe(took);
    }

    /// The current service-time estimate (zero before any observation).
    pub fn service_estimate(&self) -> Duration {
        self.ewma.estimate()
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Per-node circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker refuses traffic before going half-open.
    pub open_for: Duration,
    /// Probe quota admitted while half-open; one success closes, one
    /// failure re-opens.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: DEFAULT_BREAKER_THRESHOLD,
            open_for: DEFAULT_BREAKER_OPEN_FOR,
            half_open_probes: DEFAULT_BREAKER_PROBES,
        }
    }
}

/// Breaker states. `Open` stores its reopen time; `HalfOpen` counts the
/// probes it has admitted against the quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service; counts consecutive failures.
    Closed {
        /// Consecutive failures so far.
        failures: u32,
    },
    /// Refusing all traffic until the cool-off lapses.
    Open {
        /// When the breaker transitions to half-open.
        until: Instant,
    },
    /// Admitting a bounded probe quota to test the node.
    HalfOpen {
        /// Probes admitted so far.
        probes_used: u32,
    },
}

/// One node's circuit breaker. All transitions take an explicit `now`
/// so the machine is a pure function of its inputs — testable and
/// deterministic under the virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// Current state (for metrics and tests).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a call to this node proceed right now? An open breaker whose
    /// cool-off has lapsed transitions to half-open and admits a probe.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } => {
                if now < until {
                    false
                } else {
                    self.state = BreakerState::HalfOpen { probes_used: 1 };
                    true
                }
            }
            BreakerState::HalfOpen { probes_used } => {
                if probes_used < self.config.half_open_probes {
                    self.state = BreakerState::HalfOpen {
                        probes_used: probes_used + 1,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A call to the node succeeded: a half-open probe success closes
    /// the breaker; a closed success clears the failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// A call failed (timeout / disconnect / shed): a half-open probe
    /// failure re-opens; closed failures accumulate toward the trip.
    pub fn on_failure(&mut self, now: Instant) {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.config.open_for,
                    };
                } else {
                    self.state = BreakerState::Closed { failures };
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open {
                    until: now + self.config.open_for,
                };
            }
            BreakerState::Open { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Retry budget
// ---------------------------------------------------------------------------

/// Retry-budget tuning: a token bucket spent by retries only.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetConfig {
    /// Bucket capacity (the deposit) in tokens.
    pub capacity: f64,
    /// Refill rate, tokens per second.
    pub refill_per_sec: f64,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            capacity: DEFAULT_BUDGET_CAPACITY,
            refill_per_sec: DEFAULT_BUDGET_REFILL,
        }
    }
}

/// A token bucket that bounds retry amplification: every retry must
/// `try_spend` one token; first attempts are free. When the bucket runs
/// dry the caller degrades (PFS fallback / typed error) instead of
/// hammering a struggling cluster.
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    config: BudgetConfig,
    tokens: f64,
    last_refill: Instant,
    spent: u64,
    denied: u64,
}

impl RetryBudget {
    /// A full bucket, refill clock anchored at `now`.
    pub fn new(config: BudgetConfig, now: Instant) -> Self {
        RetryBudget {
            tokens: config.capacity.max(0.0),
            config,
            last_refill: now,
            spent: 0,
            denied: 0,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.config.refill_per_sec).min(self.config.capacity);
    }

    /// Spend one token for a retry; `false` means the budget is
    /// exhausted and the retry must not be sent.
    pub fn try_spend(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.spent += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// `(spent, denied)` lifetime totals.
    pub fn totals(&self) -> (u64, u64) {
        (self.spent, self.denied)
    }
}

// ---------------------------------------------------------------------------
// Hedged reads
// ---------------------------------------------------------------------------

/// Hedged-read tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// Whether hedging is active.
    pub enabled: bool,
    /// Lower clamp on the hedge delay.
    pub min_delay: Duration,
    /// Upper clamp on the hedge delay; also the cold-start delay before
    /// any latency samples exist.
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: false,
            min_delay: DEFAULT_HEDGE_MIN_DELAY,
            max_delay: DEFAULT_HEDGE_MAX_DELAY,
        }
    }
}

// ---------------------------------------------------------------------------
// The whole armor, as one config
// ---------------------------------------------------------------------------

/// Client-side overload armor configuration, carried inside
/// [`crate::policy::FtConfig`]. The default is fully disarmed — every
/// pre-armor test and campaign behaves byte-identically — and
/// [`OverloadConfig::armored`] turns the whole pipeline on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master switch for breaker + budget + hedging on the client.
    pub armored: bool,
    /// Per-node circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Retry token-budget tuning.
    pub budget: BudgetConfig,
    /// Hedged-read tuning.
    pub hedge: HedgeConfig,
    /// Self-test sabotage: misclassify `Overloaded` replies as failure
    /// evidence for the detector — exactly the bug the typed shed reply
    /// exists to prevent, so the chaos harness can prove its
    /// shedding-node-declared-dead invariant actually fires. Never set
    /// outside `--sabotage-shed`.
    #[serde(default)]
    pub shed_counts_as_failure: bool,
}

impl OverloadConfig {
    /// Armored preset: breaker + retry budget + hedged reads all on.
    pub fn armored() -> Self {
        OverloadConfig {
            armored: true,
            hedge: HedgeConfig {
                enabled: true,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Instant;

    fn t0() -> Instant {
        Instant::now()
    }

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn priorities_classify_the_protocol() {
        assert_eq!(priority_of(&CacheRequest::Ping), Priority::Control);
        assert_eq!(
            priority_of(&CacheRequest::Read { path: "a".into() }),
            Priority::Foreground
        );
        assert_eq!(priority_of(&CacheRequest::Digest), Priority::Background);
        assert_eq!(
            priority_of(&CacheRequest::Evict { path: "a".into() }),
            Priority::Background
        );
        assert!(Priority::Control < Priority::Foreground);
        assert!(Priority::Foreground < Priority::Background);
    }

    #[test]
    fn ewma_tracks_and_smooths() {
        let mut e = EwmaEstimator::new(0.5);
        assert_eq!(e.estimate(), Duration::ZERO);
        e.observe(Duration::from_micros(100));
        assert_eq!(e.estimate(), Duration::from_micros(100));
        e.observe(Duration::from_micros(300));
        // 100 + 0.5 * (300 - 100) = 200
        assert_eq!(e.estimate().as_micros(), 200);
    }

    #[test]
    fn admission_sheds_on_capacity_but_never_control() {
        let cfg = AdmissionConfig {
            enabled: true,
            queue_capacity: 2,
            ..Default::default()
        };
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(cfg);
        let now = t0();
        assert!(q.push(1, Priority::Foreground, now).is_ok());
        assert!(q.push(2, Priority::Foreground, now).is_ok());
        let (item, reason) = q.push(3, Priority::Foreground, now).unwrap_err();
        assert_eq!((item, reason), (3, ShedReason::QueueFull));
        // Control is exempt from the capacity shed.
        assert!(q.push(90, Priority::Control, now).is_ok());
        assert!(q.push(91, Priority::Control, now).is_ok());
        assert!(q.push(92, Priority::Control, now).is_ok());
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn pop_orders_control_foreground_background() {
        let mut q: AdmissionQueue<&str> = AdmissionQueue::new(AdmissionConfig::default());
        let now = t0();
        q.push("bg", Priority::Background, now).unwrap();
        q.push("fg", Priority::Foreground, now).unwrap();
        q.push("ctl", Priority::Control, now).unwrap();
        assert_eq!(q.pop(now).unwrap().unwrap(), "ctl");
        assert_eq!(q.pop(now).unwrap().unwrap(), "fg");
        assert_eq!(q.pop(now).unwrap().unwrap(), "bg");
        assert!(q.pop(now).is_none());
    }

    #[test]
    fn deadline_aware_pop_sheds_hopeless_work() {
        let cfg = AdmissionConfig {
            enabled: true,
            deadline_aware: true,
            assumed_ttl: 10 * MS,
            ..Default::default()
        };
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(cfg);
        let now = t0();
        // Teach the EWMA an 8ms service time.
        q.observe_service(8 * MS);
        q.push(1, Priority::Foreground, now).unwrap();
        q.push(2, Priority::Control, now).unwrap();
        // 5ms queued + 8ms estimate > 10ms ttl → the read is hopeless,
        // but the control probe is still served.
        let later = now + 5 * MS;
        assert_eq!(
            q.pop(later).unwrap().unwrap(),
            2,
            "control first, never shed"
        );
        let (item, reason) = q.pop(later).unwrap().unwrap_err();
        assert_eq!((item, reason), (1, ShedReason::DeadlineHopeless));
        // Within deadline it serves normally.
        q.push(3, Priority::Foreground, later).unwrap();
        assert_eq!(q.pop(later + MS).unwrap().unwrap(), 3);
    }

    #[test]
    fn disabled_default_config_never_deadline_sheds() {
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(AdmissionConfig::default());
        let now = t0();
        q.observe_service(Duration::from_secs(10));
        q.push(1, Priority::Foreground, now).unwrap();
        assert_eq!(
            q.pop(now + Duration::from_secs(5)).unwrap().unwrap(),
            1,
            "deadline shedding is opt-in"
        );
    }

    #[test]
    fn breaker_trips_cools_probes_and_closes() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_for: 100 * MS,
            half_open_probes: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        let now = t0();
        for _ in 0..3 {
            assert!(b.allow(now));
            b.on_failure(now);
        }
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert!(!b.allow(now), "open refuses traffic");
        assert!(!b.allow(now + 99 * MS), "still cooling off");
        // Cool-off lapsed: half-open admits exactly the probe quota.
        assert!(b.allow(now + 100 * MS));
        assert!(b.allow(now + 100 * MS));
        assert!(!b.allow(now + 100 * MS), "probe quota exhausted");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
        assert!(b.allow(now + 101 * MS));
    }

    #[test]
    fn half_open_failure_reopens() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_for: 10 * MS,
            half_open_probes: 1,
        };
        let mut b = CircuitBreaker::new(cfg);
        let now = t0();
        b.on_failure(now);
        assert!(b.allow(now + 10 * MS), "half-open probe admitted");
        b.on_failure(now + 10 * MS);
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        assert!(!b.allow(now + 15 * MS));
    }

    #[test]
    fn budget_spends_denies_and_refills() {
        let cfg = BudgetConfig {
            capacity: 2.0,
            refill_per_sec: 1.0,
        };
        let now = t0();
        let mut budget = RetryBudget::new(cfg, now);
        assert!(budget.try_spend(now));
        assert!(budget.try_spend(now));
        assert!(!budget.try_spend(now), "deposit exhausted");
        assert_eq!(budget.totals(), (2, 1));
        // 1.5s of idle refills 1.5 tokens (capped at capacity).
        assert!(budget.try_spend(now + Duration::from_millis(1500)));
        assert!(!budget.try_spend(now + Duration::from_millis(1500)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The breaker never serves from the open state: between a trip
        /// and the cool-off lapse, every `allow` is false no matter the
        /// event sequence that got it there.
        #[test]
        fn breaker_never_serves_from_open(
            threshold in 1u32..6,
            open_ms in 1u64..500,
            probes in 1u32..4,
            events in prop::collection::vec(any::<u8>(), 1..64),
        ) {
            let cfg = BreakerConfig {
                failure_threshold: threshold,
                open_for: Duration::from_millis(open_ms),
                half_open_probes: probes,
            };
            let mut b = CircuitBreaker::new(cfg);
            let base = t0();
            let mut now = base;
            for ev in events {
                now += Duration::from_millis(u64::from(ev % 50));
                if let BreakerState::Open { until } = b.state() {
                    let allowed = b.allow(now);
                    if now < until {
                        prop_assert!(!allowed, "served from an open breaker");
                    } else {
                        prop_assert!(allowed, "first post-cool-off probe admitted");
                    }
                    continue;
                }
                match ev % 3 {
                    0 => { let _ = b.allow(now); }
                    1 => b.on_failure(now),
                    _ => b.on_success(),
                }
            }
        }

        /// Half-open admits exactly the probe quota: once the cool-off
        /// lapses, precisely `half_open_probes` calls pass before a
        /// verdict, regardless of how many more are attempted.
        #[test]
        fn half_open_admits_exactly_the_quota(
            threshold in 1u32..4,
            probes in 1u32..6,
            attempts in 6u32..32,
        ) {
            let cfg = BreakerConfig {
                failure_threshold: threshold,
                open_for: Duration::from_millis(10),
                half_open_probes: probes,
            };
            let mut b = CircuitBreaker::new(cfg);
            let now = t0();
            for _ in 0..threshold {
                b.on_failure(now);
            }
            prop_assert!(matches!(b.state(), BreakerState::Open { .. }));
            let reopened = now + Duration::from_millis(10);
            let admitted = (0..attempts.max(probes + 1))
                .filter(|_| b.allow(reopened))
                .count() as u32;
            prop_assert_eq!(admitted, probes);
        }

        /// Budget safety: tokens spent never exceed the deposit plus the
        /// refill accrued over the elapsed time (no retry amplification
        /// beyond the configured bound), and an idle stretch refills.
        #[test]
        fn budget_spend_never_exceeds_deposit_plus_refill(
            capacity in 1u32..64,
            refill_centi in 0u32..2000,
            gaps_ms in prop::collection::vec(0u64..200, 1..128),
        ) {
            let cfg = BudgetConfig {
                capacity: f64::from(capacity),
                refill_per_sec: f64::from(refill_centi) / 100.0,
            };
            let base = t0();
            let mut budget = RetryBudget::new(cfg, base);
            let mut now = base;
            for gap in gaps_ms {
                now += Duration::from_millis(gap);
                let _ = budget.try_spend(now);
            }
            let (spent, _denied) = budget.totals();
            let elapsed = now.saturating_duration_since(base).as_secs_f64();
            let ceiling = f64::from(capacity) + cfg.refill_per_sec * elapsed;
            prop_assert!(
                (spent as f64) <= ceiling + 1.0,
                "spent {} > deposit+refill {}", spent, ceiling
            );
        }

        /// Budget liveness: after the bucket runs dry, a long-enough idle
        /// stretch always restores at least one token.
        #[test]
        fn budget_refills_after_idle(capacity in 1u32..16) {
            let cfg = BudgetConfig {
                capacity: f64::from(capacity),
                refill_per_sec: 2.0,
            };
            let base = t0();
            let mut budget = RetryBudget::new(cfg, base);
            let mut now = base;
            while budget.try_spend(now) {}
            prop_assert!(!budget.try_spend(now));
            now += Duration::from_secs(1);
            prop_assert!(budget.try_spend(now), "idle second refills 2 tokens");
        }
    }
}
