//! Typed errors for cluster and server lifecycle operations.
//!
//! Boot and revive paths used to `expect()` on thread spawning; under OS
//! resource exhaustion that panicked the whole harness mid-campaign. These
//! errors surface the failure to the caller, who can record it (the chaos
//! harness counts a failed boot as a violation) or abort cleanly.

use ftc_hashring::NodeId;
use std::fmt;
use std::io;

/// Failures surfaced by cluster and server lifecycle operations.
#[derive(Debug)]
pub enum CoreError {
    /// Spawning a background thread failed (typically OS thread or memory
    /// exhaustion).
    Spawn {
        /// What was being spawned (e.g. `"hvac server"`, `"data mover"`).
        what: &'static str,
        /// The node the thread belongs to.
        node: NodeId,
        /// The underlying OS error.
        source: io::Error,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Spawn { what, node, source } => {
                write!(f, "failed to spawn {what} for {node}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Spawn { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::Spawn {
            what: "hvac server",
            node: NodeId(3),
            source: io::Error::new(io::ErrorKind::OutOfMemory, "no threads"),
        };
        let msg = e.to_string();
        assert!(msg.contains("hvac server"), "{msg}");
        assert!(msg.contains("n3"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
