//! The FT-Cache wire protocol.
//!
//! HVAC's client intercepts `open/read/close` via `LD_PRELOAD` and turns
//! them into RPCs; the substrate here starts at the RPC boundary. One
//! request kind matters — `Read` — plus a `Ping` used by liveness probes
//! in tests.

use bytes::Bytes;
use ftc_net::Payload;
use serde::{Deserialize, Serialize};

/// Where the server found the bytes it served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeSource {
    /// Served from the server's node-local NVMe cache.
    NvmeHit,
    /// Missed NVMe; fetched from the PFS (and handed to the data mover to
    /// recache). After a failure this is the "first epoch after the
    /// failure where the lost files are not yet cached" path of §IV-B.
    PfsFetch,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheRequest {
    /// Read a whole file by dataset-relative path.
    Read {
        /// The file path (also the placement key).
        path: String,
    },
    /// Liveness probe.
    Ping,
    /// Store a replica of a file (the optional write-through replication
    /// extension: clients push PFS-fetched files to the next ring
    /// successors so a failure needs no PFS fallback at all).
    Put {
        /// The file path.
        path: String,
        /// The file bytes.
        bytes: Bytes,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheResponse {
    /// File contents.
    Data {
        /// Echoed path.
        path: String,
        /// The file bytes.
        bytes: Bytes,
        /// Which tier produced them.
        source: ServeSource,
    },
    /// The file exists nowhere (not cached, not on the PFS).
    NotFound {
        /// Echoed path.
        path: String,
    },
    /// Liveness reply.
    Pong,
    /// Replica stored.
    PutAck {
        /// Echoed path.
        path: String,
    },
}

impl Payload for CacheRequest {
    fn wire_size(&self) -> usize {
        match self {
            CacheRequest::Read { path } => 32 + path.len(),
            CacheRequest::Ping => 16,
            CacheRequest::Put { path, bytes } => 48 + path.len() + bytes.len(),
        }
    }
}

impl Payload for CacheResponse {
    fn wire_size(&self) -> usize {
        match self {
            CacheResponse::Data { path, bytes, .. } => 48 + path.len() + bytes.len(),
            CacheResponse::NotFound { path } => 32 + path.len(),
            CacheResponse::Pong => 16,
            CacheResponse::PutAck { path } => 32 + path.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_track_payloads() {
        let r = CacheRequest::Read { path: "abc".into() };
        assert_eq!(r.wire_size(), 35);
        assert_eq!(CacheRequest::Ping.wire_size(), 16);

        let d = CacheResponse::Data {
            path: "abc".into(),
            bytes: Bytes::from_static(&[0u8; 100]),
            source: ServeSource::NvmeHit,
        };
        assert_eq!(d.wire_size(), 48 + 3 + 100);
        assert_eq!(
            CacheResponse::NotFound {
                path: "abcd".into()
            }
            .wire_size(),
            36
        );
        assert_eq!(CacheResponse::Pong.wire_size(), 16);
        let put = CacheRequest::Put {
            path: "ab".into(),
            bytes: Bytes::from_static(&[0u8; 10]),
        };
        assert_eq!(put.wire_size(), 60);
        assert_eq!(CacheResponse::PutAck { path: "ab".into() }.wire_size(), 34);
    }
}
