//! The FT-Cache wire protocol.
//!
//! HVAC's client intercepts `open/read/close` via `LD_PRELOAD` and turns
//! them into RPCs; the substrate here starts at the RPC boundary. One
//! request kind matters — `Read` — plus a `Ping` used by liveness probes
//! in tests.

use ftc_net::Payload;
use ftc_storage::ValueBuf;
use ftc_wire::codec::{put_bytes, put_str, put_u32, ByteView, CodecError, Reader, Wire};
use serde::{Deserialize, Serialize};

/// Where the server found the bytes it served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeSource {
    /// Served from the server's node-local NVMe cache.
    NvmeHit,
    /// Missed NVMe; fetched from the PFS (and handed to the data mover to
    /// recache). After a failure this is the "first epoch after the
    /// failure where the lost files are not yet cached" path of §IV-B.
    PfsFetch,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheRequest {
    /// Read a whole file by dataset-relative path.
    Read {
        /// The file path (also the placement key).
        path: String,
    },
    /// Liveness probe.
    Ping,
    /// Store a replica of a file (the optional write-through replication
    /// extension: clients push PFS-fetched files to the next ring
    /// successors so a failure needs no PFS fallback at all).
    Put {
        /// The file path.
        path: String,
        /// The file bytes (shared buffer — cloning a request is cheap).
        bytes: ValueBuf,
    },
    /// Ask the node for a digest of its NVMe contents — the warm-rejoin
    /// anti-entropy exchange: a revived node that kept its disk announces
    /// what survived, and the recovery engine reconciles it against the
    /// current ring epoch.
    Digest,
    /// Drop one cached object (anti-entropy: the key is no longer owned
    /// by this node under the current ring, so holding it would waste
    /// NVMe and risk serving a key the placement routed elsewhere).
    Evict {
        /// The file path.
        path: String,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheResponse {
    /// File contents.
    Data {
        /// Echoed path.
        path: String,
        /// The file bytes: a shared window over the cache's (or, on the
        /// receive side, the wire frame's) allocation — replies clone
        /// without copying the value.
        bytes: ValueBuf,
        /// Which tier produced them.
        source: ServeSource,
    },
    /// The file exists nowhere (not cached, not on the PFS).
    NotFound {
        /// Echoed path.
        path: String,
    },
    /// Liveness reply.
    Pong,
    /// Replica stored.
    PutAck {
        /// Echoed path.
        path: String,
    },
    /// The node's surviving NVMe contents (warm-rejoin digest).
    DigestReply {
        /// Cached keys, sorted ascending.
        keys: Vec<String>,
    },
    /// Eviction outcome.
    EvictAck {
        /// Echoed path.
        path: String,
        /// Whether the object was resident.
        existed: bool,
    },
    /// The server shed this request under load (admission control):
    /// its queue was full, or the request's remaining deadline was below
    /// the estimated service time. The node is alive — clients map this
    /// to [`ftc_net::RpcError::Overloaded`]-style handling, never to the
    /// failure detector.
    Overloaded,
}

impl Payload for CacheRequest {
    fn wire_size(&self) -> usize {
        match self {
            CacheRequest::Read { path } => 32 + path.len(),
            CacheRequest::Ping => 16,
            CacheRequest::Put { path, bytes } => 48 + path.len() + bytes.len(),
            CacheRequest::Digest => 16,
            CacheRequest::Evict { path } => 32 + path.len(),
        }
    }
}

impl Payload for CacheResponse {
    fn wire_size(&self) -> usize {
        match self {
            CacheResponse::Data { path, bytes, .. } => 48 + path.len() + bytes.len(),
            CacheResponse::NotFound { path } => 32 + path.len(),
            CacheResponse::Pong => 16,
            CacheResponse::PutAck { path } => 32 + path.len(),
            CacheResponse::DigestReply { keys } => {
                32 + keys.iter().map(|k| 8 + k.len()).sum::<usize>()
            }
            CacheResponse::EvictAck { path, .. } => 33 + path.len(),
            CacheResponse::Overloaded => 16,
        }
    }
}

// ---------------------------------------------------------------------------
// TCP codec (ftc-wire). One tag byte per variant, then the fields in
// declaration order. The tag spaces of request and response are
// independent — the frame layer already says which side a body is.
// ---------------------------------------------------------------------------

/// A decoded wire span as a [`ValueBuf`]: when the frame body was read
/// into a shared allocation (`decode_all_shared`, the TCP hot path) this
/// is zero-copy — the value is a window into the frame itself.
fn view_to_value(view: ByteView) -> ValueBuf {
    let (data, off, len) = view.into_parts();
    ValueBuf::from_shared(data, off, len)
}

impl ServeSource {
    fn tag(self) -> u8 {
        match self {
            ServeSource::NvmeHit => 1,
            ServeSource::PfsFetch => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            1 => Ok(ServeSource::NvmeHit),
            2 => Ok(ServeSource::PfsFetch),
            tag => Err(CodecError::BadTag {
                what: "ServeSource",
                tag,
            }),
        }
    }
}

impl Wire for CacheRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CacheRequest::Read { path } => {
                out.push(1);
                put_str(out, path);
            }
            CacheRequest::Ping => out.push(2),
            CacheRequest::Put { path, bytes } => {
                out.push(3);
                put_str(out, path);
                put_bytes(out, bytes);
            }
            CacheRequest::Digest => out.push(4),
            CacheRequest::Evict { path } => {
                out.push(5);
                put_str(out, path);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8("CacheRequest tag")? {
            1 => Ok(CacheRequest::Read {
                path: r.string("Read.path")?,
            }),
            2 => Ok(CacheRequest::Ping),
            3 => Ok(CacheRequest::Put {
                path: r.string("Put.path")?,
                bytes: view_to_value(r.view("Put.bytes")?),
            }),
            4 => Ok(CacheRequest::Digest),
            5 => Ok(CacheRequest::Evict {
                path: r.string("Evict.path")?,
            }),
            tag => Err(CodecError::BadTag {
                what: "CacheRequest",
                tag,
            }),
        }
    }
}

impl Wire for CacheResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CacheResponse::Data {
                path,
                bytes,
                source,
            } => {
                out.push(1);
                put_str(out, path);
                put_bytes(out, bytes);
                out.push(source.tag());
            }
            CacheResponse::NotFound { path } => {
                out.push(2);
                put_str(out, path);
            }
            CacheResponse::Pong => out.push(3),
            CacheResponse::PutAck { path } => {
                out.push(4);
                put_str(out, path);
            }
            CacheResponse::DigestReply { keys } => {
                out.push(5);
                put_u32(out, keys.len() as u32);
                for k in keys {
                    put_str(out, k);
                }
            }
            CacheResponse::EvictAck { path, existed } => {
                out.push(6);
                put_str(out, path);
                out.push(u8::from(*existed));
            }
            CacheResponse::Overloaded => out.push(7),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8("CacheResponse tag")? {
            1 => Ok(CacheResponse::Data {
                path: r.string("Data.path")?,
                bytes: view_to_value(r.view("Data.bytes")?),
                source: ServeSource::from_tag(r.u8("Data.source")?)?,
            }),
            2 => Ok(CacheResponse::NotFound {
                path: r.string("NotFound.path")?,
            }),
            3 => Ok(CacheResponse::Pong),
            4 => Ok(CacheResponse::PutAck {
                path: r.string("PutAck.path")?,
            }),
            5 => {
                let n = r.u32("DigestReply.len")? as usize;
                // Cap the pre-allocation by what the body could possibly
                // hold (2 bytes minimum per entry): a hostile count
                // cannot balloon memory ahead of the per-key length
                // checks.
                let mut keys = Vec::with_capacity(n.min(r.remaining() / 2));
                for _ in 0..n {
                    keys.push(r.string("DigestReply.key")?);
                }
                Ok(CacheResponse::DigestReply { keys })
            }
            6 => Ok(CacheResponse::EvictAck {
                path: r.string("EvictAck.path")?,
                // Strict bool: only 0/1 are accepted, so every message
                // has exactly one byte representation (the garbage
                // property test relies on the codec being canonical).
                existed: match r.u8("EvictAck.existed")? {
                    0 => false,
                    1 => true,
                    tag => {
                        return Err(CodecError::BadTag {
                            what: "EvictAck.existed",
                            tag,
                        })
                    }
                },
            }),
            7 => Ok(CacheResponse::Overloaded),
            tag => Err(CodecError::BadTag {
                what: "CacheResponse",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_track_payloads() {
        let r = CacheRequest::Read { path: "abc".into() };
        assert_eq!(r.wire_size(), 35);
        assert_eq!(CacheRequest::Ping.wire_size(), 16);

        let d = CacheResponse::Data {
            path: "abc".into(),
            bytes: ValueBuf::copy_from_slice(&[0u8; 100]),
            source: ServeSource::NvmeHit,
        };
        assert_eq!(d.wire_size(), 48 + 3 + 100);
        assert_eq!(
            CacheResponse::NotFound {
                path: "abcd".into()
            }
            .wire_size(),
            36
        );
        assert_eq!(CacheResponse::Pong.wire_size(), 16);
        let put = CacheRequest::Put {
            path: "ab".into(),
            bytes: ValueBuf::copy_from_slice(&[0u8; 10]),
        };
        assert_eq!(put.wire_size(), 60);
        assert_eq!(CacheResponse::PutAck { path: "ab".into() }.wire_size(), 34);
        assert_eq!(CacheRequest::Digest.wire_size(), 16);
        assert_eq!(CacheRequest::Evict { path: "abc".into() }.wire_size(), 35);
        assert_eq!(
            CacheResponse::DigestReply {
                keys: vec!["ab".into(), "cdef".into()]
            }
            .wire_size(),
            32 + (8 + 2) + (8 + 4)
        );
        assert_eq!(
            CacheResponse::EvictAck {
                path: "ab".into(),
                existed: true
            }
            .wire_size(),
            35
        );
        assert_eq!(CacheResponse::Overloaded.wire_size(), 16);
    }
}
