//! The threaded "real mode" cluster: one HVAC server thread per node, a
//! shared PFS, and per-rank FT-Cache clients — the whole Fig. 3 topology
//! in one process.
//!
//! This is the mode the integration tests and examples drive: real
//! threads, real timeouts, real byte verification. Node failure is
//! injected as in the paper's experiments ("disabling one or more nodes
//! during runtime"): the fabric silences the node and its server thread is
//! reclaimed, so clients observe only timeouts.

use crate::client::HvacClient;
use crate::error::CoreError;
use crate::metrics::ClusterMetrics;
use crate::overload::AdmissionConfig;
use crate::policy::{FtConfig, FtPolicy};
use crate::server::{CacheNet, ServerHandle};
use ftc_hashring::NodeId;
use ftc_net::{LatencyModel, Network};
use ftc_storage::{synth_bytes, NvmeCache, Pfs};
use ftc_time::ClockHandle;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Cluster construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes (server instances).
    pub nodes: u32,
    /// Fault-tolerance configuration applied to every client.
    pub ft: FtConfig,
    /// Per-node NVMe capacity in bytes.
    pub nvme_capacity: u64,
    /// Link model for the fabric.
    pub latency: LatencyModel,
    /// RNG seed for jitter/drop decisions.
    pub seed: u64,
    /// Server-side admission control, applied to every server spawn
    /// (including revives). Default disabled: the exact legacy serve
    /// loop, no queue, no shedding.
    #[serde(default)]
    pub admission: AdmissionConfig,
}

impl ClusterConfig {
    /// A small fast-failing test cluster for the given policy.
    pub fn small(nodes: u32, policy: FtPolicy) -> Self {
        let mut ft = FtConfig::for_policy(policy);
        ft.detector.ttl = Duration::from_millis(30);
        ft.detector.timeout_limit = 2;
        ClusterConfig {
            nodes,
            ft,
            nvme_capacity: u64::MAX,
            latency: LatencyModel::instant(),
            seed: 42,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A running in-process cluster.
pub struct Cluster {
    config: ClusterConfig,
    net: CacheNet,
    pfs: Arc<Pfs>,
    servers: Mutex<Vec<Option<ServerHandle>>>,
    caches: Mutex<Vec<Arc<NvmeCache>>>,
    clients: Mutex<Vec<Arc<HvacClient>>>,
    killed: Mutex<HashSet<NodeId>>,
    recache_counts: Mutex<Vec<(u64, u64)>>,
    /// Per-node shed counters `(capacity, deadline)`, shared with each
    /// server's admission loop. The Arcs outlive kills, so shed totals
    /// survive a node's death; respawns fold the old values into
    /// `shed_base` before adopting the new server's counters.
    shed_counters: Mutex<
        Vec<(
            Arc<std::sync::atomic::AtomicU64>,
            Arc<std::sync::atomic::AtomicU64>,
        )>,
    >,
    shed_base: Mutex<Vec<(u64, u64)>>,
    /// The cluster's observability plane: attached to the fabric at boot
    /// and to every client at creation; kills stamp the timeline here.
    hub: Arc<ftc_obs::ObsHub>,
}

impl Cluster {
    /// Boot all server threads. Errors if any server (or its data mover)
    /// cannot be spawned; already-started servers shut down via `Drop`.
    pub fn start(config: ClusterConfig) -> Result<Self, CoreError> {
        Self::start_with_clock(config, ClockHandle::wall())
    }

    /// Boot on an injected clock: the fabric, every server and data-mover
    /// task, every client's retry/backoff/detector, and the observability
    /// plane's stamps all go through it. On a
    /// [`VirtualClock`](ftc_time::VirtualClock) (inside
    /// [`ftc_time::with_virtual`]) the whole cluster runs deterministically
    /// in virtual time.
    pub fn start_with_clock(config: ClusterConfig, clock: ClockHandle) -> Result<Self, CoreError> {
        let net: CacheNet = Network::with_clock(config.latency, config.seed, clock.clone());
        let hub = ftc_obs::ObsHub::shared_with_clock(clock);
        net.attach_obs(&hub);
        let pfs = Arc::new(Pfs::in_memory());
        let mut servers = Vec::with_capacity(config.nodes as usize);
        let mut caches = Vec::with_capacity(config.nodes as usize);
        let mut shed_counters = Vec::with_capacity(config.nodes as usize);
        for i in 0..config.nodes {
            let h = ServerHandle::spawn_on_with_admission(
                NodeId(i),
                &net,
                Arc::clone(&pfs),
                Arc::new(NvmeCache::for_serving(config.nvme_capacity)),
                config.admission,
            )?;
            caches.push(h.cache());
            shed_counters.push(h.shed_handles());
            servers.push(Some(h));
        }
        Ok(Cluster {
            recache_counts: Mutex::new(vec![(0, 0); config.nodes as usize]),
            shed_counters: Mutex::new(shed_counters),
            shed_base: Mutex::new(vec![(0, 0); config.nodes as usize]),
            config,
            net,
            pfs,
            servers: Mutex::new(servers),
            caches: Mutex::new(caches),
            clients: Mutex::new(Vec::new()),
            killed: Mutex::new(HashSet::new()),
            hub,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared PFS.
    pub fn pfs(&self) -> &Arc<Pfs> {
        &self.pfs
    }

    /// The fabric (for additional fault injection in tests).
    pub fn network(&self) -> &CacheNet {
        &self.net
    }

    /// The clock the whole cluster runs on.
    pub fn clock(&self) -> ClockHandle {
        self.net.clock()
    }

    /// Condition-wait on the cluster's clock: polls `pred` every
    /// `poll` until it holds or `timeout` elapses. The clock-aware
    /// replacement for bare settle sleeps in tests and drivers.
    pub fn wait_until(
        &self,
        timeout: Duration,
        poll: Duration,
        pred: impl FnMut() -> bool,
    ) -> bool {
        self.net.clock().wait_until(timeout, poll, pred)
    }

    /// Condition-wait until every live server's mover queue is empty —
    /// i.e. all enqueued PFS→NVMe copies have landed. True on success.
    pub fn wait_movers_drained(&self, timeout: Duration) -> bool {
        self.wait_until(timeout, Duration::from_micros(200), || {
            self.servers
                .lock()
                .iter()
                .flatten()
                .all(|h| h.mover_queue_depth() == 0)
        })
    }

    /// Stage `count` synthetic files of `size` bytes onto the PFS under
    /// `prefix`, returning their paths. This is the dataset-download step
    /// of the artifact workflow.
    pub fn stage_dataset(&self, prefix: &str, count: usize, size: usize) -> Vec<String> {
        let mut paths = Vec::with_capacity(count);
        for i in 0..count {
            let p = format!("{prefix}/sample_{i:06}.tfrecord");
            self.pfs.stage(&p, synth_bytes(&p, size));
            paths.push(p);
        }
        paths
    }

    /// Create a client for training rank `rank`. Client node ids live in a
    /// disjoint id space above the servers (rank r → id nodes + r) purely
    /// for trace readability; clients are not servers.
    pub fn client(&self, rank: u32) -> Arc<HvacClient> {
        let c = Arc::new(HvacClient::new(
            NodeId(self.config.nodes + rank),
            &self.net,
            Arc::clone(&self.pfs),
            self.config.nodes,
            self.config.ft,
        ));
        c.attach_obs(&self.hub);
        self.clients.lock().push(Arc::clone(&c));
        c
    }

    /// Create a client with a running [`RecoveryEngine`] — proactive
    /// recache, hinted handoff and (when configured) autonomous
    /// readmission probing. Errors if the engine thread cannot spawn.
    pub fn client_with_recovery(
        &self,
        rank: u32,
        recovery: crate::recovery::RecoveryConfig,
    ) -> Result<Arc<HvacClient>, CoreError> {
        let c = self.client(rank);
        let _ = c.enable_recovery(recovery)?;
        Ok(c)
    }

    /// Create a client governed by a runtime [`crate::PolicyController`]
    /// on top of a running recovery engine: the controller watches the
    /// client's detector signals and switches recovery posture,
    /// replication factor and recache rate at runtime, epoch-fenced.
    /// Errors if either worker thread cannot spawn.
    pub fn client_adaptive(
        &self,
        rank: u32,
        recovery: crate::recovery::RecoveryConfig,
        controller: crate::controller::ControllerConfig,
    ) -> Result<Arc<HvacClient>, CoreError> {
        let c = self.client_with_recovery(rank, recovery)?;
        let _ = c.enable_controller(controller)?;
        Ok(c)
    }

    /// The cluster's observability hub (registry + timeline + flight
    /// recorder). The chaos harness stamps kills and embeds snapshots
    /// through this handle.
    pub fn obs(&self) -> &Arc<ftc_obs::ObsHub> {
        &self.hub
    }

    /// Kill a node the way the paper does: it stops responding with no
    /// notification. Safe to call twice.
    pub fn kill(&self, node: NodeId) {
        let mut killed = self.killed.lock();
        if !killed.insert(node) {
            return;
        }
        // Stamp the incident's anchor phase before silencing the fabric,
        // so every downstream stamp measures from the true kill instant.
        self.hub.timeline.mark(node.0, ftc_obs::Phase::Kill);
        self.hub.flight.record("cluster", "kill", node.to_string());
        self.net.kill(node);
        // Reclaim the thread; record its mover totals first so cluster
        // metrics stay complete after the handle is gone.
        if let Some(h) = self
            .servers
            .lock()
            .get_mut(node.index())
            .and_then(Option::take)
        {
            if let Some(server) = h.shutdown() {
                let mut rc = self.recache_counts.lock();
                rc[node.index()] = (server.files_recached(), server.recached_bytes());
            }
        }
    }

    /// Repair and rejoin a previously killed node (elastic grow-back).
    ///
    /// The rejoin is **warm**: the node kept its NVMe across the crash
    /// (the paper's node-local volume survives a process or fabric
    /// failure), so the respawned server adopts the surviving contents.
    /// Clients are readmitted immediately; a client with a recovery
    /// engine then reconciles the survivors against the current ring and
    /// drains any parked hints. On spawn failure the node stays killed
    /// (state unchanged) and the error is returned.
    pub fn revive(&self, node: NodeId) -> Result<(), CoreError> {
        self.respawn(node, true)?;
        for c in self.clients.lock().iter() {
            c.readmit(node);
        }
        self.hub
            .flight
            .record("cluster", "revive", node.to_string());
        Ok(())
    }

    /// Repair a node with a **cold** cache (re-provisioned hardware: the
    /// old NVMe contents are gone). Baseline for warm-rejoin comparisons.
    pub fn revive_cold(&self, node: NodeId) -> Result<(), CoreError> {
        self.respawn(node, false)?;
        for c in self.clients.lock().iter() {
            c.readmit(node);
        }
        self.hub
            .flight
            .record("cluster", "revive_cold", node.to_string());
        Ok(())
    }

    /// Repair a node **without telling any client** — the node is back on
    /// the fabric (warm), but membership is unchanged. Clients running a
    /// recovery engine with probing discover the rejoin autonomously;
    /// everyone else keeps routing around it.
    pub fn revive_silent(&self, node: NodeId) -> Result<(), CoreError> {
        self.respawn(node, true)?;
        self.hub
            .flight
            .record("cluster", "revive_silent", node.to_string());
        Ok(())
    }

    /// Shared revive plumbing: bring the node back on the fabric with a
    /// warm (surviving) or cold (fresh) cache. No-op if not killed.
    fn respawn(&self, node: NodeId, warm: bool) -> Result<(), CoreError> {
        let mut killed = self.killed.lock();
        if !killed.remove(&node) {
            return Ok(());
        }
        self.net.revive(node);
        let cache = if warm {
            Arc::clone(&self.caches.lock()[node.index()])
        } else {
            Arc::new(NvmeCache::for_serving(self.config.nvme_capacity))
        };
        let spawned = ServerHandle::spawn_on_with_admission(
            node,
            &self.net,
            Arc::clone(&self.pfs),
            cache,
            self.config.admission,
        );
        let h = match spawned {
            Ok(h) => h,
            Err(e) => {
                // Roll back: the node is still dead as far as anyone can
                // observe.
                self.net.kill(node);
                killed.insert(node);
                return Err(e);
            }
        };
        {
            // Fold the dead incarnation's shed totals into the base, then
            // adopt the fresh server's counters.
            use std::sync::atomic::Ordering;
            let mut counters = self.shed_counters.lock();
            let (old_cap, old_dead) = &counters[node.index()];
            let mut base = self.shed_base.lock();
            // ordering: Relaxed — monotone tallies read for accounting.
            base[node.index()].0 += old_cap.load(Ordering::Relaxed);
            base[node.index()].1 += old_dead.load(Ordering::Relaxed);
            counters[node.index()] = h.shed_handles();
        }
        self.caches.lock()[node.index()] = h.cache();
        self.servers.lock()[node.index()] = Some(h);
        Ok(())
    }

    /// Per-node shed totals `(capacity_sheds, deadline_sheds)`, summed
    /// across every incarnation of the node — a kill does not erase what
    /// the dead server shed while alive, so client-side observation
    /// counts can always be reconciled against these.
    pub fn sheds_per_node(&self) -> Vec<(u64, u64)> {
        use std::sync::atomic::Ordering;
        let counters = self.shed_counters.lock();
        let base = self.shed_base.lock();
        counters
            .iter()
            .zip(base.iter())
            // ordering: Relaxed — monotone tallies read for accounting.
            .map(|((c, d), &(bc, bd))| {
                (
                    bc + c.load(Ordering::Relaxed),
                    bd + d.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total requests shed by every server, all causes, all incarnations.
    pub fn total_sheds(&self) -> u64 {
        self.sheds_per_node().iter().map(|(c, d)| c + d).sum()
    }

    /// Nodes currently killed.
    pub fn killed_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.killed.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whole-cluster metrics: client counters + per-node cache stats +
    /// PFS totals + recache totals.
    pub fn metrics(&self) -> ClusterMetrics {
        let clients = self
            .clients
            .lock()
            .iter()
            .map(|c| c.metrics().snapshot())
            .fold(
                Default::default(),
                |acc: crate::metrics::ClientMetricsSnapshot, s| acc.merge(&s),
            );
        let nvme_per_node = self.caches.lock().iter().map(|c| c.stats()).collect();
        let (mut files_recached, mut recached_bytes) = (0u64, 0u64);
        {
            let servers = self.servers.lock();
            let rc = self.recache_counts.lock();
            for (i, slot) in servers.iter().enumerate() {
                match slot {
                    Some(h) => {
                        files_recached += h.files_recached();
                        recached_bytes += h.recached_bytes();
                    }
                    None => {
                        files_recached += rc[i].0;
                        recached_bytes += rc[i].1;
                    }
                }
            }
        }
        ClusterMetrics {
            clients,
            nvme_per_node,
            pfs_total_reads: self.pfs.total_reads(),
            files_recached,
            recached_bytes,
        }
    }

    /// Flatten every observable in the cluster into exposition samples:
    /// the obs registry (latency histograms, gauges), the legacy flat
    /// snapshots (client counters, net stats, per-node NVMe stats, each
    /// node labelled), and the ring health gauges. One call renders to
    /// Prometheus text or JSON via `ftc_obs::render_*`.
    pub fn obs_samples(&self) -> Vec<ftc_obs::Sample> {
        use ftc_obs::Export;
        let mut out = self.hub.registry.export();
        let metrics = self.metrics();
        metrics.clients.export_into(&mut out);
        out.push(ftc_obs::Sample::counter(
            "ftc_pfs_reads_total",
            metrics.pfs_total_reads,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_mover_files_recached_total",
            metrics.files_recached,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_mover_recached_bytes_total",
            metrics.recached_bytes,
        ));
        self.net.stats().export_into(&mut out);
        for (i, cache) in self.caches.lock().iter().enumerate() {
            let mut per_node = Vec::new();
            cache.stats().export_into(&mut per_node);
            for mut s in per_node {
                s.labels.push(("node".to_owned(), i.to_string()));
                out.push(s);
            }
        }
        // Per-node mover backpressure: queue depth (live gauge) and
        // rejected enqueues (the observable cost of the bounded queue).
        for (i, slot) in self.servers.lock().iter().enumerate() {
            let Some(h) = slot else { continue };
            let mut depth =
                ftc_obs::Sample::gauge("ftc_mover_queue_depth", h.mover_queue_depth() as f64);
            depth.labels.push(("node".to_owned(), i.to_string()));
            out.push(depth);
            let mut rejected = ftc_obs::Sample::counter(
                "ftc_mover_enqueue_rejected_total",
                h.mover_enqueue_rejected(),
            );
            rejected.labels.push(("node".to_owned(), i.to_string()));
            out.push(rejected);
            // Miss single-flight: how many PFS fetches the node led vs
            // answered from an already-open flight.
            let (leaders, coalesced, stale) = h.singleflight_handles().snapshot();
            for (name, v) in [
                ("ftc_server_pfs_flight_leaders_total", leaders),
                ("ftc_server_pfs_coalesced_total", coalesced),
                ("ftc_server_pfs_flight_retries_total", stale),
            ] {
                let mut s = ftc_obs::Sample::counter(name, v);
                s.labels.push(("node".to_owned(), i.to_string()));
                out.push(s);
            }
        }
        // Per-node admission sheds, split by cause. Always exported (zero
        // when admission is off) so overload dashboards are stable.
        for (i, (cap, dead)) in self.sheds_per_node().into_iter().enumerate() {
            let mut c = ftc_obs::Sample::counter("ftc_server_shed_capacity_total", cap);
            c.labels.push(("node".to_owned(), i.to_string()));
            out.push(c);
            let mut d = ftc_obs::Sample::counter("ftc_server_shed_deadline_total", dead);
            d.labels.push(("node".to_owned(), i.to_string()));
            out.push(d);
        }
        // Recovery-engine counters, aggregated across every client that
        // runs one (zero-valued when none does, so dashboards are stable).
        let recovery = self
            .clients
            .lock()
            .iter()
            .filter_map(|c| c.recovery().map(|e| e.stats()))
            .fold(
                crate::recovery::RecoveryStatsSnapshot::default(),
                |acc, s| acc.merge(&s),
            );
        recovery.export_into(&mut out);
        let epoch = self
            .clients
            .lock()
            .iter()
            .map(|c| c.ring_epoch())
            .max()
            .unwrap_or(0);
        let survivors: Vec<u64> = {
            let killed = self.killed.lock();
            self.caches
                .lock()
                .iter()
                .enumerate()
                .filter(|&(i, _)| !killed.contains(&NodeId(i as u32)))
                .map(|(_, c)| c.stats().resident_objects)
                .collect()
        };
        ftc_hashring::stats::RingStats::from_loads(epoch, &survivors).export_into(&mut out);
        out
    }

    /// Per-node count of cached objects — the load-distribution
    /// observable (who absorbed the failed node's keys).
    pub fn cached_objects_per_node(&self) -> Vec<u64> {
        self.caches
            .lock()
            .iter()
            .map(|c| c.stats().resident_objects)
            .collect()
    }

    /// Stop every server and release resources. Recovery engines on the
    /// cluster's clients are stopped first — their workers hold client
    /// references across blocking waits, so without an explicit stop they
    /// outlive the cluster (fatal on a virtual clock, where every task
    /// must be joined before the driver exits).
    pub fn shutdown(self) {
        for c in self.clients.lock().iter() {
            // Controllers first: a live controller mutates the policy the
            // engines are fenced on, so it must stop re-deciding before
            // the engines drain.
            if let Some(ctl) = c.controller() {
                ctl.stop();
            }
            if let Some(engine) = c.recovery() {
                engine.stop();
            }
        }
        let mut servers = self.servers.lock();
        for h in servers.iter_mut().filter_map(Option::take) {
            let _ = h.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_stage_read_shutdown() {
        let cluster = Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 24, 32);
        assert_eq!(cluster.pfs().file_count(), 24);
        let c = cluster.client(0);
        for p in &paths {
            assert_eq!(c.read(p).unwrap(), synth_bytes(p, 32));
        }
        let m = cluster.metrics();
        assert_eq!(m.clients.reads_ok, 24);
        assert_eq!(m.pfs_total_reads, 24, "first epoch misses everywhere");
        cluster.shutdown();
    }

    #[test]
    fn kill_is_idempotent_and_observable() {
        let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot");
        cluster.kill(NodeId(1));
        cluster.kill(NodeId(1));
        assert_eq!(cluster.killed_nodes(), vec![NodeId(1)]);
        assert!(cluster.network().is_down(NodeId(1)));
        cluster.shutdown();
    }

    #[test]
    fn failure_and_recache_shifts_cached_objects() {
        let cluster = Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 40, 16);
        let c = cluster.client(0);
        for p in &paths {
            c.read(p).unwrap();
        }
        assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
        let before = cluster.cached_objects_per_node();
        assert_eq!(before.iter().sum::<u64>(), 40);

        cluster.kill(NodeId(2));
        for _pass in 0..2 {
            for p in &paths {
                c.read(p).unwrap();
            }
        }
        assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
        let after = cluster.cached_objects_per_node();
        // Survivors absorbed the dead node's keys.
        let survivor_total: u64 = after
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(
            survivor_total, 40,
            "all files re-owned by survivors: {after:?}"
        );
        cluster.shutdown();
    }

    /// Shared setup for the revive tests: warm the cluster, kill node 0,
    /// run enough passes that the survivors absorb its keys. Returns the
    /// paths node 0 originally owned.
    fn kill_node0_and_absorb(
        cluster: &Cluster,
        c: &Arc<HvacClient>,
        paths: &[String],
    ) -> Vec<String> {
        for p in paths {
            c.read(p).unwrap();
        }
        let lost: Vec<String> = paths
            .iter()
            .filter(|p| c.owner_of(p) == Some(NodeId(0)))
            .cloned()
            .collect();
        assert!(!lost.is_empty(), "node 0 must own something");
        cluster.kill(NodeId(0));
        for _ in 0..2 {
            for p in paths {
                c.read(p).unwrap();
            }
        }
        assert!(!c.live_nodes().contains(&NodeId(0)));
        lost
    }

    #[test]
    fn revive_rejoins_warm_with_surviving_nvme() {
        let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 12, 16);
        let c = cluster.client(0);
        kill_node0_and_absorb(&cluster, &c, &paths);
        cluster.revive(NodeId(0)).expect("revive");
        assert!(c.live_nodes().contains(&NodeId(0)));
        // Warm rejoin: node 0 kept its NVMe, so its restored arcs serve
        // from cache — no PFS traffic at all after the rejoin.
        assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
        cluster.pfs().reset_read_counters();
        for p in &paths {
            assert_eq!(c.read(p).unwrap(), synth_bytes(p, 16));
        }
        assert_eq!(
            cluster.pfs().total_reads(),
            0,
            "warm rejoin must not refetch anything"
        );
        cluster.shutdown();
    }

    #[test]
    fn revive_cold_refills_through_misses() {
        let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 12, 16);
        let c = cluster.client(0);
        let lost = kill_node0_and_absorb(&cluster, &c, &paths);
        cluster.revive_cold(NodeId(0)).expect("revive");
        assert!(c.live_nodes().contains(&NodeId(0)));
        // Cold rejoin: the re-provisioned node refills through the miss
        // path — exactly one PFS fetch per key it owns.
        assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
        cluster.pfs().reset_read_counters();
        for p in &paths {
            assert_eq!(c.read(p).unwrap(), synth_bytes(p, 16));
        }
        assert_eq!(
            cluster.pfs().total_reads(),
            lost.len() as u64,
            "cold rejoin refetches the node's keys once each"
        );
        cluster.shutdown();
    }

    #[test]
    fn silent_revive_is_discovered_by_probing() {
        let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 12, 16);
        let c = cluster
            .client_with_recovery(
                0,
                crate::recovery::RecoveryConfig {
                    probe_base: Duration::from_millis(10),
                    probe_max: Duration::from_millis(40),
                    ..Default::default()
                },
            )
            .expect("client with engine");
        kill_node0_and_absorb(&cluster, &c, &paths);
        // The node comes back on the fabric, but nobody tells the client.
        cluster.revive_silent(NodeId(0)).expect("revive");
        assert!(
            cluster.wait_until(Duration::from_secs(5), Duration::from_millis(5), || c
                .live_nodes()
                .contains(&NodeId(0))),
            "probing must readmit the node autonomously"
        );
        let stats = c.recovery().expect("engine").stats();
        assert!(stats.probes_sent >= 1, "rejoin found by a probe");
        assert_eq!(stats.rejoins_detected, 1);
        // Reads verify after the autonomous rejoin.
        for p in &paths {
            assert_eq!(c.read(p).unwrap(), synth_bytes(p, 16));
        }
        cluster.shutdown();
    }

    #[test]
    fn obs_samples_cover_every_layer() {
        let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 9, 16);
        let c = cluster.client(0);
        for p in &paths {
            c.read(p).unwrap();
        }
        let samples = cluster.obs_samples();
        let has = |n: &str| samples.iter().any(|s| s.name == n);
        // Registry histograms (net + client), legacy flat counters, ring.
        for name in [
            "ftc_net_rpc_ok_us",
            "ftc_client_read_nvme_us",
            "ftc_client_reads_ok_total",
            "ftc_net_rpcs_sent_total",
            "ftc_nvme_hits_total",
            "ftc_ring_imbalance",
        ] {
            assert!(has(name), "missing {name} in cluster exposition");
        }
        // Per-node NVMe samples carry node labels.
        let labelled = samples
            .iter()
            .filter(|s| s.name == "ftc_nvme_resident_objects")
            .count();
        assert_eq!(labelled, 3, "one resident-objects gauge per node");
        // The whole set renders without panicking in both formats.
        let text = ftc_obs::render_prometheus(&samples);
        assert!(text.contains("# TYPE ftc_ring_imbalance gauge"));
        let json = ftc_obs::render_json(&samples);
        assert!(json.contains("\"ftc_client_read_nvme_us\""));
        cluster.shutdown();
    }

    #[test]
    fn kill_stamps_the_timeline() {
        let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot");
        cluster.kill(NodeId(1));
        let incidents = cluster.obs().timeline.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].node, 1);
        assert!(incidents[0].stamp(ftc_obs::Phase::Kill).is_some());
        assert!(cluster.obs().flight.dump().contains("kill"));
        cluster.shutdown();
    }

    #[test]
    fn whole_cluster_runs_on_virtual_clock() {
        ftc_time::with_virtual(|clock| {
            let cluster =
                Cluster::start_with_clock(ClusterConfig::small(4, FtPolicy::RingRecache), clock)
                    .expect("boot");
            assert!(cluster.clock().is_virtual());
            let paths = cluster.stage_dataset("train", 20, 16);
            let c = cluster.client(0);
            for p in &paths {
                assert_eq!(c.read(p).unwrap(), synth_bytes(p, 16));
            }
            assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
            cluster.kill(NodeId(1));
            for _ in 0..2 {
                for p in &paths {
                    c.read(p).unwrap();
                }
            }
            assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
            let after = cluster.cached_objects_per_node();
            let survivor_total: u64 = after
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != 1)
                .map(|(_, &v)| v)
                .sum();
            assert_eq!(survivor_total, 20, "survivors re-own every key: {after:?}");
            cluster.shutdown();
        });
    }

    #[test]
    fn multiple_clients_share_the_cluster() {
        let cluster = Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot");
        let paths = cluster.stage_dataset("train", 16, 8);
        let clients: Vec<_> = (0..4).map(|r| cluster.client(r)).collect();
        let mut joins = Vec::new();
        for c in clients {
            let paths = paths.clone();
            joins.push(std::thread::spawn(move || {
                for p in &paths {
                    assert_eq!(c.read(p).unwrap(), synth_bytes(p, 8));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let m = cluster.metrics();
        assert_eq!(m.clients.reads_ok, 64);
        cluster.shutdown();
    }
}
