//! Single-flight coalescing for the hot read path.
//!
//! A duplicate-read storm — every rank of a training job asking for the
//! same file in the same instant — multiplies one cache miss into N
//! identical RPCs and N identical PFS fetches. FailSafe's serving rule
//! (PAPERS.md) is that redundant work must never queue behind a hot key:
//! the *first* reader of a key becomes the **leader** and actually
//! executes the read; every reader that arrives while that flight is
//! open becomes a **follower** and waits for the leader's published
//! result instead of issuing its own.
//!
//! The group is deliberately epoch-aware rather than a plain
//! `singleflight`: the leader publishes its result *stamped with the
//! ring epoch current at publish time*, and a follower only accepts the
//! result if its own ring view still has that epoch. A kill that bumps
//! the ring mid-flight therefore can never hand a follower a value from
//! the old ownership regime — the follower counts a stale retry and
//! re-executes the read against the new ring itself. This is the
//! invariant the virtual-time singleflight test and the linearizability
//! checker (`--check-linz`) pin.
//!
//! ## State machine
//!
//! ```text
//!            join(key)
//!      ┌────────┴────────┐
//!      ▼                 ▼
//!   no entry          entry open
//!      │                 │
//!   LEADER            FOLLOWER
//!      │                 │ wait (clock-aware poll, bounded)
//!   execute              │
//!      │            ┌────┴─────┬──────────────┐
//!   publish(epoch)  ▼          ▼              ▼
//!      │         published   published      timeout /
//!      │         epoch ==    epoch !=      leader gone
//!      │         mine: take  mine: stale   │
//!      ▼         result      retry         ▼
//!   entry removed            (re-execute)  re-execute
//! ```
//!
//! A leader that unwinds without publishing (panic, early drop) removes
//! the map entry on drop, so a key can never wedge: its followers time
//! out and re-execute independently.
//!
//! Blocking discipline: followers wait with [`ClockHandle::wait_until`],
//! never a condvar — under the virtual-time driver every task shares one
//! OS thread, so a real block would deadlock the simulation. In wall
//! mode the poll interval is far below a PFS fetch; in virtual mode the
//! wait is deterministic and nearly free.

use ftc_time::ClockHandle;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often a waiting follower re-checks the flight for a published
/// result. Well below a PFS fetch or an RPC TTL, so delivery latency is
/// dominated by the leader's own read, not the poll.
pub const FOLLOWER_POLL: Duration = Duration::from_micros(50);

/// A leader's published result: the value plus the ring epoch current
/// when it was published. Followers compare the epoch against their own
/// view before accepting.
#[derive(Debug, Clone)]
pub struct Published<T> {
    /// Ring epoch at publish time.
    pub epoch: u64,
    /// The leader's result (errors share the flight too — a storm of
    /// duplicate reads for a missing file is still one lookup).
    pub value: T,
}

/// One in-flight read: the slot the leader fills and followers poll.
struct Flight<T> {
    slot: Mutex<Option<Published<T>>>,
}

type FlightMap<T> = Arc<Mutex<HashMap<String, Arc<Flight<T>>>>>;

/// Leader/follower counters, shared with dashboards (`ftc-top`) and the
/// bench harness.
#[derive(Debug, Default)]
pub struct SingleFlightStats {
    /// Flights led: reads that actually executed.
    pub leaders: AtomicU64,
    /// Reads answered from another flight's published result.
    pub coalesced: AtomicU64,
    /// Follower waits that ended in a stale epoch or a vanished leader,
    /// forcing an independent re-execution.
    pub stale_retries: AtomicU64,
}

impl SingleFlightStats {
    /// `(leaders, coalesced, stale_retries)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        // ordering: Relaxed — independent monotone tallies.
        (
            self.leaders.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.stale_retries.load(Ordering::Relaxed),
        )
    }

    /// Count a led flight.
    pub fn note_leader(&self) {
        // ordering: Relaxed — pure statistic, publishes no data.
        self.leaders.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a coalesced (follower-served) read.
    pub fn note_coalesced(&self) {
        // ordering: Relaxed — pure statistic, publishes no data.
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a follower wait that had to re-execute.
    pub fn note_stale_retry(&self) {
        // ordering: Relaxed — pure statistic, publishes no data.
        self.stale_retries.fetch_add(1, Ordering::Relaxed);
    }
}

/// A per-instance single-flight group keyed by path.
pub struct SingleFlight<T> {
    flights: FlightMap<T>,
    stats: Arc<SingleFlightStats>,
}

impl<T> Default for SingleFlight<T> {
    fn default() -> Self {
        SingleFlight {
            flights: Arc::new(Mutex::new(HashMap::new())),
            stats: Arc::new(SingleFlightStats::default()),
        }
    }
}

/// Outcome of [`SingleFlight::join`].
pub enum Join<T> {
    /// No flight was open: the caller leads. It must execute the read
    /// and [`Leader::publish`] the result (or drop the token to abandon
    /// the flight).
    Leader(Leader<T>),
    /// A flight is open: the caller follows and should
    /// [`Follower::wait`] for the leader's result.
    Follower(Follower<T>),
}

/// The obligation to publish a result for `key` (or retire the flight
/// on drop).
pub struct Leader<T> {
    flights: FlightMap<T>,
    flight: Arc<Flight<T>>,
    key: String,
    published: bool,
}

impl<T> Leader<T> {
    /// Publish the result stamped with `epoch` and retire the flight.
    /// Followers already waiting observe the slot; later readers of the
    /// key start a fresh flight.
    pub fn publish(mut self, epoch: u64, value: T) {
        *self.flight.slot.lock() = Some(Published { epoch, value });
        self.flights.lock().remove(&self.key);
        self.published = true;
    }
}

impl<T> Drop for Leader<T> {
    fn drop(&mut self) {
        if !self.published {
            // Leader unwound without a result: clear the entry so the
            // key is not wedged. Followers time out and re-execute.
            self.flights.lock().remove(&self.key);
        }
    }
}

/// A handle onto an open flight, waiting for the leader's result.
pub struct Follower<T> {
    flight: Arc<Flight<T>>,
}

impl<T: Clone> Follower<T> {
    /// Wait (clock-aware, bounded by `timeout`) for the leader's
    /// published result. `None` means the leader abandoned the flight or
    /// overran the budget — the caller must execute the read itself.
    pub fn wait(&self, clock: &ClockHandle, timeout: Duration) -> Option<Published<T>> {
        clock.wait_until(timeout, FOLLOWER_POLL, || self.flight.slot.lock().is_some());
        // One unconditional final check: a publish may land exactly on
        // the deadline edge, and a published result is valid whenever
        // it arrives.
        self.flight.slot.lock().clone()
    }
}

impl<T> SingleFlight<T> {
    /// Join the flight for `key`: the first caller leads, the rest
    /// follow. Leader/coalesce accounting is the *caller's* job (via
    /// [`Self::stats`]) so accepted vs stale follower outcomes are
    /// attributed correctly.
    pub fn join(&self, key: &str) -> Join<T> {
        let mut map = self.flights.lock();
        if let Some(flight) = map.get(key) {
            return Join::Follower(Follower {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            slot: Mutex::new(None),
        });
        map.insert(key.to_owned(), Arc::clone(&flight));
        Join::Leader(Leader {
            flights: Arc::clone(&self.flights),
            flight,
            key: key.to_owned(),
            published: false,
        })
    }

    /// Shared counters.
    pub fn stats(&self) -> &Arc<SingleFlightStats> {
        &self.stats
    }

    /// Open flights right now (tests and dashboards).
    pub fn open_flights(&self) -> usize {
        self.flights.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn first_join_leads_rest_follow_and_share_the_result() {
        let sf: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::default());
        let clock = ClockHandle::wall();
        let leader = match sf.join("k") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!("first join must lead"),
        };
        let followers: Vec<_> = (0..4)
            .map(|_| match sf.join("k") {
                Join::Follower(f) => f,
                Join::Leader(_) => panic!("open flight must be followed"),
            })
            .collect();
        assert_eq!(sf.open_flights(), 1);
        leader.publish(7, 42);
        assert_eq!(sf.open_flights(), 0, "publish retires the flight");
        for f in followers {
            let p = f.wait(&clock, Duration::from_secs(1)).expect("published");
            assert_eq!((p.epoch, p.value), (7, 42));
        }
    }

    #[test]
    fn distinct_keys_never_coalesce() {
        let sf: SingleFlight<u64> = SingleFlight::default();
        let a = sf.join("a");
        let b = sf.join("b");
        assert!(matches!(a, Join::Leader(_)));
        assert!(matches!(b, Join::Leader(_)));
    }

    #[test]
    fn abandoned_leader_unwedges_the_key() {
        let sf: SingleFlight<u64> = SingleFlight::default();
        let clock = ClockHandle::wall();
        let leader = match sf.join("k") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!("first join must lead"),
        };
        let follower = match sf.join("k") {
            Join::Follower(f) => f,
            Join::Leader(_) => panic!("open flight must be followed"),
        };
        drop(leader); // unwound without publishing
        assert_eq!(sf.open_flights(), 0, "drop retires the flight");
        assert!(
            follower.wait(&clock, Duration::from_millis(5)).is_none(),
            "follower of an abandoned flight re-executes"
        );
        // The key is reusable immediately.
        assert!(matches!(sf.join("k"), Join::Leader(_)));
    }

    #[test]
    fn concurrent_followers_all_receive_the_published_result() {
        let sf: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::default());
        let clock = ClockHandle::wall();
        // Deterministic election: the main thread leads, so every
        // spawned thread is guaranteed to find the flight open.
        let leader = match sf.join("hot") {
            Join::Leader(l) => l,
            Join::Follower(_) => panic!("first join must lead"),
        };
        let got = Arc::new(AtomicUsize::new(0));
        let joined = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..7)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let clock = clock.clone();
                let got = Arc::clone(&got);
                let joined = Arc::clone(&joined);
                thread::spawn(move || {
                    let join = sf.join("hot");
                    joined.fetch_add(1, Ordering::SeqCst);
                    match join {
                        Join::Follower(f) => {
                            let p = f.wait(&clock, Duration::from_secs(5)).expect("published");
                            assert_eq!(p.value, 99);
                            got.fetch_add(1, Ordering::SeqCst);
                        }
                        Join::Leader(_) => panic!("flight is open; joins must follow"),
                    }
                })
            })
            .collect();
        // Publish only after every thread has joined the open flight, so
        // the election outcome is deterministic.
        while joined.load(Ordering::SeqCst) < 7 {
            thread::sleep(Duration::from_millis(1));
        }
        leader.publish(1, 99);
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(got.load(Ordering::SeqCst), 7, "every follower coalesced");
    }
}
