//! The recovery engine — proactive repair of the cache tier after a
//! failure verdict, off the training job's critical path.
//!
//! The paper's RingRecache policy is *lazy*: a lost key is recached only
//! when some reader next asks for it, so the degraded window of a dead
//! node stretches until the tail of the access distribution comes around.
//! The engine closes that window proactively with three mechanisms:
//!
//! * **Proactive recache** — on a `Declared` verdict the engine walks the
//!   dead node's key range (the client's [`KeyIndex`] of observed
//!   assignments), refetches each key from the PFS and pushes it to the
//!   key's *current* ring owner, ahead of demand. Pushes pass through a
//!   token bucket so recovery bandwidth never starves foreground reads.
//! * **Hinted handoff** — replica writes destined for a suspect-or-dead
//!   node are parked as hints instead of being dropped, and drained to
//!   the node when it rejoins.
//! * **Warm rejoin / anti-entropy** — a revived node kept its NVMe; the
//!   engine asks it for a key digest, re-adopts the entries the current
//!   ring still routes to it, and evicts the rest.
//!
//! Every piece of recovery traffic is **epoch-fenced**: the engine stamps
//! tasks with the client's placement epoch at enqueue and re-resolves the
//! owner at push time. Work invalidated by a membership change in between
//! (the node rejoined, a successor died too) is rejected and recorded,
//! never applied.

use crate::client::HvacClient;
use ftc_hashring::NodeId;
use ftc_storage::ValueBuf;
use ftc_time::{
    ClockHandle, ClockReceiver, ClockSender, RecvTimeoutError, TaskHandle, TryRecvError,
};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Keys processed per scheduling slice, so probes and hint drains stay
/// responsive while a large recache job is in flight.
const RECACHE_CHUNK: usize = 32;

/// Worker idle tick: the longest the loop sleeps when nothing is queued.
const IDLE_TICK: Duration = Duration::from_millis(25);

/// Longest single nap while waiting for a token, so a starved bucket
/// still observes shutdown and new tasks promptly.
const THROTTLE_NAP: Duration = Duration::from_millis(2);

/// Recovery-engine tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Token-bucket refill rate in recache pushes per second. Zero means
    /// the bucket never refills — recache stalls forever (sabotage mode).
    pub recache_rate: f64,
    /// Token-bucket burst capacity.
    pub recache_burst: u32,
    /// Push retries per key before the key is abandoned to the lazy path.
    pub push_retries: u32,
    /// Hints parked across all nodes before drop-oldest kicks in.
    pub max_hints: usize,
    /// Probe declared-failed nodes for autonomous readmission.
    pub probe: bool,
    /// First probe delay after a failure verdict.
    pub probe_base: Duration,
    /// Probe backoff ceiling.
    pub probe_max: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            recache_rate: crate::policy::DEFAULT_RECACHE_RATE,
            recache_burst: crate::policy::DEFAULT_RECACHE_BURST,
            push_retries: 2,
            max_hints: 4096,
            probe: true,
            probe_base: Duration::from_millis(50),
            probe_max: Duration::from_secs(1),
        }
    }
}

/// Classic token bucket; time-driven refill, fractional tokens.
#[derive(Debug)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, burst: u32, now: Instant) -> Self {
        let burst = f64::from(burst.max(1));
        TokenBucket {
            rate: rate.max(0.0),
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// Credit elapsed time. Monotone: a `now` behind the last refill
    /// (a stale snapshot racing a virtual-time burst) grants nothing and
    /// leaves `last` untouched — regressing `last` would let the next
    /// caller re-credit an interval that was already paid out. Returns
    /// true when the call was clamped for that reason.
    fn refill(&mut self, now: Instant) -> bool {
        if now < self.last {
            return true;
        }
        let dt = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
        false
    }

    /// Take one token if available: `(granted, refill_clamped)`.
    fn try_take(&mut self, now: Instant) -> (bool, bool) {
        let clamped = self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            (true, clamped)
        } else {
            (false, clamped)
        }
    }

    /// Retune the refill rate (runtime policy controller). The bucket is
    /// settled at the old rate up to `now` first, so the change is never
    /// retroactive.
    fn set_rate(&mut self, rate: f64, now: Instant) {
        let _ = self.refill(now);
        self.rate = rate.max(0.0);
    }

    /// Time until one token is available (`None` when the bucket can
    /// never refill, i.e. rate is zero).
    fn eta(&self, _now: Instant) -> Option<Duration> {
        if self.tokens >= 1.0 {
            return Some(Duration::ZERO);
        }
        if self.rate <= 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64((1.0 - self.tokens) / self.rate))
    }
}

/// A replica write parked for a currently-unreachable node.
#[derive(Debug, Clone)]
pub struct Hint {
    /// The file path (placement key).
    pub path: String,
    /// The file bytes (shared buffer — parking clones the
    /// handle, not the value).
    pub bytes: ValueBuf,
    /// Placement epoch when the hint was parked, for diagnostics.
    pub epoch: u64,
}

#[derive(Debug, Default)]
struct HintInner {
    per_node: HashMap<u32, VecDeque<Hint>>,
    total: usize,
}

/// Bounded store of parked hints, drop-oldest under pressure.
#[derive(Debug, Default)]
struct HintStore {
    inner: Mutex<HintInner>,
}

impl HintStore {
    /// Park a hint for `node`. Returns how many older hints were dropped
    /// to stay within `cap`.
    fn park(&self, node: NodeId, hint: Hint, cap: usize) -> usize {
        let mut g = self.inner.lock();
        let mut dropped = 0;
        while g.total >= cap.max(1) {
            // Drop the oldest hint for the same node first (freshest data
            // for a key wins anyway); fall back to any non-empty queue.
            let victim = if g.per_node.get(&node.0).is_some_and(|q| !q.is_empty()) {
                Some(node.0)
            } else {
                g.per_node
                    .iter()
                    .find(|(_, q)| !q.is_empty())
                    .map(|(&n, _)| n)
            };
            match victim {
                Some(n) => {
                    if let Some(q) = g.per_node.get_mut(&n) {
                        q.pop_front();
                    }
                    g.total -= 1;
                    dropped += 1;
                }
                None => break,
            }
        }
        g.per_node.entry(node.0).or_default().push_back(hint);
        g.total += 1;
        dropped
    }

    /// Take every hint parked for `node`.
    fn drain(&self, node: NodeId) -> Vec<Hint> {
        let mut g = self.inner.lock();
        let hints: Vec<Hint> = g
            .per_node
            .remove(&node.0)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default();
        g.total -= hints.len();
        hints
    }

    /// Hints currently parked (all nodes).
    fn pending(&self) -> usize {
        self.inner.lock().total
    }

    /// Hints currently parked for `node` alone.
    fn pending_for(&self, node: NodeId) -> usize {
        self.inner
            .lock()
            .per_node
            .get(&node.0)
            .map_or(0, |q| q.len())
    }
}

/// Lock-free counters for everything the engine does. All orderings are
/// Relaxed: pure monotone statistics, no cross-counter invariant.
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Keys pushed to their new owner by proactive recache.
    pub recache_pushed: AtomicU64,
    /// Times the token bucket made the engine wait.
    pub recache_throttled: AtomicU64,
    /// Bucket refills clamped because `now` was behind the last refill
    /// (stale snapshot under a virtual-time burst): no credit granted.
    pub throttle_refill_clamped: AtomicU64,
    /// Keys skipped because the lazy path already re-homed them.
    pub recache_skipped: AtomicU64,
    /// Keys abandoned after exhausting push retries.
    pub recache_failed: AtomicU64,
    /// Recache/hint work rejected by epoch fencing.
    pub stale_epoch_rejected: AtomicU64,
    /// Recovery work rejected because the runtime controller retired its
    /// policy epoch (or posture) before it ran.
    pub policy_fenced: AtomicU64,
    /// Hints parked.
    pub hints_parked: AtomicU64,
    /// Hints dropped by the bound (drop-oldest).
    pub hints_dropped: AtomicU64,
    /// Hints delivered on rejoin.
    pub hints_drained: AtomicU64,
    /// Readmission probes sent.
    pub probes_sent: AtomicU64,
    /// Rejoins detected by probing.
    pub rejoins_detected: AtomicU64,
    /// Keys a revived node re-adopted after digest reconciliation.
    pub reconcile_adopted: AtomicU64,
    /// Keys evicted from a revived node (no longer owned).
    pub reconcile_evicted: AtomicU64,
    /// Recovery jobs started (one per declared node).
    pub recoveries_started: AtomicU64,
    /// Recovery jobs completed.
    pub recoveries_quiesced: AtomicU64,
}

/// Plain-value snapshot of [`RecoveryStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct RecoveryStatsSnapshot {
    pub recache_pushed: u64,
    pub recache_throttled: u64,
    pub throttle_refill_clamped: u64,
    pub recache_skipped: u64,
    pub recache_failed: u64,
    pub stale_epoch_rejected: u64,
    pub policy_fenced: u64,
    pub hints_parked: u64,
    pub hints_dropped: u64,
    pub hints_drained: u64,
    pub probes_sent: u64,
    pub rejoins_detected: u64,
    pub reconcile_adopted: u64,
    pub reconcile_evicted: u64,
    pub recoveries_started: u64,
    pub recoveries_quiesced: u64,
}

impl RecoveryStats {
    fn inc(c: &AtomicU64) {
        // ordering: Relaxed — pure statistic, publishes no data.
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn add(c: &AtomicU64, v: u64) {
        // ordering: Relaxed — pure statistic, publishes no data.
        c.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> RecoveryStatsSnapshot {
        // ordering: Relaxed on every load — independent monotone tallies;
        // reports tolerate a torn view.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        RecoveryStatsSnapshot {
            recache_pushed: ld(&self.recache_pushed),
            recache_throttled: ld(&self.recache_throttled),
            throttle_refill_clamped: ld(&self.throttle_refill_clamped),
            recache_skipped: ld(&self.recache_skipped),
            recache_failed: ld(&self.recache_failed),
            stale_epoch_rejected: ld(&self.stale_epoch_rejected),
            policy_fenced: ld(&self.policy_fenced),
            hints_parked: ld(&self.hints_parked),
            hints_dropped: ld(&self.hints_dropped),
            hints_drained: ld(&self.hints_drained),
            probes_sent: ld(&self.probes_sent),
            rejoins_detected: ld(&self.rejoins_detected),
            reconcile_adopted: ld(&self.reconcile_adopted),
            reconcile_evicted: ld(&self.reconcile_evicted),
            recoveries_started: ld(&self.recoveries_started),
            recoveries_quiesced: ld(&self.recoveries_quiesced),
        }
    }
}

impl RecoveryStatsSnapshot {
    /// Element-wise saturating sum (aggregation across clients).
    pub fn merge(&self, other: &Self) -> Self {
        RecoveryStatsSnapshot {
            recache_pushed: self.recache_pushed.saturating_add(other.recache_pushed),
            recache_throttled: self
                .recache_throttled
                .saturating_add(other.recache_throttled),
            throttle_refill_clamped: self
                .throttle_refill_clamped
                .saturating_add(other.throttle_refill_clamped),
            recache_skipped: self.recache_skipped.saturating_add(other.recache_skipped),
            recache_failed: self.recache_failed.saturating_add(other.recache_failed),
            stale_epoch_rejected: self
                .stale_epoch_rejected
                .saturating_add(other.stale_epoch_rejected),
            policy_fenced: self.policy_fenced.saturating_add(other.policy_fenced),
            hints_parked: self.hints_parked.saturating_add(other.hints_parked),
            hints_dropped: self.hints_dropped.saturating_add(other.hints_dropped),
            hints_drained: self.hints_drained.saturating_add(other.hints_drained),
            probes_sent: self.probes_sent.saturating_add(other.probes_sent),
            rejoins_detected: self.rejoins_detected.saturating_add(other.rejoins_detected),
            reconcile_adopted: self
                .reconcile_adopted
                .saturating_add(other.reconcile_adopted),
            reconcile_evicted: self
                .reconcile_evicted
                .saturating_add(other.reconcile_evicted),
            recoveries_started: self
                .recoveries_started
                .saturating_add(other.recoveries_started),
            recoveries_quiesced: self
                .recoveries_quiesced
                .saturating_add(other.recoveries_quiesced),
        }
    }
}

impl ftc_obs::Export for RecoveryStatsSnapshot {
    fn export_into(&self, out: &mut Vec<ftc_obs::Sample>) {
        use ftc_obs::Sample;
        out.push(Sample::counter(
            "ftc_recovery_pushed_total",
            self.recache_pushed,
        ));
        out.push(Sample::counter(
            "ftc_recovery_throttled_total",
            self.recache_throttled,
        ));
        out.push(Sample::counter(
            "ftc_recovery_throttle_refill_clamped_total",
            self.throttle_refill_clamped,
        ));
        out.push(Sample::counter(
            "ftc_recovery_skipped_total",
            self.recache_skipped,
        ));
        out.push(Sample::counter(
            "ftc_recovery_failed_total",
            self.recache_failed,
        ));
        out.push(Sample::counter(
            "ftc_recovery_stale_epoch_rejected_total",
            self.stale_epoch_rejected,
        ));
        out.push(Sample::counter(
            "ftc_recovery_policy_fenced_total",
            self.policy_fenced,
        ));
        out.push(Sample::counter(
            "ftc_recovery_hints_parked_total",
            self.hints_parked,
        ));
        out.push(Sample::counter(
            "ftc_recovery_hints_dropped_total",
            self.hints_dropped,
        ));
        out.push(Sample::counter(
            "ftc_recovery_hints_drained_total",
            self.hints_drained,
        ));
        out.push(Sample::counter(
            "ftc_recovery_probes_total",
            self.probes_sent,
        ));
        out.push(Sample::counter(
            "ftc_recovery_rejoins_detected_total",
            self.rejoins_detected,
        ));
        out.push(Sample::counter(
            "ftc_recovery_reconcile_adopted_total",
            self.reconcile_adopted,
        ));
        out.push(Sample::counter(
            "ftc_recovery_reconcile_evicted_total",
            self.reconcile_evicted,
        ));
        out.push(Sample::counter(
            "ftc_recovery_started_total",
            self.recoveries_started,
        ));
        out.push(Sample::counter(
            "ftc_recovery_quiesced_total",
            self.recoveries_quiesced,
        ));
    }
}

/// Registry handles cached at engine start (no-op when the client has no
/// observability hub attached).
struct RecoveryObs {
    hub: Arc<ftc_obs::ObsHub>,
    actor: String,
    queue_depth: Arc<ftc_obs::Gauge>,
    throttled: Arc<ftc_obs::Counter>,
    refill_clamped: Arc<ftc_obs::Counter>,
    stale_rejected: Arc<ftc_obs::Counter>,
    policy_fenced: Arc<ftc_obs::Counter>,
    hints_parked: Arc<ftc_obs::Counter>,
    hints_drained: Arc<ftc_obs::Counter>,
    duration_us: Arc<ftc_obs::Histogram>,
}

enum Task {
    /// A node was declared failed under `epoch`: recache its key range.
    Recache { node: NodeId, epoch: u64 },
    /// A node rejoined: reconcile its surviving cache and drain hints.
    Rejoined { node: NodeId },
    /// A suspect node proved reachable again (it answered a foreground
    /// request): flush its parked hints without the full rejoin dance.
    DrainHints { node: NodeId },
    /// Shut the worker down.
    Stop,
}

struct RecacheJob {
    node: NodeId,
    epoch: u64,
    /// Live-policy epoch at admission; a controller switch retires it
    /// and the job is rejected-and-counted on its next slice.
    policy_epoch: u64,
    keys: VecDeque<String>,
    retries: HashMap<String, u32>,
    started: Instant,
}

/// The background recovery engine for one client. Start it with
/// [`HvacClient::enable_recovery`]; it keeps only a weak reference to the
/// client, so dropping the client stops the engine.
pub struct RecoveryEngine {
    config: RecoveryConfig,
    /// The client's clock: every bucket refill, throttle nap, probe
    /// deadline and quiesce wait is stamped or slept through it.
    clock: ClockHandle,
    tx: ClockSender<Task>,
    worker: Mutex<Option<TaskHandle>>,
    /// Set by the worker itself as its first action (a task handle does
    /// not expose a thread id). Drop reads it to detect a self-join; by
    /// then the worker either never ran (unset, join returns fast) or set
    /// it before touching any engine state.
    worker_thread: Arc<OnceLock<std::thread::ThreadId>>,
    bucket: Mutex<TokenBucket>,
    hints: HintStore,
    stats: RecoveryStats,
    /// Queued-or-running recovery tasks (recache + rejoin); probes are
    /// deliberately excluded so a never-returning node cannot hold
    /// quiescence hostage.
    pending: AtomicU64,
    /// Keys awaiting recache across all jobs (the queue-depth gauge).
    queue_depth: AtomicU64,
    obs: OnceLock<RecoveryObs>,
}

impl RecoveryEngine {
    /// Spawn the engine for `client`. One engine per client; the caller
    /// (normally [`HvacClient::enable_recovery`]) stores the `Arc`.
    pub(crate) fn start(
        client: &Arc<HvacClient>,
        config: RecoveryConfig,
    ) -> Result<Arc<Self>, crate::error::CoreError> {
        let clock = client.clock().clone();
        let (tx, rx) = clock.channel::<Task>();
        let engine = Arc::new(RecoveryEngine {
            config,
            tx,
            worker: Mutex::new(None),
            worker_thread: Arc::new(OnceLock::new()),
            bucket: Mutex::new(TokenBucket::new(
                config.recache_rate,
                config.recache_burst,
                clock.now(),
            )),
            clock,
            hints: HintStore::default(),
            stats: RecoveryStats::default(),
            pending: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            obs: OnceLock::new(),
        });
        if let Some(hub) = client.obs_hub() {
            let _ = engine.obs.set(RecoveryObs {
                hub: Arc::clone(&hub),
                actor: format!("recovery:{}", client.node()),
                queue_depth: hub.registry.gauge("ftc_recovery_queue_depth"),
                throttled: hub.registry.counter("ftc_recovery_throttled_total"),
                refill_clamped: hub
                    .registry
                    .counter("ftc_recovery_throttle_refill_clamped_total"),
                stale_rejected: hub
                    .registry
                    .counter("ftc_recovery_stale_epoch_rejected_total"),
                policy_fenced: hub.registry.counter("ftc_recovery_policy_fenced_total"),
                hints_parked: hub.registry.counter("ftc_recovery_hints_parked_total"),
                hints_drained: hub.registry.counter("ftc_recovery_hints_drained_total"),
                duration_us: hub.registry.histogram("ftc_recovery_duration_us"),
            });
        }
        let weak_engine = Arc::downgrade(&engine);
        let weak_client = Arc::downgrade(client);
        let wt = Arc::clone(&engine.worker_thread);
        let worker_clock = engine.clock.clone();
        let join = engine
            .clock
            .spawn(&format!("ftc-recovery-{}", client.node()), move || {
                let _ = wt.set(std::thread::current().id());
                Worker::new(weak_engine, weak_client, rx, worker_clock).run()
            })
            .map_err(|source| crate::error::CoreError::Spawn {
                what: "recovery engine",
                node: client.node(),
                source,
            })?;
        *engine.worker.lock() = Some(join);
        Ok(engine)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RecoveryStatsSnapshot {
        self.stats.snapshot()
    }

    /// Retune the recache token-bucket rate at runtime (the policy
    /// controller's throttle knob). Settles the bucket at the old rate
    /// first, so the change applies only from now on.
    pub fn set_recache_rate(&self, rate: f64) {
        let now = self.clock.now();
        self.bucket.lock().set_rate(rate, now);
    }

    /// A node was declared failed: queue proactive recache of its keys
    /// and, when probing is enabled, start readmission probes.
    pub fn notify_failed(&self, node: NodeId, epoch: u64) {
        // ordering: Relaxed — pending is a saturation-tolerant work tally;
        // the mpsc channel is the synchronizing handoff.
        self.pending.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(Task::Recache { node, epoch }).is_err() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// A node rejoined the placement: reconcile its surviving cache
    /// against the current ring and drain its parked hints.
    pub fn notify_rejoined(&self, node: NodeId) {
        // ordering: Relaxed — see notify_failed.
        self.pending.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(Task::Rejoined { node }).is_err() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Park a replica write for an unreachable node.
    pub fn park_hint(&self, node: NodeId, path: &str, bytes: &ValueBuf, epoch: u64) {
        let dropped = self.hints.park(
            node,
            Hint {
                path: path.to_owned(),
                bytes: bytes.clone(),
                epoch,
            },
            self.config.max_hints,
        );
        RecoveryStats::inc(&self.stats.hints_parked);
        RecoveryStats::add(&self.stats.hints_dropped, dropped as u64);
        if let Some(obs) = self.obs.get() {
            obs.hints_parked.inc();
        }
    }

    /// Hints currently parked.
    pub fn hints_pending(&self) -> usize {
        self.hints.pending()
    }

    /// Hints currently parked for `node`.
    pub fn hints_pending_for(&self, node: NodeId) -> usize {
        self.hints.pending_for(node)
    }

    /// A node that had hints parked against it answered a foreground
    /// request: it is reachable after all (a suspicion blip, not a
    /// death), so flush its hints now instead of waiting for a rejoin
    /// that will never come. No-op when nothing is parked.
    pub fn notify_reachable(&self, node: NodeId) {
        if self.hints.pending_for(node) == 0 {
            return;
        }
        // ordering: Relaxed — see notify_failed.
        self.pending.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(Task::DrainHints { node }).is_err() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Keys still queued for recache.
    pub fn recache_queue_depth(&self) -> u64 {
        // ordering: Relaxed — observability read of a live gauge.
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// True when no recovery work is queued or running (probes excluded).
    pub fn quiesced(&self) -> bool {
        // ordering: Relaxed — a polling check; wait_quiesced loops, so a
        // lagging read only delays the answer by one iteration.
        self.pending.load(Ordering::Relaxed) == 0
    }

    /// Block until the engine quiesces or `timeout` elapses.
    pub fn wait_quiesced(&self, timeout: Duration) -> bool {
        self.clock
            .wait_until(timeout, Duration::from_millis(1), || self.quiesced())
    }

    fn task_done(&self) {
        // ordering: Relaxed — see notify_failed.
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }

    fn set_queue_depth(&self, depth: u64) {
        // ordering: Relaxed — gauge write, observational only.
        self.queue_depth.store(depth, Ordering::Relaxed);
        if let Some(obs) = self.obs.get() {
            obs.queue_depth.set(depth as i64);
        }
    }

    fn flight(&self, event: &str, detail: String) {
        if let Some(obs) = self.obs.get() {
            obs.hub.flight.record(&obs.actor, event, detail);
        }
    }
}

impl RecoveryEngine {
    /// Stop the worker and join it. Idempotent; dropping the last engine
    /// handle does the same, but the worker holds client/engine references
    /// across its blocking waits, so the final drop may happen *on* the
    /// worker thread and leave it to exit detached. An explicit stop from
    /// an owner (e.g. `Cluster::shutdown`) bounds the worker's lifetime
    /// deterministically — required on a virtual clock, where every task
    /// must be joined before the driver exits.
    pub fn stop(&self) {
        let _ = self.tx.send(Task::Stop);
        // The worker may itself hold the last Arc<HvacClient>, whose drop
        // releases this engine from the worker thread — joining there
        // would deadlock, so the thread is detached in that case.
        if self.worker_thread.get() == Some(&std::thread::current().id()) {
            return;
        }
        if let Some(j) = self.worker.lock().take() {
            let _ = j.join();
        }
    }
}

impl Drop for RecoveryEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The worker's transient scheduling state.
struct Worker {
    engine: Weak<RecoveryEngine>,
    client: Weak<HvacClient>,
    rx: ClockReceiver<Task>,
    clock: ClockHandle,
    jobs: VecDeque<RecacheJob>,
    /// Nodes with an active recache job (dedup).
    inflight: HashSet<u32>,
    /// Nodes currently being probed for readmission.
    probing: HashSet<u32>,
    /// (due, node, next backoff) — min-heap by due time.
    probes: BinaryHeap<Reverse<(Instant, u32, Duration)>>,
}

impl Worker {
    fn new(
        engine: Weak<RecoveryEngine>,
        client: Weak<HvacClient>,
        rx: ClockReceiver<Task>,
        clock: ClockHandle,
    ) -> Self {
        Worker {
            engine,
            client,
            rx,
            clock,
            // lint:allow(bounded-queue): one job per failed node, bounded
            // by cluster size; the rate limiter bounds work in flight.
            jobs: VecDeque::new(),
            inflight: HashSet::new(),
            probing: HashSet::new(),
            probes: BinaryHeap::new(),
        }
    }

    fn run(mut self) {
        loop {
            let (Some(eng), Some(cli)) = (self.engine.upgrade(), self.client.upgrade()) else {
                return;
            };
            // 1. Wait for work — no busy spin when idle, zero wait when a
            //    job is mid-flight.
            let wait = if self.jobs.is_empty() {
                let now = self.clock.now();
                let next_probe = self
                    .probes
                    .peek()
                    .map(|Reverse((due, _, _))| due.saturating_duration_since(now));
                next_probe.unwrap_or(IDLE_TICK).min(IDLE_TICK)
            } else {
                Duration::ZERO
            };
            match self.rx.recv_timeout(wait) {
                Ok(Task::Stop) => return,
                Ok(task) => self.admit(&eng, &cli, task),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            loop {
                match self.rx.try_recv() {
                    Ok(Task::Stop) => return,
                    Ok(task) => self.admit(&eng, &cli, task),
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }

            // 2. Fire due probes.
            let now = self.clock.now();
            while let Some(&Reverse((due, node, backoff))) = self.probes.peek() {
                if due > now {
                    break;
                }
                self.probes.pop();
                self.fire_probe(&eng, &cli, NodeId(node), backoff);
            }

            // 3. Advance one recache job by one chunk.
            if let Some(mut job) = self.jobs.pop_front() {
                let done = self.advance(&eng, &cli, &mut job);
                if done {
                    self.finish(&eng, job);
                } else {
                    self.jobs.push_back(job);
                }
            }
            let depth: u64 = self.jobs.iter().map(|j| j.keys.len() as u64).sum();
            eng.set_queue_depth(depth);
        }
    }

    fn admit(&mut self, eng: &Arc<RecoveryEngine>, cli: &Arc<HvacClient>, task: Task) {
        match task {
            Task::Stop => {}
            Task::Recache { node, epoch } => {
                // Posture gate: under a lazy live policy, proactive
                // recache is rejected-and-counted — the foreground lazy
                // path re-homes keys on first access instead. Probes
                // still run below; readmission is posture-independent.
                if !cli.live_policy().proactive() {
                    RecoveryStats::inc(&eng.stats.policy_fenced);
                    if let Some(obs) = eng.obs.get() {
                        obs.policy_fenced.inc();
                    }
                    eng.flight("policy_fenced", format!("recache {node}: lazy posture"));
                    eng.task_done();
                } else if !self.inflight.insert(node.0) {
                    // A job for this node is already queued (e.g. verdict
                    // raced an out-of-band mark_failed).
                    eng.flight("recache_dup", node.to_string());
                    eng.task_done();
                } else {
                    let keys: VecDeque<String> = cli.key_index().keys_of(node.0).into();
                    RecoveryStats::inc(&eng.stats.recoveries_started);
                    eng.mark_phase(node, ftc_obs::Phase::RecoveryStart);
                    eng.flight("recovery_start", format!("{node}: {} keys", keys.len()));
                    self.jobs.push_back(RecacheJob {
                        node,
                        epoch,
                        policy_epoch: cli.live_policy().epoch(),
                        keys,
                        retries: HashMap::new(),
                        started: self.clock.now(),
                    });
                }
                if eng.config.probe && !self.probing.contains(&node.0) {
                    self.probing.insert(node.0);
                    self.probes.push(Reverse((
                        self.clock.now() + eng.config.probe_base,
                        node.0,
                        eng.config.probe_base,
                    )));
                }
            }
            Task::Rejoined { node } => {
                self.probing.remove(&node.0);
                self.reconcile(eng, cli, node);
                self.drain_hints(eng, cli, node);
                eng.task_done();
            }
            Task::DrainHints { node } => {
                self.drain_hints(eng, cli, node);
                eng.task_done();
            }
        }
    }

    /// Process up to one chunk of `job`; true when the job is finished.
    fn advance(
        &mut self,
        eng: &Arc<RecoveryEngine>,
        cli: &Arc<HvacClient>,
        job: &mut RecacheJob,
    ) -> bool {
        // Policy fence: the controller retired the epoch this job was
        // admitted under; running on would act on retired assumptions
        // (wrong posture, wrong throttle, wrong RF). Reject the rest of
        // the job — the lazy read path re-homes any key still needed.
        if cli.live_policy().epoch() != job.policy_epoch {
            RecoveryStats::inc(&eng.stats.policy_fenced);
            if let Some(obs) = eng.obs.get() {
                obs.policy_fenced.inc();
            }
            eng.flight(
                "policy_fenced",
                format!(
                    "{}: policy epoch {} retired, {} keys dropped",
                    job.node,
                    job.policy_epoch,
                    job.keys.len()
                ),
            );
            job.keys.clear();
            return true;
        }
        for _ in 0..RECACHE_CHUNK {
            let Some(key) = job.keys.pop_front() else {
                return true;
            };
            // Rate limit first: a throttled engine must not even touch
            // the PFS.
            let (granted, clamped) = eng.bucket.lock().try_take(self.clock.now());
            if clamped {
                RecoveryStats::inc(&eng.stats.throttle_refill_clamped);
                if let Some(obs) = eng.obs.get() {
                    obs.refill_clamped.inc();
                }
            }
            if !granted {
                RecoveryStats::inc(&eng.stats.recache_throttled);
                if let Some(obs) = eng.obs.get() {
                    obs.throttled.inc();
                }
                job.keys.push_front(key);
                let nap = eng
                    .bucket
                    .lock()
                    .eta(self.clock.now())
                    .unwrap_or(THROTTLE_NAP)
                    .min(THROTTLE_NAP);
                if !nap.is_zero() {
                    self.clock.sleep(nap);
                }
                return false;
            }
            // Epoch fence: re-resolve the owner under the *current* ring.
            let cur_epoch = cli.ring_epoch();
            match cli.owner_of(&key) {
                None => {
                    // Ring emptied out from under us; nothing to push to.
                    RecoveryStats::inc(&eng.stats.recache_failed);
                }
                Some(owner) if owner == job.node => {
                    // The dead node re-owns the key: it rejoined while
                    // this job was queued. Pushing the stale assignment
                    // would fight the warm-rejoin reconcile — reject it.
                    RecoveryStats::inc(&eng.stats.stale_epoch_rejected);
                    if let Some(obs) = eng.obs.get() {
                        obs.stale_rejected.inc();
                    }
                    eng.flight(
                        "stale_epoch_rejected",
                        format!("{key}: epoch {} -> {cur_epoch}", job.epoch),
                    );
                }
                Some(owner) => {
                    if cli.key_index().owner(&key) != Some(job.node.0) {
                        // The lazy path already re-homed this key (a
                        // foreground read recached it); pushing again
                        // would double the PFS traffic.
                        RecoveryStats::inc(&eng.stats.recache_skipped);
                        continue;
                    }
                    match cli.pfs_read(&key) {
                        None => RecoveryStats::inc(&eng.stats.recache_failed),
                        Some(bytes) => {
                            if cli.push_object(owner, &key, &bytes) {
                                cli.key_index().record(owner.0, &key);
                                RecoveryStats::inc(&eng.stats.recache_pushed);
                            } else {
                                // Push failed — likely the successor is in
                                // trouble too. Retry a bounded number of
                                // times (the owner is re-resolved each
                                // time), then abandon to the lazy path.
                                let tries = job.retries.entry(key.clone()).or_insert(0);
                                *tries += 1;
                                if *tries <= eng.config.push_retries {
                                    job.keys.push_back(key);
                                } else {
                                    RecoveryStats::inc(&eng.stats.recache_failed);
                                    cli.key_index().forget(&key);
                                    eng.flight("recache_abandoned", key);
                                }
                            }
                        }
                    }
                }
            }
        }
        job.keys.is_empty()
    }

    fn finish(&mut self, eng: &Arc<RecoveryEngine>, job: RecacheJob) {
        self.inflight.remove(&job.node.0);
        let elapsed = self.clock.since(job.started);
        RecoveryStats::inc(&eng.stats.recoveries_quiesced);
        eng.mark_phase(job.node, ftc_obs::Phase::RecoveryQuiesced);
        if let Some(obs) = eng.obs.get() {
            obs.duration_us.record_micros(elapsed);
        }
        eng.flight("recovery_quiesced", format!("{} in {elapsed:?}", job.node));
        eng.task_done();
    }

    fn fire_probe(
        &mut self,
        eng: &Arc<RecoveryEngine>,
        cli: &Arc<HvacClient>,
        node: NodeId,
        backoff: Duration,
    ) {
        if !self.probing.contains(&node.0) {
            return;
        }
        if cli.live_nodes().contains(&node) {
            // Someone else readmitted it (e.g. an operator revive).
            self.probing.remove(&node.0);
            return;
        }
        RecoveryStats::inc(&eng.stats.probes_sent);
        if cli.probe_ping(node) {
            self.probing.remove(&node.0);
            RecoveryStats::inc(&eng.stats.rejoins_detected);
            eng.flight("probe_rejoin", node.to_string());
            // readmit() notifies the engine, whose Rejoined task performs
            // the warm reconcile and hint drain.
            cli.readmit(node);
        } else {
            let next = (backoff * 2).min(eng.config.probe_max);
            self.probes
                .push(Reverse((self.clock.now() + backoff, node.0, next)));
        }
    }

    /// Warm-rejoin anti-entropy: ask the revived node what survived on
    /// its NVMe, re-adopt what the current ring still routes to it, evict
    /// the rest.
    fn reconcile(&mut self, eng: &Arc<RecoveryEngine>, cli: &Arc<HvacClient>, node: NodeId) {
        let Some(keys) = cli.send_digest(node) else {
            eng.flight("reconcile_unreachable", node.to_string());
            return;
        };
        let (mut adopted, mut evicted) = (0u64, 0u64);
        for key in keys {
            if cli.owner_of(&key) == Some(node) {
                cli.key_index().record(node.0, &key);
                adopted += 1;
            } else {
                // The current ring routes this key elsewhere: holding it
                // would waste NVMe and risk serving a stale assignment.
                let _ = cli.send_evict(node, &key);
                evicted += 1;
            }
        }
        RecoveryStats::add(&eng.stats.reconcile_adopted, adopted);
        RecoveryStats::add(&eng.stats.reconcile_evicted, evicted);
        eng.flight(
            "reconcile",
            format!("{node}: adopted {adopted}, evicted {evicted}"),
        );
    }

    /// Deliver parked hints to a rejoined node. Each hint is re-fenced:
    /// it is only delivered if the current ring still routes the key to
    /// this node — as primary owner *or* as a replica successor (replica
    /// hints are parked against the successor, not the owner).
    fn drain_hints(&mut self, eng: &Arc<RecoveryEngine>, cli: &Arc<HvacClient>, node: NodeId) {
        let hints = eng.hints.drain(node);
        if hints.is_empty() {
            return;
        }
        let (mut drained, mut rejected) = (0u64, 0u64);
        for hint in hints {
            let is_primary = cli.owner_of(&hint.path) == Some(node);
            let still_routed = is_primary || cli.replica_targets(&hint.path).contains(&node);
            if still_routed && cli.push_object(node, &hint.path, &hint.bytes) {
                // The key index tracks primary placement only; a replica
                // landing does not change who owns the key.
                if is_primary {
                    cli.key_index().record(node.0, &hint.path);
                }
                drained += 1;
            } else {
                RecoveryStats::inc(&eng.stats.stale_epoch_rejected);
                if let Some(obs) = eng.obs.get() {
                    obs.stale_rejected.inc();
                }
                rejected += 1;
            }
        }
        RecoveryStats::add(&eng.stats.hints_drained, drained);
        if let Some(obs) = eng.obs.get() {
            for _ in 0..drained {
                obs.hints_drained.inc();
            }
        }
        eng.flight(
            "hints_drained",
            format!("{node}: delivered {drained}, rejected {rejected}"),
        );
    }
}

impl RecoveryEngine {
    fn mark_phase(&self, node: NodeId, phase: ftc_obs::Phase) {
        if let Some(obs) = self.obs.get() {
            obs.hub.timeline.mark(node.0, phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 2, t0);
        assert!(b.try_take(t0).0);
        assert!(b.try_take(t0).0);
        assert!(!b.try_take(t0).0, "burst of 2 exhausted");
        // 100 ms refills exactly one token at 10/s.
        assert!(b.try_take(t0 + Duration::from_millis(100)).0);
        assert!(!b.try_take(t0 + Duration::from_millis(100)).0);
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1000.0, 3, t0);
        // A long idle period must not accumulate more than the burst.
        let later = t0 + Duration::from_secs(60);
        for _ in 0..3 {
            assert!(b.try_take(later).0);
        }
        assert!(!b.try_take(later).0);
    }

    #[test]
    fn zero_rate_bucket_never_refills() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(0.0, 1, t0);
        assert!(b.try_take(t0).0);
        assert!(!b.try_take(t0 + Duration::from_secs(3600)).0);
        assert_eq!(b.eta(t0), None, "no eta when the rate is zero");
    }

    #[test]
    fn token_bucket_refill_is_monotone_under_stale_snapshots() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 1, t0);
        assert!(b.try_take(t0).0);
        let later = t0 + Duration::from_millis(100);
        let (granted, clamped) = b.try_take(later);
        assert!(granted && !clamped, "100ms at 10/s refills one token");
        // A snapshot taken before the last refill must not regress the
        // bucket: clamped, no credit, `last` untouched.
        let (granted, clamped) = b.try_take(t0);
        assert!(!granted && clamped, "stale now: clamped, nothing granted");
        // Because `last` did not regress, replaying `later` cannot
        // re-credit the interval that was already paid out.
        let (granted, clamped) = b.try_take(later);
        assert!(!granted && !clamped, "no double-counted refill");
    }

    #[test]
    fn token_bucket_set_rate_settles_before_switching() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 5, t0);
        for _ in 0..5 {
            assert!(b.try_take(t0).0);
        }
        // 100ms at the old 10/s rate earns exactly one token even though
        // the rate is raised at the same instant: never retroactive.
        b.set_rate(1000.0, t0 + Duration::from_millis(100));
        assert!(b.try_take(t0 + Duration::from_millis(100)).0);
        assert!(!b.try_take(t0 + Duration::from_millis(100)).0);
        // From here the new rate applies: 10ms at 1000/s is 10 tokens,
        // capped at the burst of 5.
        let later = t0 + Duration::from_millis(110);
        for _ in 0..5 {
            assert!(b.try_take(later).0);
        }
        assert!(!b.try_take(later).0);
    }

    #[test]
    fn hint_store_parks_and_drains_per_node() {
        let s = HintStore::default();
        let h = |p: &str| Hint {
            path: p.into(),
            bytes: ValueBuf::copy_from_slice(b"x"),
            epoch: 1,
        };
        assert_eq!(s.park(NodeId(1), h("a"), 10), 0);
        assert_eq!(s.park(NodeId(1), h("b"), 10), 0);
        assert_eq!(s.park(NodeId(2), h("c"), 10), 0);
        assert_eq!(s.pending(), 3);
        let drained = s.drain(NodeId(1));
        assert_eq!(
            drained.iter().map(|h| h.path.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"],
            "FIFO per node"
        );
        assert_eq!(s.pending(), 1);
        assert!(s.drain(NodeId(1)).is_empty(), "drain consumes");
    }

    #[test]
    fn hint_store_drops_oldest_at_capacity() {
        let s = HintStore::default();
        let h = |p: &str| Hint {
            path: p.into(),
            bytes: ValueBuf::copy_from_slice(b"x"),
            epoch: 0,
        };
        assert_eq!(s.park(NodeId(1), h("a"), 2), 0);
        assert_eq!(s.park(NodeId(1), h("b"), 2), 0);
        // Third park for the same node drops its oldest hint.
        assert_eq!(s.park(NodeId(1), h("c"), 2), 1);
        let paths: Vec<String> = s.drain(NodeId(1)).into_iter().map(|h| h.path).collect();
        assert_eq!(paths, vec!["b", "c"]);
        // A different node at capacity steals from the only queue left.
        s.park(NodeId(3), h("x"), 2);
        s.park(NodeId(3), h("y"), 2);
        assert_eq!(s.park(NodeId(4), h("z"), 2), 1);
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn stats_snapshot_and_export() {
        use ftc_obs::{Export, Value};
        let st = RecoveryStats::default();
        RecoveryStats::inc(&st.recache_pushed);
        RecoveryStats::add(&st.hints_drained, 5);
        let snap = st.snapshot();
        assert_eq!(snap.recache_pushed, 1);
        assert_eq!(snap.hints_drained, 5);
        let samples = snap.export();
        assert_eq!(samples.len(), 16, "one sample per counter");
        assert!(samples
            .iter()
            .any(|s| s.name == "ftc_recovery_pushed_total" && s.value == Value::Counter(1)));
        assert!(samples
            .iter()
            .any(|s| s.name == "ftc_recovery_hints_drained_total" && s.value == Value::Counter(5)));
    }

    #[test]
    fn default_config_is_sane() {
        let c = RecoveryConfig::default();
        assert!(c.recache_rate > 0.0);
        assert!(c.recache_burst >= 1);
        assert!(c.probe_base <= c.probe_max);
        assert!(c.max_hints >= 1);
    }
}
