//! The FT-Cache client — the `LD_PRELOAD` shim's brain.
//!
//! Each training process holds one client. A read maps the file path to
//! its owner via the placement structure, issues the RPC, and feeds the
//! failure detector with the outcome. What happens when the detector
//! declares the owner dead is the [`FtPolicy`]:
//!
//! * **NoFT** — propagate the failure; the job dies (baseline HVAC).
//! * **FT w/ PFS** (§IV-A) — remember the node is dead; this and all
//!   future reads of its keys go straight to the PFS.
//! * **FT w/ NVMe** (§IV-B) — remove the node from the hash ring and
//!   retry: the clockwise successor now owns the key, recaching it from
//!   the PFS on first miss.
//!
//! During the suspect window (timeouts seen but below `TIMEOUT_LIMIT`),
//! fault-tolerant policies redirect *the affected request* to the PFS so
//! training never stalls on detection, mirroring the artifact's client.

use crate::controller::{ControllerConfig, LivePolicy, PolicyController, PolicySignals};
use crate::detector::{FailureDetector, Verdict};
use crate::metrics::ClientMetrics;
use crate::overload::{self, BreakerState, CircuitBreaker, RetryBudget};
use crate::policy::{FtConfig, FtPolicy};
use crate::proto::{CacheRequest, CacheResponse, ServeSource};
use crate::recovery::{RecoveryConfig, RecoveryEngine};
use crate::server::CacheNet;
use crate::singleflight::{Join, SingleFlight};
use bytes::Bytes;
use ftc_hashring::{NodeId, Placement};
use ftc_net::xport::{Caller, Transport};
use ftc_net::{RpcError, TraceEventKind};
use ftc_storage::{KeyIndex, Pfs, ValueBuf};
use ftc_time::ClockHandle;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Why a read could not be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// A server failed and the policy (NoFT) does not tolerate it — the
    /// training job aborts, as the baseline does in Fig. 5(b).
    NodeFailed(NodeId),
    /// The file exists neither in any cache nor on the PFS.
    NotFound(String),
    /// No live node remains in the placement.
    NoLiveNodes,
    /// Retries exhausted without an answer (pathological churn).
    Exhausted(String),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::NodeFailed(n) => write!(f, "node {n} failed and policy is NoFT"),
            ReadError::NotFound(p) => write!(f, "file not found: {p}"),
            ReadError::NoLiveNodes => write!(f, "no live nodes remain"),
            ReadError::Exhausted(p) => write!(f, "retries exhausted reading {p}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A successful read plus provenance, for callers that care where bytes
/// came from (benches and tests mostly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The file contents.
    pub bytes: Bytes,
    /// Which path produced them.
    pub via: ReadVia,
}

/// Provenance of a completed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadVia {
    /// A server's NVMe (local or remote to the reader — locality is the
    /// server's business).
    ServerNvme(NodeId),
    /// A server fetched it from the PFS (miss/recache path).
    ServerPfsFetch(NodeId),
    /// The client read the PFS directly (redirect policy or suspect
    /// window).
    DirectPfs,
}

/// Observability handles cached at attach time (one registry lookup per
/// metric, then lock-free recording on the read path).
struct ClientObs {
    hub: Arc<ftc_obs::ObsHub>,
    /// Flight-recorder actor string, e.g. `"client:n100"`.
    actor: String,
    read_nvme_us: Arc<ftc_obs::Histogram>,
    read_server_pfs_us: Arc<ftc_obs::Histogram>,
    read_direct_pfs_us: Arc<ftc_obs::Histogram>,
    read_errors: Arc<ftc_obs::Counter>,
    inflight_reads: Arc<ftc_obs::Gauge>,
}

/// The FT-Cache client for one training process.
pub struct HvacClient {
    me: NodeId,
    /// Inherited from the network at construction: every sleep, backoff
    /// and detector stamp goes through this handle, so a cluster built on
    /// a virtual clock runs the identical code path in virtual time.
    clock: ClockHandle,
    /// RPC issuer, backend-blind: the simulated fabric's endpoint inside
    /// clusters, a pooled TCP caller in `ftc-client`. Everything the
    /// client does to the network goes through this object.
    endpoint: Box<dyn Caller<CacheRequest, CacheResponse>>,
    placement: Mutex<Box<dyn Placement + Send>>,
    detector: Mutex<FailureDetector>,
    config: FtConfig,
    pfs: Arc<Pfs>,
    metrics: Arc<ClientMetrics>,
    /// SplitMix64 state for backoff jitter — client-local and seeded from
    /// the rank, so a chaos campaign replays the exact sleep schedule.
    jitter_rng: Mutex<u64>,
    /// This client's placement-view epoch: bumped (under the placement
    /// lock) on every membership change, stamped onto `ReadServed` trace
    /// events so the race detector can relate reads to ring updates.
    epoch: AtomicU64,
    /// Observability plane, attached after construction (the cluster owns
    /// the hub; `FtConfig` stays `Copy`). Never re-attached.
    obs: OnceLock<ClientObs>,
    /// Observed key→owner assignments, maintained on every served read —
    /// the recovery engine walks this to find a dead node's key range.
    key_index: KeyIndex,
    /// Background recovery engine (proactive recache, hinted handoff,
    /// warm rejoin). Started once via [`Self::enable_recovery`].
    recovery: OnceLock<Arc<RecoveryEngine>>,
    /// Runtime-mutable policy knobs (replication factor, recovery
    /// posture, recache rate), consulted at use time. Mutated only by a
    /// [`PolicyController`]; static clients never see it change.
    live: Arc<LivePolicy>,
    /// Detector signal counters the policy controller delta-polls.
    signals: Arc<PolicySignals>,
    /// Adaptive policy controller. Started once via
    /// [`Self::enable_controller`].
    controller: OnceLock<Arc<PolicyController>>,
    /// Per-node circuit breakers (consulted only when the overload armor
    /// is on; empty and untouched otherwise).
    breakers: Mutex<HashMap<NodeId, CircuitBreaker>>,
    /// Retry token budget: every retry spends a token, so an incident
    /// cannot amplify into a retry storm. Consulted only when armored.
    retry_budget: Mutex<RetryBudget>,
    /// Recent successful read latencies feeding the hedge-delay p99
    /// (bounded ring of [`overload::HEDGE_WINDOW`] samples).
    read_lat: Mutex<LatWindow>,
    /// Open read flights for single-flight coalescing (consulted only
    /// when [`FtConfig::coalesce`] is on). Duplicate concurrent reads of
    /// one key share the leader's result, epoch-guarded.
    inflight: SingleFlight<Result<ReadOutcome, ReadError>>,
}

/// Bounded ring of recent read latencies for the hedge-delay estimate.
#[derive(Default)]
struct LatWindow {
    samples: Vec<Duration>,
    next: usize,
}

impl HvacClient {
    /// Build a client for rank `me` over `server_count` nodes.
    pub fn new(
        me: NodeId,
        net: &CacheNet,
        pfs: Arc<Pfs>,
        server_count: u32,
        config: FtConfig,
    ) -> Self {
        Self::with_transport(me, net, pfs, server_count, config)
    }

    /// Build a client for rank `me` over any [`Transport`] backend —
    /// the constructor `ftc-client` uses to run the identical retry /
    /// detector / placement logic over real TCP sockets.
    pub fn with_transport(
        me: NodeId,
        transport: &dyn Transport<CacheRequest, CacheResponse>,
        pfs: Arc<Pfs>,
        server_count: u32,
        config: FtConfig,
    ) -> Self {
        let clock = transport.clock();
        let retry_budget = RetryBudget::new(config.overload.budget, clock.now());
        HvacClient {
            me,
            clock,
            endpoint: transport.caller(me),
            placement: Mutex::new(config.placement.build(server_count)),
            detector: Mutex::new(FailureDetector::new(config.detector)),
            config,
            pfs,
            metrics: Arc::new(ClientMetrics::default()),
            jitter_rng: Mutex::new(0x9E37_79B9_7F4A_7C15 ^ u64::from(me.0)),
            epoch: AtomicU64::new(0),
            obs: OnceLock::new(),
            key_index: KeyIndex::new(),
            recovery: OnceLock::new(),
            live: Arc::new(LivePolicy::new(
                config.replication,
                crate::policy::DEFAULT_RECACHE_RATE,
            )),
            signals: Arc::new(PolicySignals::default()),
            controller: OnceLock::new(),
            breakers: Mutex::new(HashMap::new()),
            retry_budget: Mutex::new(retry_budget),
            read_lat: Mutex::new(LatWindow::default()),
            inflight: SingleFlight::default(),
        }
    }

    /// Start the background [`RecoveryEngine`] for this client. Call
    /// after [`attach_obs`](Self::attach_obs) so the engine inherits the
    /// hub. First call wins; later calls return the existing engine.
    /// Errors only if the worker thread cannot be spawned.
    pub fn enable_recovery(
        self: &Arc<Self>,
        config: RecoveryConfig,
    ) -> Result<Arc<RecoveryEngine>, crate::error::CoreError> {
        if let Some(e) = self.recovery.get() {
            return Ok(Arc::clone(e));
        }
        let engine = RecoveryEngine::start(self, config)?;
        match self.recovery.set(Arc::clone(&engine)) {
            Ok(()) => Ok(engine),
            // A racing enable won; ours drops (its worker exits via the
            // closed channel) and the winner is returned. The Err payload
            // is just our rejected Arc back. lint:allow(err-catchall)
            Err(_) => Ok(Arc::clone(self.recovery.get().unwrap_or(&engine))),
        }
    }

    /// The recovery engine, if enabled.
    pub fn recovery(&self) -> Option<&Arc<RecoveryEngine>> {
        self.recovery.get()
    }

    /// Start the adaptive [`PolicyController`] for this client. Call
    /// after [`attach_obs`](Self::attach_obs) (for the decision gauges)
    /// and [`enable_recovery`](Self::enable_recovery) (so rate retunes
    /// reach the engine). First call wins; later calls return the
    /// existing controller. Errors only if the worker cannot be spawned.
    pub fn enable_controller(
        self: &Arc<Self>,
        config: ControllerConfig,
    ) -> Result<Arc<PolicyController>, crate::error::CoreError> {
        if let Some(c) = self.controller.get() {
            return Ok(Arc::clone(c));
        }
        let controller = PolicyController::start(self, config)?;
        match self.controller.set(Arc::clone(&controller)) {
            Ok(()) => Ok(controller),
            // A racing enable won; ours stops on drop and the winner is
            // returned. The Err payload is our rejected Arc back.
            // lint:allow(err-catchall)
            Err(_) => Ok(Arc::clone(self.controller.get().unwrap_or(&controller))),
        }
    }

    /// The policy controller, if enabled.
    pub fn controller(&self) -> Option<&Arc<PolicyController>> {
        self.controller.get()
    }

    /// The runtime-mutable policy knobs shared with the controller and
    /// the recovery engine.
    pub fn live_policy(&self) -> &Arc<LivePolicy> {
        &self.live
    }

    /// The detector signal counters the controller delta-polls.
    pub fn policy_signals(&self) -> &Arc<PolicySignals> {
        &self.signals
    }

    /// The client's observed key→owner index.
    pub fn key_index(&self) -> &KeyIndex {
        &self.key_index
    }

    /// Attach the observability hub: read latencies by provenance feed
    /// per-client histograms, and detector / ring transitions stamp the
    /// degraded-window timeline and the flight recorder. First attach
    /// wins; later calls are ignored (a client observes one system).
    pub fn attach_obs(&self, hub: &Arc<ftc_obs::ObsHub>) {
        let _ = self.obs.set(ClientObs {
            hub: Arc::clone(hub),
            actor: format!("client:{}", self.me),
            read_nvme_us: hub.registry.histogram("ftc_client_read_nvme_us"),
            read_server_pfs_us: hub.registry.histogram("ftc_client_read_server_pfs_us"),
            read_direct_pfs_us: hub.registry.histogram("ftc_client_read_direct_pfs_us"),
            read_errors: hub.registry.counter("ftc_client_read_errors_total"),
            inflight_reads: hub.registry.gauge("ftc_client_inflight_reads"),
        });
    }

    /// Stamp `phase` for `node` on the degraded-window timeline and leave
    /// a matching flight-recorder event. No-op until `attach_obs`.
    fn obs_phase(&self, node: NodeId, phase: ftc_obs::Phase, detail: impl FnOnce() -> String) {
        if let Some(obs) = self.obs.get() {
            obs.hub.timeline.mark(node.0, phase);
            obs.hub.flight.record(&obs.actor, phase.label(), detail());
        }
    }

    /// Record a state event under this client's actor when tracing is on.
    /// The closure defers payload construction to the traced-only path.
    fn trace_with(&self, make: impl FnOnce() -> TraceEventKind) {
        if let Some(t) = self.endpoint.tracer() {
            t.record(self.me, make());
        }
    }

    /// Bump the placement epoch and record the membership change. Must be
    /// called with the placement lock held.
    fn bump_epoch(&self, node: NodeId, joined: bool) {
        // ordering: Relaxed — the epoch is only written under the
        // placement lock; the counter itself carries no data, readers
        // pairing it with an owner lookup hold the same lock.
        let old = self.epoch.fetch_add(1, Ordering::Relaxed);
        self.trace_with(|| TraceEventKind::RingUpdate {
            node,
            old_epoch: old,
            new_epoch: old + 1,
            joined,
        });
        if let Some(h) = self.endpoint.history() {
            // The bump is a point event: once it completes, reads this
            // client invokes must not be attributed to an older epoch
            // (the linearizability checker's epoch rule).
            let t = h.now();
            h.record(ftc_net::OpRecord {
                id: 0,
                actor: self.me,
                kind: ftc_net::OpKind::EpochBump,
                key: String::new(),
                node,
                epoch: old + 1,
                invoke: t,
                ret: t,
                digest: 0,
                handoff: false,
            });
        }
        if joined {
            if let Some(obs) = self.obs.get() {
                obs.hub
                    .flight
                    .record(&obs.actor, "readmit", format!("{node} epoch {}", old + 1));
            }
        } else {
            self.obs_phase(node, ftc_obs::Phase::RingUpdate, || {
                format!("{node} removed, epoch {} -> {}", old, old + 1)
            });
        }
    }

    /// The placement-view epoch: number of membership changes this client
    /// has applied so far.
    pub fn ring_epoch(&self) -> u64 {
        // ordering: Relaxed — monotone counter, observational only.
        self.epoch.load(Ordering::Relaxed)
    }

    /// Next uniform draw in `[0, 1)` from the client's jitter stream.
    fn jitter_unit(&self) -> f64 {
        let mut state = self.jitter_rng.lock();
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    // ---- overload armor (breaker / budget / hedging) ---------------

    /// May a call to `node` proceed, per its circuit breaker? Lazily
    /// creates a closed breaker on first contact. An open breaker whose
    /// cool-off lapsed admits half-open probes.
    fn breaker_allow(&self, node: NodeId) -> bool {
        let now = self.clock.now();
        let mut map = self.breakers.lock();
        map.entry(node)
            .or_insert_with(|| CircuitBreaker::new(self.config.overload.breaker))
            .allow(now)
    }

    /// True when `node`'s breaker is fully closed (no trip in progress).
    /// Hedging requires this: half-open probes must run at the full TTL
    /// so a dead node still accumulates detector-grade evidence.
    fn breaker_closed(&self, node: NodeId) -> bool {
        match self.breakers.lock().get(&node) {
            None => true,
            Some(b) => matches!(b.state(), BreakerState::Closed { .. }),
        }
    }

    /// Feed a success into `node`'s breaker (closes half-open, clears
    /// the failure streak).
    fn breaker_success(&self, node: NodeId) {
        if let Some(b) = self.breakers.lock().get_mut(&node) {
            b.on_success();
        }
    }

    /// Feed a failure (timeout, disconnect or shed) into `node`'s
    /// breaker.
    fn breaker_failure(&self, node: NodeId) {
        let now = self.clock.now();
        self.breakers
            .lock()
            .entry(node)
            .or_insert_with(|| CircuitBreaker::new(self.config.overload.breaker))
            .on_failure(now);
    }

    /// Spend one retry token; `false` means the retry must not be sent.
    fn budget_try_spend(&self) -> bool {
        self.retry_budget.lock().try_spend(self.clock.now())
    }

    /// Record a successful read latency into the hedge window.
    fn note_read_latency(&self, took: Duration) {
        let mut w = self.read_lat.lock();
        if w.samples.len() < overload::HEDGE_WINDOW {
            w.samples.push(took);
        } else {
            let at = w.next;
            w.samples[at] = took;
        }
        w.next = (w.next + 1) % overload::HEDGE_WINDOW;
    }

    /// The current hedge delay: the p99 of recent read latencies clamped
    /// to the configured band; the upper clamp before any samples exist.
    fn hedge_delay(&self) -> Duration {
        let h = self.config.overload.hedge;
        let p99 = ftc_obs::percentile(&self.read_lat.lock().samples, 0.99);
        p99.unwrap_or(h.max_delay).clamp(h.min_delay, h.max_delay)
    }

    /// Issue one RPC and normalize the overload signal: an `Overloaded`
    /// reply is counted, reported to the policy controller, and treated
    /// as proof of liveness (the node answered — clear its timeout
    /// window), exactly so that shedding never feeds the failure
    /// detector.
    fn call_counted(
        &self,
        to: NodeId,
        req: CacheRequest,
        ttl: Duration,
    ) -> Result<CacheResponse, RpcError> {
        let r = self.endpoint.call(to, req, ttl);
        if matches!(r, Ok(CacheResponse::Overloaded)) {
            ClientMetrics::inc(&self.metrics.overloaded_observed);
            self.signals.note_shed();
            if self.config.overload.shed_counts_as_failure {
                // Sabotage self-test: feed the shed to the detector as if
                // it were a timeout. A shedding-but-alive node then gets
                // declared dead, and the chaos harness must catch it.
                let _ = self.detector.lock().record_timeout_at(to, self.clock.now());
            } else {
                self.detector.lock().record_success(to);
            }
        }
        r
    }

    /// The read RPC, hedged when the armor allows it: the primary call
    /// runs with a deadline of the latency-derived p99; past that, a
    /// second read goes to the next replica owner at the full TTL and
    /// the first success wins. If both lag, the primary is retried at
    /// the full TTL so the evidence the failure detector sees stays
    /// TTL-grade. Hedging is skipped in brownout (a hedge is optional
    /// load by definition) and while the primary's breaker is anything
    /// but closed.
    fn call_read_armored(
        &self,
        owner: NodeId,
        path: &str,
        ttl: Duration,
    ) -> (NodeId, Result<CacheResponse, RpcError>) {
        let armor = self.config.overload;
        let read = || CacheRequest::Read {
            path: path.to_owned(),
        };
        let hedge_to = if armor.armored
            && armor.hedge.enabled
            && !self.live.brownout()
            && self.breaker_closed(owner)
        {
            self.placement
                .lock()
                .successors(path, 2)
                .into_iter()
                .find(|&n| n != owner)
        } else {
            None
        };
        let delay = self.hedge_delay().min(ttl);
        let (second, delay) = match hedge_to {
            Some(second) if delay < ttl => (second, delay),
            _ => {
                // No distinct second owner (or hedging off): plain call.
                let begun = self.clock.now();
                let r = self.call_counted(owner, read(), ttl);
                if armor.armored && matches!(r, Ok(CacheResponse::Data { .. })) {
                    self.note_read_latency(self.clock.since(begun));
                }
                return (owner, r);
            }
        };
        let begun = self.clock.now();
        match self.call_counted(owner, read(), delay) {
            Ok(resp) => {
                if matches!(resp, CacheResponse::Data { .. }) {
                    self.note_read_latency(self.clock.since(begun));
                }
                (owner, Ok(resp))
            }
            Err(RpcError::Timeout { .. }) => {
                // Primary is past its p99: launch the hedge. The short
                // expiry is armor-internal — it is NOT counted as an rpc
                // timeout and never reaches the detector; the breaker
                // (client-local) absorbs it instead.
                ClientMetrics::inc(&self.metrics.hedges_launched);
                self.breaker_failure(owner);
                match self.call_counted(second, read(), ttl) {
                    Ok(resp) => {
                        ClientMetrics::inc(&self.metrics.hedges_won);
                        (second, Ok(resp))
                    }
                    Err(_hedge_loss) => {
                        self.breaker_failure(second);
                        // Both lag: re-try the primary at the full TTL so
                        // a timeout here is legitimate detector evidence.
                        (owner, self.call_counted(owner, read(), ttl))
                    }
                }
            }
            Err(e) => (owner, Err(e)),
        }
    }

    /// This client's rank/node id.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The active policy.
    pub fn policy(&self) -> FtPolicy {
        self.config.policy
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> Arc<ClientMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Nodes this client's detector has declared failed.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.detector.lock().failed_nodes()
    }

    /// Nodes the placement still routes to.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.placement.lock().live_nodes()
    }

    /// The current owner of `path` under this client's placement view.
    pub fn owner_of(&self, path: &str) -> Option<NodeId> {
        self.placement.lock().owner(path)
    }

    /// Read a file through the fault-tolerant cache.
    pub fn read(&self, path: &str) -> Result<Bytes, ReadError> {
        self.read_traced(path).map(|o| o.bytes)
    }

    /// Read with provenance.
    ///
    /// Retries are governed by [`RetryPolicy`](crate::policy::RetryPolicy):
    /// at most `max_attempts` tries, separated by decorrelated-jitter
    /// backoff, all inside one `deadline_budget`. Whatever the fault
    /// pattern — flapping nodes, moving partitions, total loss — the call
    /// returns in bounded time.
    pub fn read_traced(&self, path: &str) -> Result<ReadOutcome, ReadError> {
        let Some(obs) = self.obs.get() else {
            return self.read_coalesced(path);
        };
        obs.inflight_reads.add(1);
        let started = self.clock.now();
        let result = self.read_coalesced(path);
        let elapsed = self.clock.since(started);
        obs.inflight_reads.add(-1);
        match &result {
            Ok(out) => match out.via {
                ReadVia::ServerNvme(_) => obs.read_nvme_us.record_micros(elapsed),
                ReadVia::ServerPfsFetch(_) => obs.read_server_pfs_us.record_micros(elapsed),
                ReadVia::DirectPfs => obs.read_direct_pfs_us.record_micros(elapsed),
            },
            Err(e) => {
                obs.read_errors.inc();
                obs.hub
                    .flight
                    .record(&obs.actor, "read_error", format!("{path}: {e}"));
            }
        }
        result
    }

    /// Single-flight layer between tracing and the retry loop: the first
    /// reader of a key leads and executes [`read_attempts`](Self::read_attempts);
    /// duplicates arriving while that flight is open wait for the
    /// leader's published result instead of issuing their own RPCs.
    ///
    /// The follower acceptance rule is the data-plane invariant: a
    /// published result is taken **only if** its publish-time ring epoch
    /// still matches this client's current epoch. A kill that rewires
    /// the ring mid-flight forces every follower down the independent
    /// retry path — a coalesced read can never observe the old regime.
    fn read_coalesced(&self, path: &str) -> Result<ReadOutcome, ReadError> {
        if !self.config.coalesce {
            return self.read_attempts(path);
        }
        match self.inflight.join(path) {
            Join::Leader(leader) => {
                ClientMetrics::inc(&self.metrics.singleflight_leaders);
                let result = self.read_attempts(path);
                leader.publish(self.ring_epoch(), result.clone());
                result
            }
            Join::Follower(follower) => {
                // Invoke stamp taken before the wait so the follower's
                // recorded interval brackets the leader's publish — the
                // linearizability checker sees a legal overlapping read.
                let hist = self.endpoint.history();
                let hist_invoke = hist.as_ref().map(|h| h.now());
                let published = follower.wait(&self.clock, self.config.retry.deadline_budget);
                match published {
                    Some(p) if p.epoch == self.ring_epoch() => {
                        ClientMetrics::inc(&self.metrics.coalesced_reads);
                        if let Ok(out) = &p.value {
                            ClientMetrics::inc(&self.metrics.reads_ok);
                            ClientMetrics::add(&self.metrics.bytes_read, out.bytes.len() as u64);
                            let node = match out.via {
                                ReadVia::ServerNvme(n) | ReadVia::ServerPfsFetch(n) => n,
                                ReadVia::DirectPfs => self.me,
                            };
                            if let (Some(h), Some(invoke)) = (hist.as_ref(), hist_invoke) {
                                h.record(ftc_net::OpRecord {
                                    id: 0,
                                    actor: self.me,
                                    kind: ftc_net::OpKind::Read,
                                    key: path.to_owned(),
                                    node,
                                    epoch: p.epoch,
                                    invoke,
                                    ret: h.now(),
                                    digest: ftc_net::fnv1a(&out.bytes),
                                    // A coalesced delivery is not bound to
                                    // the current owner: the leader may
                                    // have been served by a replica or a
                                    // direct PFS read.
                                    handoff: self.owner_of(path) != Some(node),
                                });
                            }
                        }
                        p.value
                    }
                    // Stale epoch or abandoned flight: count it, then
                    // take the ordinary retry loop against the current
                    // ring — correctness over reuse.
                    _ => {
                        ClientMetrics::inc(&self.metrics.coalesced_stale_retries);
                        self.read_attempts(path)
                    }
                }
            }
        }
    }

    /// The retry loop behind [`read_traced`](Self::read_traced).
    fn read_attempts(&self, path: &str) -> Result<ReadOutcome, ReadError> {
        let ttl = self.config.detector.ttl;
        let retry = self.config.retry;
        let started = self.clock.now();
        let mut backoff = Duration::ZERO;
        // Set when this read fails over from a removed ring owner; a
        // subsequent server-served success is then that node's first
        // recached hit — the end of its degraded window.
        let mut failed_over_from: Option<NodeId> = None;

        for attempt in 0..retry.max_attempts.max(1) {
            if attempt > 0 {
                // Retry budget: under armor every retry spends a token, so
                // an incident amplifies into at most `capacity` extra RPCs
                // instead of a retry storm. Denial is not an error — the
                // read degrades to the PFS (or Exhausted under NoFT, which
                // has no fallback by definition).
                if self.config.overload.armored && !self.budget_try_spend() {
                    ClientMetrics::inc(&self.metrics.budget_denied);
                    if self.config.policy == FtPolicy::NoFt {
                        return Err(ReadError::Exhausted(path.to_owned()));
                    }
                    return self.read_pfs_direct(path);
                }
                let spent = self.clock.since(started);
                if spent >= retry.deadline_budget {
                    return Err(ReadError::Exhausted(path.to_owned()));
                }
                backoff = retry.next_backoff(backoff, self.jitter_unit());
                let nap = backoff.min(retry.deadline_budget - spent);
                if !nap.is_zero() {
                    self.clock.sleep(nap);
                }
            }
            // The history invoke stamp is taken *before* the placement
            // lock: any epoch bump that completed before this instant is
            // therefore fully ordered before the owner/epoch capture
            // below, which is what makes the checker's per-client epoch
            // rule sound (no false positives from in-flight bumps).
            let hist = self.endpoint.history();
            let hist_invoke = hist.as_ref().map(|h| h.now());
            // Capture the owner and the placement epoch under one lock
            // acquisition: the pair is what the race detector checks a
            // served read against.
            let (owner, view_epoch) = {
                let p = self.placement.lock();
                match p.owner(path) {
                    Some(n) => (n, self.ring_epoch()),
                    None => return Err(ReadError::NoLiveNodes),
                }
            };

            // PFS-redirect keeps its static placement: keys of dead owners
            // divert here forever.
            if self.config.policy == FtPolicy::PfsRedirect && self.detector.lock().is_failed(owner)
            {
                return self.read_pfs_direct(path);
            }

            // Circuit breaker: a tripped owner is not called at all — no
            // TTL burned, no queue slot consumed on a node that just
            // failed repeatedly. Half-open admits its probe quota through.
            if self.config.overload.armored && !self.breaker_allow(owner) {
                ClientMetrics::inc(&self.metrics.breaker_short_circuits);
                if self.config.policy == FtPolicy::NoFt {
                    return Err(ReadError::NodeFailed(owner));
                }
                ClientMetrics::inc(&self.metrics.shed_pfs_fallbacks);
                return self.read_pfs_direct(path);
            }

            let (served_by, outcome) = self.call_read_armored(owner, path, ttl);
            match outcome {
                Ok(CacheResponse::Data { bytes, source, .. }) => {
                    self.detector.lock().record_success(served_by);
                    if self.config.overload.armored {
                        self.breaker_success(served_by);
                    }
                    self.key_index.record(served_by.0, path);
                    if let Some(engine) = self.recovery.get() {
                        // A formerly-suspect node answered: any replica
                        // hints parked against it can flush now.
                        engine.notify_reachable(served_by);
                    }
                    self.trace_with(|| TraceEventKind::ReadServed {
                        key: path.to_owned(),
                        owner: served_by,
                        epoch: view_epoch,
                    });
                    // Attribute the read to the policy epoch current at
                    // completion; the race detector proves the record is
                    // ordered against every PolicyChange.
                    self.trace_with(|| TraceEventKind::PolicyRead {
                        key: path.to_owned(),
                        policy_epoch: self.live.epoch(),
                    });
                    if let (Some(h), Some(invoke)) = (hist.as_ref(), hist_invoke) {
                        h.record(ftc_net::OpRecord {
                            id: 0,
                            actor: self.me,
                            kind: ftc_net::OpKind::Read,
                            key: path.to_owned(),
                            node: served_by,
                            epoch: view_epoch,
                            invoke,
                            ret: h.now(),
                            digest: ftc_net::fnv1a(&bytes),
                            // Served after failing over from a removed
                            // owner, or by a hedge to the next replica
                            // owner — the documented handoff exception.
                            handoff: failed_over_from.is_some() || served_by != owner,
                        });
                    }
                    if let Some(dead) = failed_over_from.take() {
                        // The dead node's keys are serving from a survivor
                        // again: its degraded window (for this client) is
                        // over.
                        self.obs_phase(dead, ftc_obs::Phase::FirstRecachedHit, || {
                            format!("{path} now served by {served_by} (was {dead})")
                        });
                    }
                    ClientMetrics::inc(&self.metrics.reads_ok);
                    ClientMetrics::add(&self.metrics.bytes_read, bytes.len() as u64);
                    let via = match source {
                        ServeSource::NvmeHit => {
                            ClientMetrics::inc(&self.metrics.nvme_hits);
                            ReadVia::ServerNvme(served_by)
                        }
                        ServeSource::PfsFetch => {
                            ClientMetrics::inc(&self.metrics.pfs_fetches_via_server);
                            // Write-through replication: the file just
                            // entered the cache tier; push copies to the
                            // ring successors so even the owner's failure
                            // needs no PFS fallback. The factor is read
                            // from the live policy so a runtime RF change
                            // takes effect without a client restart.
                            if self.live.replication() > 1 {
                                self.replicate(path, &bytes, served_by);
                            }
                            ReadVia::ServerPfsFetch(served_by)
                        }
                    };
                    // `into_bytes` reuses the decoded window's allocation
                    // when it spans the whole buffer; a window into a
                    // larger frame detaches here so the frame can drop.
                    return Ok(ReadOutcome {
                        bytes: bytes.into_bytes(),
                        via,
                    });
                }
                Ok(CacheResponse::NotFound { .. }) => {
                    self.detector.lock().record_success(served_by);
                    if self.config.overload.armored {
                        self.breaker_success(served_by);
                    }
                    return Err(ReadError::NotFound(path.to_owned()));
                }
                Ok(CacheResponse::Overloaded) => {
                    // The node is alive but shedding (counted and fed to
                    // the controller inside `call_counted`). Never a
                    // detector signal — but the breaker notes it, so a
                    // client hammering a saturated node backs off.
                    if self.config.overload.armored {
                        self.breaker_failure(served_by);
                    }
                    if let Some(obs) = self.obs.get() {
                        obs.hub.flight.record(
                            &obs.actor,
                            "shed",
                            format!("{path} shed by {served_by}"),
                        );
                    }
                    if self.config.policy == FtPolicy::NoFt {
                        // No fallback: burn a retry attempt on the same
                        // owner after backoff.
                        ClientMetrics::inc(&self.metrics.retries);
                        continue;
                    }
                    // Degrade the request, not the job: this read goes to
                    // the PFS; the next one re-tries the cache tier.
                    ClientMetrics::inc(&self.metrics.shed_pfs_fallbacks);
                    return self.read_pfs_direct(path);
                }
                Ok(CacheResponse::Pong)
                | Ok(CacheResponse::PutAck { .. })
                | Ok(CacheResponse::DigestReply { .. })
                | Ok(CacheResponse::EvictAck { .. }) => {
                    // Protocol confusion; count as a retry and try again.
                    ClientMetrics::inc(&self.metrics.retries);
                    continue;
                }
                Err(e) if e.indicates_failure() => {
                    ClientMetrics::inc(&self.metrics.rpc_timeouts);
                    if self.config.overload.armored {
                        self.breaker_failure(owner);
                    }
                    if let Some(obs) = self.obs.get() {
                        // First timeout per incident; later ones are
                        // no-ops inside the recorder.
                        obs.hub.timeline.mark(owner.0, ftc_obs::Phase::FirstTimeout);
                    }
                    let verdict = self
                        .detector
                        .lock()
                        .record_timeout_at(owner, self.clock.now());
                    match verdict {
                        Verdict::Suspect { count } => {
                            self.signals.note_suspect();
                            self.trace_with(|| TraceEventKind::Suspect { node: owner, count });
                            self.obs_phase(owner, ftc_obs::Phase::Suspect, || {
                                format!("{owner} timeout #{count}")
                            });
                        }
                        Verdict::JustFailed => {
                            self.signals.note_declare();
                            self.trace_with(|| TraceEventKind::Declare { node: owner });
                            self.obs_phase(owner, ftc_obs::Phase::Declare, || {
                                format!("{owner} declared failed")
                            });
                        }
                        Verdict::AlreadyFailed => {}
                    }
                    match self.config.policy {
                        FtPolicy::NoFt => return Err(ReadError::NodeFailed(owner)),
                        FtPolicy::PfsRedirect => {
                            if verdict == Verdict::JustFailed {
                                ClientMetrics::inc(&self.metrics.nodes_declared_failed);
                            }
                            // Whether suspect or declared: this request is
                            // redirected now (§IV-A operational flow ③).
                            return self.read_pfs_direct(path);
                        }
                        FtPolicy::RingRecache => match verdict {
                            Verdict::JustFailed | Verdict::AlreadyFailed => {
                                let removed = {
                                    let mut p = self.placement.lock();
                                    if p.contains(owner) {
                                        let _ = p.remove_node(owner);
                                        self.bump_epoch(owner, false);
                                        true
                                    } else {
                                        false
                                    }
                                };
                                if removed {
                                    self.notify_recovery_failed(owner);
                                }
                                if verdict == Verdict::JustFailed {
                                    ClientMetrics::inc(&self.metrics.nodes_declared_failed);
                                }
                                failed_over_from = Some(owner);
                                ClientMetrics::inc(&self.metrics.retries);
                                continue; // new clockwise owner serves it
                            }
                            Verdict::Suspect { .. } => {
                                // Keep training moving during the
                                // detection window without paying another
                                // TTL on the same node.
                                return self.read_pfs_direct(path);
                            }
                        },
                    }
                }
                // lint:allow(err-catchall): deliberately exhaustive —
                // every non-failure error shares one fallback.
                Err(_) => {
                    // UnknownNode / local shutdown: not a liveness signal,
                    // but under NoFT there is no fallback either — the
                    // error must surface, not silently divert to the PFS.
                    if self.config.policy == FtPolicy::NoFt {
                        return Err(ReadError::NodeFailed(owner));
                    }
                    ClientMetrics::inc(&self.metrics.retries);
                    return self.read_pfs_direct(path);
                }
            }
        }
        Err(ReadError::Exhausted(path.to_owned()))
    }

    /// Declare a node failed out-of-band (e.g. the scheduler told us) and
    /// apply the policy's membership consequence immediately.
    pub fn mark_failed(&self, node: NodeId) {
        self.detector.lock().mark_failed(node);
        self.trace_with(|| TraceEventKind::Declare { node });
        self.obs_phase(node, ftc_obs::Phase::Declare, || {
            format!("{node} declared failed out-of-band")
        });
        if self.config.policy == FtPolicy::RingRecache {
            let removed = {
                let mut p = self.placement.lock();
                if p.contains(node) {
                    let _ = p.remove_node(node);
                    self.bump_epoch(node, false);
                    true
                } else {
                    false
                }
            };
            if removed {
                self.notify_recovery_failed(node);
            }
        }
    }

    /// Elastic grow-back: re-admit a repaired node to the placement and
    /// clear its failed flag. Under RingRecache the ring re-add restores
    /// the node's original arcs, so its keys route back to it. With the
    /// recovery engine enabled the rejoin is *warm*: the engine
    /// reconciles the node's surviving NVMe contents against the current
    /// ring and drains any hints parked for it; otherwise the cache
    /// refills through the ordinary miss path.
    pub fn readmit(&self, node: NodeId) {
        self.detector.lock().clear_failed(node);
        self.trace_with(|| TraceEventKind::Readmit { node });
        let rejoined = {
            let mut p = self.placement.lock();
            if !p.contains(node) {
                let _ = p.add_node(node);
                self.bump_epoch(node, true);
                true
            } else {
                false
            }
        };
        if rejoined {
            if let Some(engine) = self.recovery.get() {
                engine.notify_rejoined(node);
            }
        }
    }

    /// Hand a failure verdict to the recovery engine (no-op when the
    /// engine is not enabled). Called after the membership change, so the
    /// stamped epoch is the post-removal one.
    fn notify_recovery_failed(&self, node: NodeId) {
        if let Some(engine) = self.recovery.get() {
            engine.notify_failed(node, self.ring_epoch());
        }
    }

    // ---- narrow RPC surface for the recovery engine ----------------

    /// The clock every timed operation of this client goes through.
    pub(crate) fn clock(&self) -> &ClockHandle {
        &self.clock
    }

    /// Record a policy-epoch transition under this client's actor, so
    /// the happens-before checker can order reads against it.
    pub(crate) fn trace_policy_change(&self, old_epoch: u64, new_epoch: u64) {
        self.trace_with(|| TraceEventKind::PolicyChange {
            old_epoch,
            new_epoch,
        });
    }

    /// The attached observability hub, if any.
    pub(crate) fn obs_hub(&self) -> Option<Arc<ftc_obs::ObsHub>> {
        self.obs.get().map(|o| Arc::clone(&o.hub))
    }

    /// Read a file straight from the PFS without touching read metrics
    /// (recovery traffic is not a foreground read).
    pub(crate) fn pfs_read(&self, path: &str) -> Option<ValueBuf> {
        self.pfs.read(path)
    }

    /// Push an object to a node's cache; true on acknowledged store.
    pub(crate) fn push_object(&self, node: NodeId, path: &str, bytes: &ValueBuf) -> bool {
        matches!(
            self.call_counted(
                node,
                CacheRequest::Put {
                    path: path.to_owned(),
                    bytes: bytes.clone(),
                },
                self.config.detector.ttl,
            ),
            Ok(CacheResponse::PutAck { .. })
        )
    }

    /// Ask a node for its NVMe key digest; `None` when unreachable.
    pub(crate) fn send_digest(&self, node: NodeId) -> Option<Vec<String>> {
        match self.call_counted(node, CacheRequest::Digest, self.config.detector.ttl) {
            Ok(CacheResponse::DigestReply { keys }) => Some(keys),
            _ => None,
        }
    }

    /// Tell a node to drop a key it no longer owns; true when acked.
    pub(crate) fn send_evict(&self, node: NodeId, path: &str) -> bool {
        matches!(
            self.call_counted(
                node,
                CacheRequest::Evict {
                    path: path.to_owned(),
                },
                self.config.detector.ttl,
            ),
            Ok(CacheResponse::EvictAck { .. })
        )
    }

    /// Liveness probe; true when the node answered.
    pub(crate) fn probe_ping(&self, node: NodeId) -> bool {
        matches!(
            self.call_counted(node, CacheRequest::Ping, self.config.detector.ttl),
            Ok(CacheResponse::Pong)
        )
    }

    /// Push `bytes` to the next `replication - 1` ring successors of
    /// `path`.
    ///
    /// A failed put is no longer silent: it is counted
    /// ([`ClientMetrics::replica_write_failures`]), retried once under
    /// the client's [`RetryPolicy`](crate::policy::RetryPolicy) backoff,
    /// and — when the recovery engine is enabled — parked as a hint so
    /// the replica lands when the target rejoins. A target the detector
    /// already declared dead is not even attempted; its replica goes
    /// straight to the hint store. A merely *suspect* target is parked
    /// too — no point burning a TTL on a node that just timed out; the
    /// hint flushes as soon as the node answers anything
    /// ([`RecoveryEngine::notify_reachable`]) or rejoins.
    fn replicate(&self, path: &str, bytes: &ValueBuf, owner: NodeId) {
        for node in self
            .replica_targets(path)
            .into_iter()
            .filter(|&n| n != owner)
        {
            let (dead, suspect) = {
                let d = self.detector.lock();
                (d.is_failed(node), d.is_suspect_at(node, self.clock.now()))
            };
            if dead {
                ClientMetrics::inc(&self.metrics.replica_write_failures);
                self.park_replica_hint(node, path, bytes);
                continue;
            }
            if suspect && self.recovery.get().is_some() {
                // Not a failure — a deliberate detour around a node the
                // detector distrusts right now.
                self.park_replica_hint(node, path, bytes);
                continue;
            }
            if self.push_object(node, path, bytes) {
                ClientMetrics::inc(&self.metrics.replicas_written);
                continue;
            }
            ClientMetrics::inc(&self.metrics.replica_write_failures);
            let nap = self
                .config
                .retry
                .next_backoff(Duration::ZERO, self.jitter_unit());
            if !nap.is_zero() {
                self.clock.sleep(nap);
            }
            if self.push_object(node, path, bytes) {
                ClientMetrics::inc(&self.metrics.replicas_written);
            } else {
                ClientMetrics::inc(&self.metrics.replica_write_failures);
                self.park_replica_hint(node, path, bytes);
            }
        }
    }

    /// Every node the current ring routes `path` to (primary first, then
    /// the replica successors). The recovery engine re-fences parked
    /// hints against this set at drain time.
    pub(crate) fn replica_targets(&self, path: &str) -> Vec<NodeId> {
        // Re-resolved from the *current* ring epoch and the *live*
        // replication factor on every call: a runtime RF change (policy
        // controller) or membership change takes effect immediately,
        // without a client restart.
        self.placement
            .lock()
            .successors(path, self.live.replication() as usize)
    }

    /// Park a replica that could not be delivered; counted only when the
    /// recovery engine is there to eventually drain it.
    fn park_replica_hint(&self, node: NodeId, path: &str, bytes: &ValueBuf) {
        if let Some(engine) = self.recovery.get() {
            engine.park_hint(node, path, bytes, self.ring_epoch());
            ClientMetrics::inc(&self.metrics.replicas_hinted);
        }
    }

    fn read_pfs_direct(&self, path: &str) -> Result<ReadOutcome, ReadError> {
        match self.pfs.read(path) {
            Some(bytes) => {
                ClientMetrics::inc(&self.metrics.reads_ok);
                ClientMetrics::inc(&self.metrics.pfs_direct_reads);
                ClientMetrics::add(&self.metrics.bytes_read, bytes.len() as u64);
                Ok(ReadOutcome {
                    bytes: bytes.into_bytes(),
                    via: ReadVia::DirectPfs,
                })
            }
            None => Err(ReadError::NotFound(path.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use crate::policy::{PlacementKind, RetryPolicy};
    use crate::server::ServerHandle;
    use ftc_net::Network;
    use ftc_storage::synth_bytes;
    use std::time::Duration;

    const FILE_SIZE: usize = 64;

    struct Rig {
        net: CacheNet,
        pfs: Arc<Pfs>,
        servers: Vec<ServerHandle>,
    }

    fn rig(nodes: u32, files: usize) -> Rig {
        let net: CacheNet = Network::instant(99);
        let pfs = Arc::new(Pfs::in_memory());
        for i in 0..files {
            let p = format!("train/s{i}.bin");
            pfs.stage(&p, synth_bytes(&p, FILE_SIZE));
        }
        let servers = (0..nodes)
            .map(|i| {
                ServerHandle::spawn(NodeId(i), &net, Arc::clone(&pfs), u64::MAX)
                    .expect("spawn server")
            })
            .collect();
        Rig { net, pfs, servers }
    }

    fn fast_config(policy: FtPolicy) -> FtConfig {
        FtConfig {
            policy,
            placement: PlacementKind::default_for(policy),
            detector: DetectorConfig {
                ttl: Duration::from_millis(25),
                timeout_limit: 2,
                suspicion_window: Duration::from_secs(2),
            },
            retry: RetryPolicy {
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(5),
                ..RetryPolicy::default()
            },
            replication: 1,
            overload: crate::overload::OverloadConfig::default(),
            coalesce: true,
        }
    }

    fn client(r: &Rig, policy: FtPolicy) -> HvacClient {
        HvacClient::new(
            NodeId(100),
            &r.net,
            Arc::clone(&r.pfs),
            r.servers.len() as u32,
            fast_config(policy),
        )
    }

    fn read_all(c: &HvacClient, files: usize) {
        for i in 0..files {
            let p = format!("train/s{i}.bin");
            let bytes = c.read(&p).unwrap();
            assert_eq!(bytes, synth_bytes(&p, FILE_SIZE), "corruption on {p}");
        }
    }

    /// Condition-wait until every server's mover queue has drained —
    /// each enqueue happens before its read's reply, so once the reads
    /// return, depth 0 means every copy landed. Replaces the bare settle
    /// sleeps that made these tests flaky on loaded machines.
    fn settle(r: &Rig) {
        assert!(
            r.net
                .clock()
                .wait_until(Duration::from_secs(5), Duration::from_micros(200), || r
                    .servers
                    .iter()
                    .all(|s| s.mover_queue_depth() == 0),),
            "movers failed to drain"
        );
    }

    #[test]
    fn healthy_reads_verify_for_all_policies() {
        for policy in [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache] {
            let r = rig(4, 12);
            let c = client(&r, policy);
            read_all(&c, 12);
            let m = c.metrics().snapshot();
            assert_eq!(m.reads_ok, 12);
            assert_eq!(m.rpc_timeouts, 0);
            assert_eq!(m.pfs_direct_reads, 0);
        }
    }

    #[test]
    fn second_epoch_is_all_nvme_hits() {
        let r = rig(4, 12);
        let c = client(&r, FtPolicy::RingRecache);
        read_all(&c, 12); // epoch 1: populates caches
        settle(&r); // movers land everything
        let before = r.pfs.total_reads();
        read_all(&c, 12); // epoch 2
        assert_eq!(r.pfs.total_reads(), before, "epoch 2 must not touch PFS");
        let m = c.metrics().snapshot();
        assert!(m.nvme_hits >= 12);
    }

    #[test]
    fn noft_aborts_on_failure() {
        let r = rig(4, 12);
        let c = client(&r, FtPolicy::NoFt);
        read_all(&c, 12);
        // Find a file owned by node 2, then kill node 2.
        let victim_file = (0..12)
            .map(|i| format!("train/s{i}.bin"))
            .find(|p| c.owner_of(p) == Some(NodeId(2)))
            .expect("some file on node 2");
        r.net.kill(NodeId(2));
        r.servers[2].request_stop();
        assert_eq!(
            c.read(&victim_file).unwrap_err(),
            ReadError::NodeFailed(NodeId(2))
        );
    }

    #[test]
    fn noft_surfaces_unknown_node_instead_of_pfs_fallback() {
        // Regression: the Err(_) catch-all used to divert even NoFT reads
        // to the PFS, silently granting the baseline fault tolerance it is
        // defined not to have.
        let r = rig(3, 12);
        // Client believes there are 4 servers; node 3 never registered, so
        // calls to it fail with UnknownNode (not a timeout).
        let c = HvacClient::new(
            NodeId(100),
            &r.net,
            Arc::clone(&r.pfs),
            4,
            fast_config(FtPolicy::NoFt),
        );
        let phantom_file = (0..12)
            .map(|i| format!("train/s{i}.bin"))
            .find(|p| c.owner_of(p) == Some(NodeId(3)))
            .expect("some file maps to the phantom node");
        assert_eq!(
            c.read(&phantom_file).unwrap_err(),
            ReadError::NodeFailed(NodeId(3))
        );
        assert_eq!(
            c.metrics().snapshot().pfs_direct_reads,
            0,
            "NoFT must never fall back to the PFS"
        );
    }

    #[test]
    fn retry_cap_bounds_total_loss() {
        // Every message lost, forever, and every timeout an immediate
        // declared failure (timeout_limit = 1): RingRecache keeps failing
        // over to the next ring owner. The attempt cap must cut that off
        // with Exhausted instead of grinding through the whole ring.
        let r = rig(6, 2);
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.detector.timeout_limit = 1;
        cfg.retry.max_attempts = 4;
        let c = HvacClient::new(NodeId(100), &r.net, Arc::clone(&r.pfs), 6, cfg);
        r.net.set_drop_prob(1.0);
        let err = c.read("train/s0.bin").unwrap_err();
        assert_eq!(err, ReadError::Exhausted("train/s0.bin".into()));
        let m = c.metrics().snapshot();
        assert_eq!(m.rpc_timeouts, 4, "exactly max_attempts RPCs issued");
        assert!(c.live_nodes().len() >= 2, "two nodes never even tried");
    }

    #[test]
    fn pfs_redirect_survives_failure_with_pfs_traffic_every_epoch() {
        let r = rig(4, 16);
        let c = client(&r, FtPolicy::PfsRedirect);
        read_all(&c, 16); // warm epoch
        settle(&r);
        let lost: Vec<String> = (0..16)
            .map(|i| format!("train/s{i}.bin"))
            .filter(|p| c.owner_of(p) == Some(NodeId(1)))
            .collect();
        assert!(!lost.is_empty());
        r.net.kill(NodeId(1));
        r.servers[1].request_stop();
        r.pfs.reset_read_counters();

        read_all(&c, 16); // epoch after failure
        read_all(&c, 16); // and another
        for p in &lost {
            assert_eq!(
                r.pfs.reads_of(p),
                2,
                "redirect must hit PFS once per epoch for {p}"
            );
        }
        assert!(c.failed_nodes().contains(&NodeId(1)));
        // Static placement still names the dead node as owner.
        assert_eq!(c.owner_of(&lost[0]), Some(NodeId(1)));
    }

    #[test]
    fn ring_recache_pays_pfs_once_per_lost_file() {
        let r = rig(4, 16);
        let c = client(&r, FtPolicy::RingRecache);
        read_all(&c, 16); // warm epoch
        settle(&r);
        let lost: Vec<String> = (0..16)
            .map(|i| format!("train/s{i}.bin"))
            .filter(|p| c.owner_of(p) == Some(NodeId(1)))
            .collect();
        assert!(!lost.is_empty());
        r.net.kill(NodeId(1));
        r.servers[1].request_stop();
        r.pfs.reset_read_counters();

        read_all(&c, 16); // failure epoch: detection + recache begins
        read_all(&c, 16); // files read via direct-PFS during detection recache now
        settle(&r);
        // Detection itself may redirect up to (timeout_limit - 1) reads to
        // the PFS before the node is declared failed; beyond that, each
        // lost file costs exactly one recache fetch.
        for p in &lost {
            assert!(
                r.pfs.reads_of(p) <= 2,
                "at most suspect-redirect + recache for {p}"
            );
        }
        assert!(
            r.pfs.total_reads() <= lost.len() as u64 + 1,
            "only lost files (plus the detection window) may be refetched: {} reads for {} lost",
            r.pfs.total_reads(),
            lost.len()
        );

        // Steady state: once recached, later epochs add zero PFS traffic.
        r.pfs.reset_read_counters();
        read_all(&c, 16);
        read_all(&c, 16);
        assert_eq!(
            r.pfs.total_reads(),
            0,
            "post-recache epochs must be PFS-free"
        );
        // Ring no longer routes to the dead node.
        assert!(!c.live_nodes().contains(&NodeId(1)));
        for p in &lost {
            assert_ne!(c.owner_of(p), Some(NodeId(1)));
        }
    }

    #[test]
    fn suspect_window_redirects_but_recovers() {
        let r = rig(3, 6);
        let c = client(&r, FtPolicy::RingRecache);
        read_all(&c, 6);
        // One transient drop: every message lost briefly.
        r.net.set_drop_prob(1.0);
        let p = "train/s0.bin";
        let out = c.read_traced(p).unwrap();
        assert_eq!(out.via, ReadVia::DirectPfs, "suspect window uses PFS");
        r.net.set_drop_prob(0.0);
        // Node must NOT have been declared failed by a single timeout
        // (timeout_limit = 2).
        assert!(c.failed_nodes().is_empty());
        assert_eq!(c.live_nodes().len(), 3);
        // And a healthy read resets the count.
        let out = c.read_traced(p).unwrap();
        assert!(matches!(
            out.via,
            ReadVia::ServerNvme(_) | ReadVia::ServerPfsFetch(_)
        ));
    }

    #[test]
    fn cascading_failures_leave_last_node_serving() {
        let r = rig(4, 16);
        let c = client(&r, FtPolicy::RingRecache);
        read_all(&c, 16);
        for dead in 0..3u32 {
            r.net.kill(NodeId(dead));
            r.servers[dead as usize].request_stop();
            // Two passes: detection (timeout_limit = 2) needs at least two
            // timed-out reads against the dead node.
            read_all(&c, 16);
            read_all(&c, 16);
        }
        assert_eq!(c.live_nodes(), vec![NodeId(3)]);
        let m = c.metrics().snapshot();
        assert_eq!(m.nodes_declared_failed, 3);
    }

    #[test]
    fn all_nodes_dead_is_no_live_nodes() {
        let r = rig(2, 4);
        let c = client(&r, FtPolicy::RingRecache);
        read_all(&c, 4);
        for dead in 0..2u32 {
            r.net.kill(NodeId(dead));
            r.servers[dead as usize].request_stop();
        }
        // Reads keep succeeding (via retries/failover) until the ring is
        // empty, then report NoLiveNodes.
        let mut err = None;
        for _ in 0..16 {
            if let Err(e) = c.read("train/s0.bin") {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(ReadError::NoLiveNodes));
    }

    #[test]
    fn missing_file_not_found() {
        let r = rig(2, 2);
        let c = client(&r, FtPolicy::RingRecache);
        assert_eq!(
            c.read("ghost.bin").unwrap_err(),
            ReadError::NotFound("ghost.bin".into())
        );
    }

    #[test]
    fn mark_failed_and_readmit_roundtrip() {
        let r = rig(4, 8);
        let c = client(&r, FtPolicy::RingRecache);
        let owners_before: Vec<_> = (0..8)
            .map(|i| c.owner_of(&format!("train/s{i}.bin")))
            .collect();
        c.mark_failed(NodeId(2));
        assert!(!c.live_nodes().contains(&NodeId(2)));
        c.readmit(NodeId(2));
        let owners_after: Vec<_> = (0..8)
            .map(|i| c.owner_of(&format!("train/s{i}.bin")))
            .collect();
        assert_eq!(owners_before, owners_after, "rejoin restores placement");
        read_all(&c, 8);
    }

    #[test]
    fn replication_eliminates_post_failure_pfs_traffic() {
        let r = rig(4, 16);
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.replication = 2;
        let c = HvacClient::new(
            NodeId(100),
            &r.net,
            Arc::clone(&r.pfs),
            r.servers.len() as u32,
            cfg,
        );
        read_all(&c, 16); // warm epoch: fetch + replicate to successors
        settle(&r);
        let m = c.metrics().snapshot();
        assert_eq!(m.replicas_written, 16, "each file pushed to one successor");

        r.net.kill(NodeId(1));
        r.servers[1].request_stop();
        // Detection passes (suspect windows may redirect a couple of reads).
        read_all(&c, 16);
        read_all(&c, 16);
        r.pfs.reset_read_counters();
        // Steady state: the successors already hold every lost file, so
        // unlike plain RingRecache there is no recache burst at all.
        read_all(&c, 16);
        read_all(&c, 16);
        assert_eq!(
            r.pfs.total_reads(),
            0,
            "replication means zero PFS fallback after failure"
        );
    }

    #[test]
    fn failure_stamps_full_degraded_window_timeline() {
        use ftc_obs::Phase;
        let r = rig(4, 16);
        let c = Arc::new(client(&r, FtPolicy::RingRecache));
        let hub = ftc_obs::ObsHub::shared();
        c.attach_obs(&hub);
        let engine = c
            .enable_recovery(crate::recovery::RecoveryConfig {
                probe: false,
                ..Default::default()
            })
            .expect("start engine");
        read_all(&c, 16); // warm epoch
        settle(&r);

        hub.timeline.mark(1, Phase::Kill); // what the injector would stamp
        r.net.kill(NodeId(1));
        r.servers[1].request_stop();
        read_all(&c, 16); // detection pass
        read_all(&c, 16); // failover pass: first recached hits
        assert!(
            engine.wait_quiesced(Duration::from_secs(10)),
            "recovery engine must quiesce"
        );

        let incidents = hub.timeline.incidents();
        let inc = incidents
            .iter()
            .find(|i| i.node == 1)
            .expect("incident for n1");
        for phase in Phase::ALL {
            assert!(
                inc.stamp(phase).is_some(),
                "phase {} never stamped: {inc}",
                phase.label()
            );
        }
        let det = inc.detection_latency().expect("detection latency");
        let rec = inc.recovery_latency().expect("recovery latency");
        let qui = inc.quiesce_latency().expect("quiesce latency");
        assert!(det <= rec);
        // Detection needs timeout_limit = 2 TTLs of 25 ms; recovery adds
        // the failover read. All must be sane wall-clock values.
        assert!(det >= Duration::from_millis(25), "det = {det:?}");
        assert!(rec < Duration::from_secs(30), "rec = {rec:?}");
        assert!(qui < Duration::from_secs(30), "qui = {qui:?}");
        // Read-path histograms saw the traffic, split by provenance.
        let nvme = hub.registry.histogram("ftc_client_read_nvme_us").snapshot();
        assert!(nvme.count >= 16, "warm epoch must land as NVMe hits");
        // The flight recorder holds the whole story.
        let dump = hub.flight.dump();
        for needle in [
            "suspect",
            "declare",
            "ring_update",
            "first_recached_hit",
            "recovery_start",
            "recovery_quiesced",
        ] {
            assert!(dump.contains(needle), "missing {needle} in dump:\n{dump}");
        }
    }

    #[test]
    fn proactive_recache_pushes_lost_keys_ahead_of_demand() {
        let r = rig(4, 24);
        let c = Arc::new(client(&r, FtPolicy::RingRecache));
        let engine = c
            .enable_recovery(crate::recovery::RecoveryConfig {
                probe: false,
                ..Default::default()
            })
            .expect("start engine");
        read_all(&c, 24); // warm epoch: index learns every assignment
        settle(&r);
        let lost: Vec<String> = (0..24)
            .map(|i| format!("train/s{i}.bin"))
            .filter(|p| c.owner_of(p) == Some(NodeId(1)))
            .collect();
        assert!(!lost.is_empty());
        assert_eq!(c.key_index().count_of(1), lost.len());

        r.net.kill(NodeId(1));
        r.servers[1].request_stop();
        // Drive detection with ONE key only — the engine must recache the
        // rest without any foreground read touching them.
        let probe_key = &lost[0];
        for _ in 0..3 {
            let _ = c.read(probe_key);
        }
        assert!(!c.live_nodes().contains(&NodeId(1)), "declared + removed");
        assert!(
            engine.wait_quiesced(Duration::from_secs(10)),
            "engine must finish the recache job"
        );
        let stats = engine.stats();
        assert_eq!(stats.recoveries_started, 1);
        assert_eq!(stats.recoveries_quiesced, 1);
        // Every lost key now lives on its new owner: reading them all must
        // produce zero further PFS traffic.
        r.pfs.reset_read_counters();
        read_all(&c, 24);
        assert_eq!(
            r.pfs.total_reads(),
            0,
            "proactive recache must pre-position every lost key \
             (pushed {}, skipped {}, failed {})",
            stats.recache_pushed,
            stats.recache_skipped,
            stats.recache_failed
        );
    }

    #[test]
    fn failed_replica_write_is_counted_retried_and_hinted() {
        let r = rig(4, 64);
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.replication = 2;
        let c = Arc::new(HvacClient::new(
            NodeId(100),
            &r.net,
            Arc::clone(&r.pfs),
            r.servers.len() as u32,
            cfg,
        ));
        let engine = c
            .enable_recovery(crate::recovery::RecoveryConfig {
                probe: false,
                ..Default::default()
            })
            .expect("start engine");
        // Files whose replica target (successor, not owner) is node 2 —
        // only these exercise the failure path when node 2 goes silent.
        let to_n2: Vec<String> = (0..64)
            .map(|i| format!("train/s{i}.bin"))
            .filter(|p| {
                let owner = c.owner_of(p);
                owner != Some(NodeId(2))
                    && c.placement
                        .lock()
                        .successors(p, 2)
                        .into_iter()
                        .any(|n| Some(n) != owner && n == NodeId(2))
            })
            .collect();
        assert!(!to_n2.is_empty(), "need files replicating to node 2");
        r.net.kill(NodeId(2));
        r.servers[2].request_stop();
        for p in &to_n2 {
            c.read(p).unwrap();
        }
        let m = c.metrics().snapshot();
        let k = to_n2.len() as u64;
        // Regression: these puts used to vanish without a trace. Now each
        // failed target costs two counted attempts (first try + the one
        // retry) and ends as a parked hint.
        assert_eq!(m.replica_write_failures, 2 * k, "try + retry per target");
        assert_eq!(m.replicas_hinted, k, "every failed replica parked");
        assert_eq!(engine.hints_pending() as u64, k);
        assert_eq!(m.replicas_written, 0, "node 2 never acked anything");
    }

    #[test]
    fn suspect_target_hint_flushes_when_node_answers() {
        let r = rig(4, 64);
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.replication = 2;
        // Wide window: the node must still be suspect when the replica
        // write detours, even on a machine saturated by parallel tests.
        cfg.detector.suspicion_window = Duration::from_secs(60);
        let c = Arc::new(HvacClient::new(
            NodeId(100),
            &r.net,
            Arc::clone(&r.pfs),
            r.servers.len() as u32,
            cfg,
        ));
        let engine = c
            .enable_recovery(crate::recovery::RecoveryConfig {
                probe: false,
                ..Default::default()
            })
            .expect("start engine");
        let name = |i: usize| format!("train/s{i}.bin");
        // A file whose replica successor is node 2 but whose owner isn't.
        let p = (0..64)
            .map(name)
            .find(|p| c.owner_of(p) != Some(NodeId(2)) && c.replica_targets(p).contains(&NodeId(2)))
            .expect("a file replicating to node 2");
        // One recent timeout: node 2 is suspect, not dead — the replica
        // write detours to the hint store without burning a TTL.
        c.detector
            .lock()
            .record_timeout_at(NodeId(2), std::time::Instant::now());
        c.read(&p).unwrap();
        assert_eq!(engine.hints_pending_for(NodeId(2)), 1);
        assert_eq!(
            c.metrics().snapshot().replica_write_failures,
            0,
            "a suspicion detour is not a write failure"
        );
        // Node 2 answers a foreground read: reachable again, hint flushes.
        let owned = (0..64)
            .map(name)
            .find(|q| c.owner_of(q) == Some(NodeId(2)))
            .expect("a file owned by node 2");
        c.read(&owned).unwrap();
        // Wait on the drained *counter*, not `hints_pending`: the engine
        // empties the store before it counts deliveries, so a pending==0
        // wake can race the stats update.
        assert!(
            r.net
                .clock()
                .wait_until(Duration::from_secs(10), Duration::from_millis(2), || {
                    let s = engine.stats();
                    s.hints_drained + s.stale_epoch_rejected > 0
                }),
            "hint must drain"
        );
        let s = engine.stats();
        assert_eq!(engine.hints_pending(), 0);
        assert_eq!(s.hints_parked, 1);
        assert_eq!(s.hints_drained, 1);
        assert_eq!(s.stale_epoch_rejected, 0, "replica hint is not stale");
    }

    #[test]
    fn armored_client_degrades_shed_reads_to_pfs() {
        use crate::overload::{AdmissionConfig, OverloadConfig};
        use ftc_storage::NvmeCache;
        // A zero-capacity admission queue sheds every data request at
        // enqueue: the armored client must degrade those reads to the PFS
        // without feeding the failure detector a single timeout.
        let net: CacheNet = Network::instant(7);
        let pfs = Arc::new(Pfs::in_memory());
        pfs.stage("train/s0.bin", synth_bytes("train/s0.bin", FILE_SIZE));
        let h = ServerHandle::spawn_on_with_admission(
            NodeId(0),
            &net,
            Arc::clone(&pfs),
            Arc::new(NvmeCache::new(u64::MAX)),
            AdmissionConfig {
                queue_capacity: 0,
                ..AdmissionConfig::armored(Duration::from_millis(500))
            },
        )
        .expect("spawn armored server");
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.overload = OverloadConfig::armored();
        let c = HvacClient::new(NodeId(100), &net, Arc::clone(&pfs), 1, cfg);
        let out = c
            .read_traced("train/s0.bin")
            .expect("read degrades, not fails");
        assert_eq!(out.via, ReadVia::DirectPfs, "shed read served by the PFS");
        let m = c.metrics().snapshot();
        assert_eq!(m.overloaded_observed, 1, "the shed reply was typed");
        assert_eq!(m.shed_pfs_fallbacks, 1);
        assert_eq!(m.rpc_timeouts, 0, "a shed is liveness, not a timeout");
        assert!(c.failed_nodes().is_empty(), "shedding node is NOT dead");
        assert_eq!(c.policy_signals().sheds_total(), 1);
        let (capacity_sheds, deadline_sheds) = h.sheds();
        assert_eq!(capacity_sheds, 1);
        assert_eq!(deadline_sheds, 0);
        h.request_stop();
    }

    #[test]
    fn armored_client_retry_budget_denial_degrades_to_pfs() {
        use crate::overload::BudgetConfig;
        // Total message loss with an immediate-declare detector: the
        // unarmored client would burn max_attempts RPCs; the armored one
        // spends its two retry tokens, is denied the third, and degrades
        // to the PFS instead of amplifying the incident.
        let r = rig(6, 2);
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.detector.timeout_limit = 1;
        cfg.retry.max_attempts = 8;
        cfg.overload.armored = true;
        cfg.overload.budget = BudgetConfig {
            capacity: 2.0,
            refill_per_sec: 0.0,
        };
        let c = HvacClient::new(NodeId(100), &r.net, Arc::clone(&r.pfs), 6, cfg);
        r.net.set_drop_prob(1.0);
        let out = c.read_traced("train/s0.bin").expect("PFS fallback");
        assert_eq!(out.via, ReadVia::DirectPfs);
        let m = c.metrics().snapshot();
        assert_eq!(m.budget_denied, 1, "exactly one denied retry ends the loop");
        assert_eq!(
            m.rpc_timeouts, 3,
            "first attempt plus the two budgeted retries"
        );
        assert!(
            c.live_nodes().len() >= 3,
            "budget denial spared the rest of the ring"
        );
    }

    #[test]
    fn hedged_read_rescues_dead_owner_without_detector_evidence() {
        use crate::overload::OverloadConfig;
        // The owner goes silent; the hedge (cold-start delay 20 ms, under
        // the 25 ms TTL) fires a second read at the next ring owner and
        // wins. The short primary expiry is armor-internal: no rpc
        // timeout is counted and the detector never hears about it.
        let r = rig(4, 8);
        let mut cfg = fast_config(FtPolicy::RingRecache);
        cfg.overload = OverloadConfig::armored();
        let c = HvacClient::new(NodeId(100), &r.net, Arc::clone(&r.pfs), 4, cfg);
        let p = "train/s0.bin";
        let owner = c.owner_of(p).expect("owner");
        r.net.kill(owner);
        r.servers[owner.0 as usize].request_stop();
        let out = c.read_traced(p).expect("hedge serves the read");
        match out.via {
            ReadVia::ServerNvme(n) | ReadVia::ServerPfsFetch(n) => {
                assert_ne!(n, owner, "served by the hedge target")
            }
            ReadVia::DirectPfs => panic!("hedge should serve from the cache tier"),
        }
        let m = c.metrics().snapshot();
        assert_eq!(m.hedges_launched, 1);
        assert_eq!(m.hedges_won, 1);
        assert_eq!(
            m.rpc_timeouts, 0,
            "the p99 expiry never reaches the detector"
        );
        assert!(c.failed_nodes().is_empty());
        assert_eq!(m.reads_ok, 1);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ReadError::NodeFailed(NodeId(1)).to_string(),
            "node n1 failed and policy is NoFT"
        );
        assert_eq!(
            ReadError::NotFound("x".into()).to_string(),
            "file not found: x"
        );
        assert_eq!(ReadError::NoLiveNodes.to_string(), "no live nodes remain");
        assert_eq!(
            ReadError::Exhausted("y".into()).to_string(),
            "retries exhausted reading y"
        );
    }
}
