//! Fault-tolerance policies — the three systems compared in §V.

use crate::detector::DetectorConfig;
use crate::overload::OverloadConfig;
use ftc_hashring::{HashRing, ModuloPlacement, Placement, RendezvousPlacement, DEFAULT_VNODES};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Default proactive-recache token-bucket rate, tokens (keys) per second.
///
/// All recovery-policy tunables are named here (or set through
/// [`crate::controller::ControllerConfig`]) so the runtime controller is
/// the single surface that owns them; the `policy-const` repo lint flags
/// hard-coded values anywhere else in ftc-core.
pub const DEFAULT_RECACHE_RATE: f64 = 50_000.0;
/// Default recache token-bucket burst, in keys.
pub const DEFAULT_RECACHE_BURST: u32 = 512;
/// Default cache copies per file (the paper's single-copy design).
pub const DEFAULT_REPLICATION: u32 = 1;

/// What a client does when the failure detector declares a server dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FtPolicy {
    /// Baseline HVAC: no fault tolerance. The first declared failure
    /// aborts the job (the dashed line of Fig. 5(b)).
    NoFt,
    /// §IV-A: keep the static placement; route every read whose owner is
    /// dead to the PFS, forever. One PFS access per lost file *per epoch*.
    PfsRedirect,
    /// §IV-B: remove the dead node from the hash ring; the clockwise
    /// successors own its keys and recache each lost file from the PFS on
    /// first access. One PFS access per lost file *total*.
    RingRecache,
}

impl FtPolicy {
    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            FtPolicy::NoFt => "NoFT",
            FtPolicy::PfsRedirect => "FT w/ PFS",
            FtPolicy::RingRecache => "FT w/ NVMe",
        }
    }
}

/// Which placement structure the client builds at init.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementKind {
    /// Original HVAC static `hash % N` (used by NoFT / PFS-redirect).
    Modulo,
    /// Consistent hash ring with this many virtual nodes per physical
    /// node (used by RingRecache; paper default 100).
    Ring {
        /// Virtual nodes per physical node.
        vnodes: u32,
    },
    /// Rendezvous hashing (ablation only).
    Rendezvous,
}

impl PlacementKind {
    /// Build the placement over nodes `0..n`.
    pub fn build(self, n: u32) -> Box<dyn Placement + Send> {
        match self {
            PlacementKind::Modulo => Box::new(ModuloPlacement::with_nodes(n)),
            PlacementKind::Ring { vnodes } => Box::new(HashRing::with_nodes(n, vnodes)),
            PlacementKind::Rendezvous => Box::new(RendezvousPlacement::with_nodes(n)),
        }
    }

    /// The placement the paper pairs with each policy: the FT w/ NVMe
    /// system builds the ring; the baseline and PFS-redirect systems keep
    /// HVAC's original static hash.
    pub fn default_for(policy: FtPolicy) -> Self {
        match policy {
            FtPolicy::NoFt | FtPolicy::PfsRedirect => PlacementKind::Modulo,
            FtPolicy::RingRecache => PlacementKind::Ring {
                vnodes: DEFAULT_VNODES,
            },
        }
    }
}

/// Client-side retry discipline for reads: capped attempts, exponential
/// backoff with decorrelated jitter, and an overall deadline budget.
///
/// Replaces an unbounded retry-on-`continue` loop: under pathological
/// churn (every node flapping, partitions moving around) the client must
/// neither livelock nor hammer suspects back-to-back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Hard cap on read attempts (RPC issues plus failover retries).
    pub max_attempts: u32,
    /// First backoff, and the floor of every later one.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
    /// Total wall-clock budget for one read, backoffs and TTLs included;
    /// once spent, the read reports `Exhausted` instead of retrying.
    pub deadline_budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 24,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            deadline_budget: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// Next sleep after a retry, from the previous sleep `prev` and a
    /// uniform draw `unit` in `[0, 1)`: decorrelated jitter,
    /// `min(max_backoff, uniform(base_backoff, prev * 3))`. Successive
    /// sleeps grow roughly exponentially but never synchronize across
    /// clients, so a recovering node is not met by a retry stampede.
    pub fn next_backoff(&self, prev: Duration, unit: f64) -> Duration {
        let lo = self.base_backoff.min(self.max_backoff);
        let hi = prev.saturating_mul(3).clamp(lo, self.max_backoff);
        let span = hi.saturating_sub(lo);
        (lo + span.mul_f64(unit.clamp(0.0, 1.0))).min(self.max_backoff)
    }
}

/// Full client-side fault-tolerance configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtConfig {
    /// The failure-handling policy.
    pub policy: FtPolicy,
    /// Placement structure (defaults paired per policy).
    pub placement: PlacementKind,
    /// Timeout detection tuning.
    pub detector: DetectorConfig,
    /// Retry/backoff discipline for reads.
    pub retry: RetryPolicy,
    /// Cache copies per file (1 = the paper's design: a single copy plus
    /// the PFS as the fallback). With `replication = k > 1` under
    /// RingRecache, clients write PFS-fetched files through to the next
    /// `k-1` ring successors, so a failure needs no PFS traffic at all —
    /// the "no-fallback" extension, traded against k x NVMe footprint.
    pub replication: u32,
    /// Client-side overload armor (circuit breakers, retry budget,
    /// hedged reads). Default is disarmed: behavior is identical to the
    /// pre-armor client.
    pub overload: OverloadConfig,
    /// Single-flight read coalescing: duplicate in-flight reads of the
    /// same key share one execution (leader/follower, epoch-guarded —
    /// see [`crate::singleflight`]). [`FtConfig::for_policy`] enables
    /// it; configs recorded before the field existed deserialize to
    /// `false`, the pre-singleflight behavior.
    #[serde(default)]
    pub coalesce: bool,
}

impl FtConfig {
    /// Paper-faithful configuration for a policy.
    pub fn for_policy(policy: FtPolicy) -> Self {
        FtConfig {
            policy,
            placement: PlacementKind::default_for(policy),
            detector: DetectorConfig::default(),
            retry: RetryPolicy::default(),
            replication: DEFAULT_REPLICATION,
            overload: OverloadConfig::default(),
            coalesce: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(FtPolicy::NoFt.label(), "NoFT");
        assert_eq!(FtPolicy::PfsRedirect.label(), "FT w/ PFS");
        assert_eq!(FtPolicy::RingRecache.label(), "FT w/ NVMe");
    }

    #[test]
    fn default_placements() {
        assert_eq!(
            PlacementKind::default_for(FtPolicy::NoFt),
            PlacementKind::Modulo
        );
        assert_eq!(
            PlacementKind::default_for(FtPolicy::PfsRedirect),
            PlacementKind::Modulo
        );
        assert_eq!(
            PlacementKind::default_for(FtPolicy::RingRecache),
            PlacementKind::Ring { vnodes: 100 }
        );
    }

    #[test]
    fn build_produces_working_placements() {
        for kind in [
            PlacementKind::Modulo,
            PlacementKind::Ring { vnodes: 8 },
            PlacementKind::Rendezvous,
        ] {
            let p = kind.build(4);
            assert_eq!(p.len(), 4);
            assert!(p.owner("some/file").is_some());
        }
    }

    #[test]
    fn for_policy_bundles_defaults() {
        let c = FtConfig::for_policy(FtPolicy::RingRecache);
        assert_eq!(c.policy, FtPolicy::RingRecache);
        assert_eq!(c.placement, PlacementKind::Ring { vnodes: 100 });
        assert!(c.detector.timeout_limit >= 1);
        assert_eq!(c.replication, 1, "paper default: single copy");
        assert!(c.retry.max_attempts >= 1);
        assert!(c.retry.base_backoff <= c.retry.max_backoff);
        assert!(
            !c.overload.armored,
            "overload armor is opt-in; the paper-faithful client is unarmored"
        );
        assert!(
            c.coalesce,
            "duplicate-read coalescing is on for freshly built configs"
        );
    }

    #[test]
    fn backoff_stays_within_bounds() {
        let r = RetryPolicy::default();
        let mut prev = Duration::ZERO;
        for i in 0..64 {
            let unit = (i as f64 * 0.173) % 1.0;
            let next = r.next_backoff(prev, unit);
            assert!(next >= r.base_backoff, "floor violated at step {i}");
            assert!(next <= r.max_backoff, "cap violated at step {i}");
            prev = next;
        }
    }

    #[test]
    fn backoff_grows_from_base_toward_cap() {
        let r = RetryPolicy::default();
        // unit = 1.0 → deterministic upper envelope: base, 3*base, 9*base…
        // until the cap flattens it.
        let a = r.next_backoff(Duration::ZERO, 1.0);
        assert_eq!(a, r.base_backoff);
        let b = r.next_backoff(a, 1.0);
        assert_eq!(b, r.base_backoff * 3);
        let mut cur = b;
        for _ in 0..16 {
            cur = r.next_backoff(cur, 1.0);
        }
        assert_eq!(cur, r.max_backoff, "envelope must saturate at the cap");
    }
}
