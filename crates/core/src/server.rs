//! The HVAC server — one per compute node, running as a daemon separate
//! from the training process (§II-B).
//!
//! Serves `Read` RPCs: NVMe hit → serve from cache; miss → fetch from the
//! PFS, serve, and hand the bytes to the data mover for recaching. After a
//! node failure, surviving servers run exactly this code to absorb the
//! failed node's keys — the recache path *is* the miss path.

use crate::error::CoreError;
use crate::overload::{priority_of, AdmissionConfig, AdmissionQueue, ShedReason};
use crate::proto::{CacheRequest, CacheResponse, ServeSource};
use crate::singleflight::{Join, SingleFlight, SingleFlightStats};
use ftc_hashring::NodeId;
use ftc_net::xport::{Inbound, Listener, Transport};
use ftc_net::{Incoming, Network, TraceEventKind};
use ftc_storage::{DataMover, NvmeCache, Pfs, ValueBuf};
use ftc_time::{ClockHandle, TaskHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shorthand for the cache-protocol network.
pub type CacheNet = Network<CacheRequest, CacheResponse>;

/// How long a coalesced miss waits for the leader's PFS fetch before
/// fetching independently. Generous against any simulated PFS latency;
/// reached only if the leading request unwound without publishing.
const MISS_FLIGHT_TIMEOUT: Duration = Duration::from_secs(10);

/// The request-serving half of a node.
pub struct HvacServer {
    node: NodeId,
    cache: Arc<NvmeCache>,
    pfs: Arc<Pfs>,
    mover: DataMover,
    /// Clock shared with the mover: follower waits on coalesced misses
    /// must be cooperative under a virtual driver.
    clock: ClockHandle,
    /// Open PFS fetches, single-flighted by key: a storm of concurrent
    /// misses for one file costs one PFS read, not one per request.
    miss_flights: SingleFlight<Option<ValueBuf>>,
}

impl HvacServer {
    /// Server for `node`, caching onto an NVMe of `nvme_capacity` bytes.
    /// Errors if the data-mover thread cannot be spawned.
    pub fn new(node: NodeId, pfs: Arc<Pfs>, nvme_capacity: u64) -> Result<Self, CoreError> {
        Self::with_cache(node, pfs, Arc::new(NvmeCache::for_serving(nvme_capacity)))
    }

    /// Server for `node` over an existing NVMe cache — the warm-rejoin
    /// path: a revived node kept its disk (the paper's node-local model),
    /// so the new server process adopts the surviving contents instead of
    /// restarting cold.
    pub fn with_cache(
        node: NodeId,
        pfs: Arc<Pfs>,
        cache: Arc<NvmeCache>,
    ) -> Result<Self, CoreError> {
        Self::with_cache_clock(node, pfs, cache, ClockHandle::wall())
    }

    /// [`HvacServer::with_cache`] with an injected clock: the data mover
    /// becomes a cooperative task under a virtual clock.
    pub fn with_cache_clock(
        node: NodeId,
        pfs: Arc<Pfs>,
        cache: Arc<NvmeCache>,
        clock: ClockHandle,
    ) -> Result<Self, CoreError> {
        let mover =
            DataMover::spawn_with_clock(Arc::clone(&cache), clock.clone()).map_err(|source| {
                CoreError::Spawn {
                    what: "data mover",
                    node,
                    source,
                }
            })?;
        Ok(HvacServer {
            node,
            cache,
            pfs,
            mover,
            clock,
            miss_flights: SingleFlight::default(),
        })
    }

    /// This server's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's NVMe cache (shared handle).
    pub fn cache(&self) -> Arc<NvmeCache> {
        Arc::clone(&self.cache)
    }

    /// Files recached by the data mover so far.
    pub fn files_recached(&self) -> u64 {
        self.mover.moved()
    }

    /// Bytes recached by the data mover so far.
    pub fn recached_bytes(&self) -> u64 {
        self.mover.moved_bytes()
    }

    /// Shared handles to the mover's (files, bytes) counters.
    pub fn mover_counters(
        &self,
    ) -> (
        Arc<std::sync::atomic::AtomicU64>,
        Arc<std::sync::atomic::AtomicU64>,
    ) {
        self.mover.counter_handles()
    }

    /// Shared handles to the mover's (queue depth, rejected) counters.
    pub fn mover_pressure(
        &self,
    ) -> (
        Arc<std::sync::atomic::AtomicU64>,
        Arc<std::sync::atomic::AtomicU64>,
    ) {
        self.mover.pressure_handles()
    }

    /// Synchronously process one incoming request from the in-process
    /// fabric (DES-mode parity hook; the event loops go through
    /// [`handle_inbound`](Self::handle_inbound)).
    pub fn handle(&self, inc: Incoming<CacheRequest, CacheResponse>) {
        self.handle_inbound(Box::new(inc));
    }

    /// Synchronously process one incoming request from any transport
    /// backend. The protocol brain is backend-blind: tracing and history
    /// hooks are live on the simulated fabric and no-ops over TCP.
    pub fn handle_inbound(&self, mut inc: Box<dyn Inbound<CacheRequest, CacheResponse>>) {
        // Absorb the request's clock stamp up front so cache-map events
        // recorded below are causally after the client's send.
        inc.absorb();
        let served_by = inc.served_by();
        let history = inc.history();
        // Trace events are staged while the request payload is borrowed
        // and emitted (in order) before the reply, which preserves the
        // causal order the race detector expects.
        let mut traces: Vec<TraceEventKind> = Vec::new();
        // `sized` replies charge the response's serialization time to
        // this server thread (data-bearing responses only).
        let (resp, sized) = match inc.req() {
            CacheRequest::Ping => (CacheResponse::Pong, false),
            CacheRequest::Put { path, bytes } => {
                if let Some(h) = history {
                    // Replica writes and recache pushes both land here;
                    // the store is the linearization point, so the op is
                    // recorded as a zero-width interval at serve time.
                    let t = h.now();
                    h.record(ftc_net::OpRecord {
                        id: 0,
                        actor: served_by,
                        kind: ftc_net::OpKind::Write,
                        key: path.clone(),
                        node: served_by,
                        epoch: 0,
                        invoke: t,
                        ret: t,
                        digest: ftc_net::fnv1a(bytes),
                        handoff: false,
                    });
                }
                let evicted = self.cache.insert(path, bytes.clone());
                traces.push(TraceEventKind::CacheInsert { key: path.clone() });
                for key in evicted {
                    traces.push(TraceEventKind::CacheEvict { key });
                }
                (CacheResponse::PutAck { path: path.clone() }, false)
            }
            CacheRequest::Read { path } => {
                if let Some(bytes) = self.cache.get(path) {
                    (
                        CacheResponse::Data {
                            path: path.clone(),
                            bytes,
                            source: ServeSource::NvmeHit,
                        },
                        true,
                    )
                } else if let Some((bytes, led)) = self.pfs_fetch_coalesced(path) {
                    // Serve first, persist in the background (HVAC's
                    // data-mover pattern keeps the PFS fetch off the next
                    // reader's critical path only; this one pays it). A
                    // full mover queue drops the recache — the read still
                    // succeeds, only the insert trace is withheld so the
                    // model never records an insert that didn't happen.
                    // Only the flight leader recaches: a coalesced
                    // follower re-enqueueing the same bytes would just
                    // double-copy into the mover queue.
                    if led && self.mover.enqueue(path, bytes.clone()) {
                        traces.push(TraceEventKind::CacheInsert { key: path.clone() });
                    }
                    (
                        CacheResponse::Data {
                            path: path.clone(),
                            bytes,
                            source: ServeSource::PfsFetch,
                        },
                        true,
                    )
                } else {
                    (CacheResponse::NotFound { path: path.clone() }, false)
                }
            }
            CacheRequest::Digest => (
                CacheResponse::DigestReply {
                    keys: self.cache.keys(),
                },
                true,
            ),
            CacheRequest::Evict { path } => {
                let existed = self.cache.remove(path);
                if existed {
                    traces.push(TraceEventKind::CacheEvict { key: path.clone() });
                }
                (
                    CacheResponse::EvictAck {
                        path: path.clone(),
                        existed,
                    },
                    false,
                )
            }
        };
        for t in traces {
            inc.trace_state(t);
        }
        if sized {
            inc.reply_sized(resp);
        } else {
            inc.reply(resp);
        }
    }

    /// Wait until the mover has persisted `expected` files (test hook).
    pub fn drain_mover(&self, expected: u64, timeout: Duration) -> bool {
        self.mover.drain(expected, timeout)
    }

    /// Fetch `path` from the PFS through the miss single-flight group.
    /// Returns the bytes plus whether *this* request led the flight (the
    /// leader owns the recache enqueue). `None` when the PFS has no such
    /// file.
    ///
    /// Requests to one node arriving on a single event loop serialize
    /// and never coalesce here; the group earns its keep when the server
    /// is driven concurrently — multi-threaded bench harnesses and any
    /// transport that dispatches in parallel.
    fn pfs_fetch_coalesced(&self, path: &str) -> Option<(ValueBuf, bool)> {
        let stats = Arc::clone(self.miss_flights.stats());
        match self.miss_flights.join(path) {
            Join::Leader(leader) => {
                stats.note_leader();
                let fetched = self.pfs.read(path);
                // Servers have no ring view; the epoch stamp is unused
                // on this path (PFS contents are immutable per key).
                leader.publish(0, fetched.clone());
                fetched.map(|b| (b, true))
            }
            Join::Follower(follower) => {
                match follower.wait(&self.clock, MISS_FLIGHT_TIMEOUT) {
                    Some(p) => {
                        stats.note_coalesced();
                        p.value.map(|b| (b, false))
                    }
                    // Leader unwound without publishing: fetch
                    // independently and take over its recache duty.
                    None => {
                        stats.note_stale_retry();
                        self.pfs.read(path).map(|b| (b, true))
                    }
                }
            }
        }
    }

    /// Leader/coalesce counters for the miss single-flight group.
    pub fn singleflight_stats(&self) -> Arc<SingleFlightStats> {
        Arc::clone(self.miss_flights.stats())
    }
}

/// Handle to a server's event-loop thread (or cooperative task, under a
/// virtual clock).
pub struct ServerHandle {
    node: NodeId,
    stop: Arc<AtomicBool>,
    join: Option<TaskHandle>,
    /// The event loop parks the reclaimed [`HvacServer`] here on exit —
    /// task handles carry no return value, so `shutdown` joins and then
    /// takes it from this slot.
    reclaimed: Arc<Mutex<Option<HvacServer>>>,
    cache: Arc<NvmeCache>,
    moved: Arc<std::sync::atomic::AtomicU64>,
    moved_bytes: Arc<std::sync::atomic::AtomicU64>,
    queue_depth: Arc<std::sync::atomic::AtomicU64>,
    enqueue_rejected: Arc<std::sync::atomic::AtomicU64>,
    shed_capacity: Arc<AtomicU64>,
    shed_deadline: Arc<AtomicU64>,
    singleflight: Arc<SingleFlightStats>,
}

impl ServerHandle {
    /// Spawn a server thread for `node` on `net`. Errors if either the
    /// data-mover or the event-loop thread cannot be created.
    pub fn spawn(
        node: NodeId,
        net: &CacheNet,
        pfs: Arc<Pfs>,
        nvme_capacity: u64,
    ) -> Result<Self, CoreError> {
        Self::spawn_with_cache(
            node,
            net,
            pfs,
            Arc::new(NvmeCache::for_serving(nvme_capacity)),
        )
    }

    /// Spawn a server thread over an existing NVMe cache — the warm-rejoin
    /// path (the revived node kept its disk).
    pub fn spawn_with_cache(
        node: NodeId,
        net: &CacheNet,
        pfs: Arc<Pfs>,
        cache: Arc<NvmeCache>,
    ) -> Result<Self, CoreError> {
        // The server inherits the network's clock, so a cluster built on a
        // virtual clock gets cooperative server tasks with no extra plumbing.
        Self::spawn_on(node, net, pfs, cache)
    }

    /// Spawn a server event loop over *any* transport backend — the
    /// in-process fabric here, real TCP sockets in `ftc-server`. The
    /// transport's clock drives the loop, so virtual-time clusters get
    /// cooperative tasks and TCP gets plain threads from the same code.
    pub fn spawn_on(
        node: NodeId,
        transport: &dyn Transport<CacheRequest, CacheResponse>,
        pfs: Arc<Pfs>,
        cache: Arc<NvmeCache>,
    ) -> Result<Self, CoreError> {
        Self::spawn_on_with_admission(node, transport, pfs, cache, AdmissionConfig::default())
    }

    /// [`ServerHandle::spawn_on`] with explicit admission control. With
    /// `admission.enabled` the event loop drains arrivals into a bounded
    /// priority queue and sheds (typed `Overloaded` replies, counted per
    /// cause) instead of queueing without limit; the default disabled
    /// config runs the exact legacy serve loop.
    pub fn spawn_on_with_admission(
        node: NodeId,
        transport: &dyn Transport<CacheRequest, CacheResponse>,
        pfs: Arc<Pfs>,
        cache: Arc<NvmeCache>,
        admission: AdmissionConfig,
    ) -> Result<Self, CoreError> {
        let server = HvacServer::with_cache_clock(node, pfs, cache, transport.clock())?;
        let listener = transport
            .register(node)
            .map_err(|source| CoreError::Spawn {
                what: "transport listener",
                node,
                source,
            })?;
        Self::spawn_inner(server, transport.clock(), listener, admission)
    }

    /// Absorb and answer one shed request: the reply is the typed
    /// `Overloaded`, so the client learns the node is alive-but-full
    /// instead of burning a TTL on silence.
    fn shed(mut inc: Box<dyn Inbound<CacheRequest, CacheResponse>>) {
        inc.absorb();
        inc.reply(CacheResponse::Overloaded);
    }

    fn spawn_inner(
        server: HvacServer,
        clock: ClockHandle,
        listener: Box<dyn Listener<CacheRequest, CacheResponse>>,
        admission: AdmissionConfig,
    ) -> Result<Self, CoreError> {
        let node = server.node();
        let cache = server.cache();
        let singleflight = server.singleflight_stats();
        let (moved, moved_bytes) = server.mover_counters();
        let (queue_depth, enqueue_rejected) = server.mover_pressure();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let reclaimed: Arc<Mutex<Option<HvacServer>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&reclaimed);
        let shed_capacity = Arc::new(AtomicU64::new(0));
        let shed_deadline = Arc::new(AtomicU64::new(0));
        let shed_cap2 = Arc::clone(&shed_capacity);
        let shed_dead2 = Arc::clone(&shed_deadline);
        let spawner = clock.clone();
        let join = spawner
            .spawn(&format!("hvac-server-{node}"), move || {
                if admission.enabled {
                    Self::admission_loop(
                        &server,
                        &clock,
                        &*listener,
                        admission,
                        &stop2,
                        &shed_cap2,
                        &shed_dead2,
                    );
                } else {
                    // Poll with a short tick so a stop request is honored
                    // even when no traffic arrives.
                    //
                    // ordering: Relaxed — stop is a plain flag; the 5 ms
                    // poll bounds how late a store is observed, and no
                    // other state rides on it.
                    while !stop2.load(Ordering::Relaxed) {
                        if let Some(inc) = listener.accept(Duration::from_millis(5)) {
                            server.handle_inbound(inc);
                        }
                    }
                }
                // The listener (and with it any accept threads a real
                // backend runs) dies with the loop; drop it before
                // parking the server so shutdown fully quiesces the node.
                drop(listener);
                *slot.lock() = Some(server);
            })
            .map_err(|source| CoreError::Spawn {
                what: "hvac server",
                node,
                source,
            })?;
        Ok(ServerHandle {
            node,
            stop,
            join: Some(join),
            reclaimed,
            cache,
            moved,
            moved_bytes,
            queue_depth,
            enqueue_rejected,
            shed_capacity,
            shed_deadline,
            singleflight,
        })
    }

    /// The armored event loop: drain arrivals into the bounded priority
    /// queue (capacity sheds at enqueue), then serve by class with
    /// deadline sheds at pop, feeding measured service times back into
    /// the EWMA the deadline check runs on.
    fn admission_loop(
        server: &HvacServer,
        clock: &ClockHandle,
        listener: &dyn Listener<CacheRequest, CacheResponse>,
        admission: AdmissionConfig,
        stop: &AtomicBool,
        shed_capacity: &AtomicU64,
        shed_deadline: &AtomicU64,
    ) {
        let mut queue: AdmissionQueue<Box<dyn Inbound<CacheRequest, CacheResponse>>> =
            AdmissionQueue::new(admission);
        // ordering: Relaxed — stop is a plain flag; the 5 ms poll bounds
        // how late a store is observed, and no other state rides on it.
        while !stop.load(Ordering::Relaxed) {
            // Block briefly for the first arrival, then sweep whatever
            // else is already waiting so the queue sees the real backlog
            // (the priority classes only matter when there is a backlog).
            if let Some(first) = listener.accept(Duration::from_millis(5)) {
                let mut arrival = Some(first);
                while let Some(inc) = arrival {
                    let class = priority_of(inc.req());
                    if let Err((rejected, ShedReason::QueueFull)) =
                        queue.push(inc, class, clock.now())
                    {
                        // ordering: Relaxed — monotone shed tally.
                        shed_capacity.fetch_add(1, Ordering::Relaxed);
                        Self::shed(rejected);
                    }
                    arrival = listener.accept(Duration::ZERO);
                }
            }
            // Serve the backlog in class order; pops whose deadline is
            // already hopeless come back as sheds.
            while let Some(popped) = queue.pop(clock.now()) {
                match popped {
                    Ok(inc) => {
                        let begun = clock.now();
                        server.handle_inbound(inc);
                        queue.observe_service(clock.since(begun));
                    }
                    Err((inc, _reason)) => {
                        // ordering: Relaxed — monotone shed tally.
                        shed_deadline.fetch_add(1, Ordering::Relaxed);
                        Self::shed(inc);
                    }
                }
            }
        }
        // Graceful exit: answer everything still queued with `Overloaded`
        // rather than leaving callers to time out against a dead mailbox.
        while let Some(popped) = queue.pop(clock.now()) {
            let inc = match popped {
                Ok(inc) | Err((inc, _)) => inc,
            };
            // ordering: Relaxed — monotone shed tally.
            shed_deadline.fetch_add(1, Ordering::Relaxed);
            Self::shed(inc);
        }
    }

    /// The served node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's cache (for inspection and warm-up).
    pub fn cache(&self) -> Arc<NvmeCache> {
        Arc::clone(&self.cache)
    }

    /// Files the data mover has recached so far.
    pub fn files_recached(&self) -> u64 {
        // ordering: Relaxed — monotone statistic, metrics tolerate lag.
        self.moved.load(Ordering::Relaxed)
    }

    /// Bytes the data mover has recached so far.
    pub fn recached_bytes(&self) -> u64 {
        // ordering: Relaxed — monotone statistic, metrics tolerate lag.
        self.moved_bytes.load(Ordering::Relaxed)
    }

    /// Current mover queue depth (pending recache inserts).
    pub fn mover_queue_depth(&self) -> u64 {
        // ordering: Relaxed — observability read of a live gauge.
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Recache enqueues rejected because the mover queue was full.
    pub fn mover_enqueue_rejected(&self) -> u64 {
        // ordering: Relaxed — monotone statistic, metrics tolerate lag.
        self.enqueue_rejected.load(Ordering::Relaxed)
    }

    /// Requests shed by admission control, split by cause:
    /// `(queue_full, deadline_hopeless)`. Zero unless the server was
    /// spawned with [`ServerHandle::spawn_on_with_admission`].
    pub fn sheds(&self) -> (u64, u64) {
        // ordering: Relaxed — monotone statistics, metrics tolerate lag.
        (
            self.shed_capacity.load(Ordering::Relaxed),
            self.shed_deadline.load(Ordering::Relaxed),
        )
    }

    /// Total requests shed by admission control.
    pub fn total_sheds(&self) -> u64 {
        let (cap, dead) = self.sheds();
        cap + dead
    }

    /// Shared handles to the `(queue_full, deadline)` shed counters, for
    /// per-node obs export (mirrors [`HvacServer::mover_pressure`]).
    pub fn shed_handles(&self) -> (Arc<AtomicU64>, Arc<AtomicU64>) {
        (
            Arc::clone(&self.shed_capacity),
            Arc::clone(&self.shed_deadline),
        )
    }

    /// Shared miss single-flight counters (leaders, coalesced, stale
    /// retries), for per-node obs export.
    pub fn singleflight_handles(&self) -> Arc<SingleFlightStats> {
        Arc::clone(&self.singleflight)
    }

    /// Ask the loop to exit without waiting (used by abrupt kill: the
    /// network is silenced separately, this only reclaims the thread).
    pub fn request_stop(&self) {
        // ordering: Relaxed — plain flag paired with the Relaxed load in
        // the poll loop; the join in `shutdown` is the synchronization.
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stop the loop and reclaim the server (drains the data mover).
    pub fn shutdown(mut self) -> Option<HvacServer> {
        self.request_stop();
        let joined = self.join.take()?;
        if joined.join().is_err() {
            return None; // loop panicked; nothing was parked in the slot
        }
        self.reclaimed.lock().take()
    }

    /// Whether the thread has been reclaimed already.
    pub fn is_shutdown(&self) -> bool {
        self.join.is_none()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_net::RpcError;
    use ftc_storage::synth_bytes;

    const TTL: Duration = Duration::from_millis(200);

    fn setup() -> (CacheNet, Arc<Pfs>) {
        let net: CacheNet = Network::instant(7);
        let pfs = Arc::new(Pfs::in_memory());
        for i in 0..20 {
            let path = format!("train/s{i}.bin");
            pfs.stage(&path, synth_bytes(&path, 64));
        }
        (net, pfs)
    }

    #[test]
    fn first_read_fetches_then_caches() {
        let (net, pfs) = setup();
        let h =
            ServerHandle::spawn(NodeId(0), &net, Arc::clone(&pfs), u64::MAX).expect("spawn server");
        let ep = net.endpoint(NodeId(1));

        let r1 = ep
            .call(
                NodeId(0),
                CacheRequest::Read {
                    path: "train/s3.bin".into(),
                },
                TTL,
            )
            .unwrap();
        match r1 {
            CacheResponse::Data { source, bytes, .. } => {
                assert_eq!(source, ServeSource::PfsFetch);
                assert_eq!(bytes, synth_bytes("train/s3.bin", 64));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(pfs.reads_of("train/s3.bin"), 1);

        // Wait for the mover, then the second read must be an NVMe hit
        // with no further PFS traffic.
        assert!(net
            .clock()
            .wait_until(Duration::from_secs(2), Duration::from_micros(200), || h
                .cache()
                .peek("train/s3.bin"),));
        let r2 = ep
            .call(
                NodeId(0),
                CacheRequest::Read {
                    path: "train/s3.bin".into(),
                },
                TTL,
            )
            .unwrap();
        match r2 {
            CacheResponse::Data { source, .. } => assert_eq!(source, ServeSource::NvmeHit),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(
            pfs.reads_of("train/s3.bin"),
            1,
            "second read must not hit PFS"
        );
        drop(h);
    }

    #[test]
    fn unknown_file_is_not_found() {
        let (net, pfs) = setup();
        let _h = ServerHandle::spawn(NodeId(0), &net, pfs, u64::MAX).expect("spawn server");
        let ep = net.endpoint(NodeId(1));
        let r = ep
            .call(
                NodeId(0),
                CacheRequest::Read {
                    path: "nope.bin".into(),
                },
                TTL,
            )
            .unwrap();
        assert_eq!(
            r,
            CacheResponse::NotFound {
                path: "nope.bin".into()
            }
        );
    }

    #[test]
    fn ping_pong() {
        let (net, pfs) = setup();
        let _h = ServerHandle::spawn(NodeId(0), &net, pfs, u64::MAX).expect("spawn server");
        let ep = net.endpoint(NodeId(1));
        assert_eq!(
            ep.call(NodeId(0), CacheRequest::Ping, TTL).unwrap(),
            CacheResponse::Pong
        );
    }

    #[test]
    fn killed_server_goes_silent() {
        let (net, pfs) = setup();
        let h = ServerHandle::spawn(NodeId(0), &net, pfs, u64::MAX).expect("spawn server");
        net.kill(NodeId(0));
        h.request_stop();
        let ep = net.endpoint(NodeId(1));
        let err = ep
            .call(NodeId(0), CacheRequest::Ping, Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
    }

    #[test]
    fn shutdown_returns_server_with_stats() {
        let (net, pfs) = setup();
        let h = ServerHandle::spawn(NodeId(0), &net, pfs, u64::MAX).expect("spawn server");
        let ep = net.endpoint(NodeId(1));
        ep.call(
            NodeId(0),
            CacheRequest::Read {
                path: "train/s0.bin".into(),
            },
            TTL,
        )
        .unwrap();
        let server = h.shutdown().expect("join");
        assert!(server.drain_mover(1, Duration::from_secs(2)));
        assert_eq!(server.files_recached(), 1);
        assert_eq!(server.recached_bytes(), 64);
        assert_eq!(server.node(), NodeId(0));
    }

    #[test]
    fn tiny_nvme_still_serves_with_evictions() {
        let (net, pfs) = setup();
        // Capacity for exactly 2 x 64-byte files.
        let h = ServerHandle::spawn(NodeId(0), &net, pfs, 128).expect("spawn server");
        let ep = net.endpoint(NodeId(1));
        for i in 0..20 {
            let r = ep
                .call(
                    NodeId(0),
                    CacheRequest::Read {
                        path: format!("train/s{i}.bin"),
                    },
                    TTL,
                )
                .unwrap();
            assert!(matches!(r, CacheResponse::Data { .. }));
        }
        let cache = h.cache();
        assert!(cache.resident_bytes() <= 128);
        drop(h);
    }

    #[test]
    fn digest_lists_and_evict_drops_cached_keys() {
        let (net, pfs) = setup();
        let h = ServerHandle::spawn(NodeId(0), &net, pfs, u64::MAX).expect("spawn server");
        h.cache().insert("b.bin", synth_bytes("b.bin", 8));
        h.cache().insert("a.bin", synth_bytes("a.bin", 8));
        let ep = net.endpoint(NodeId(1));

        let r = ep.call(NodeId(0), CacheRequest::Digest, TTL).unwrap();
        assert_eq!(
            r,
            CacheResponse::DigestReply {
                keys: vec!["a.bin".into(), "b.bin".into()]
            }
        );

        let r = ep
            .call(
                NodeId(0),
                CacheRequest::Evict {
                    path: "a.bin".into(),
                },
                TTL,
            )
            .unwrap();
        assert_eq!(
            r,
            CacheResponse::EvictAck {
                path: "a.bin".into(),
                existed: true
            }
        );
        assert!(!h.cache().peek("a.bin"));

        // Evicting a missing key reports existed=false and is harmless.
        let r = ep
            .call(
                NodeId(0),
                CacheRequest::Evict {
                    path: "a.bin".into(),
                },
                TTL,
            )
            .unwrap();
        assert_eq!(
            r,
            CacheResponse::EvictAck {
                path: "a.bin".into(),
                existed: false
            }
        );
        drop(h);
    }

    #[test]
    fn armored_server_serves_normally_when_unloaded() {
        // Admission control must be invisible off-peak: an armored server
        // with no backlog serves every class and sheds nothing.
        let (net, pfs) = setup();
        let h = ServerHandle::spawn_on_with_admission(
            NodeId(0),
            &net,
            pfs,
            Arc::new(NvmeCache::new(u64::MAX)),
            AdmissionConfig::armored(Duration::from_millis(500)),
        )
        .expect("spawn armored server");
        let ep = net.endpoint(NodeId(1));
        assert_eq!(
            ep.call(NodeId(0), CacheRequest::Ping, TTL).unwrap(),
            CacheResponse::Pong
        );
        for i in 0..8 {
            let r = ep
                .call(
                    NodeId(0),
                    CacheRequest::Read {
                        path: format!("train/s{i}.bin"),
                    },
                    TTL,
                )
                .unwrap();
            assert!(matches!(r, CacheResponse::Data { .. }));
        }
        assert_eq!(h.sheds(), (0, 0), "no backlog, no sheds");
        assert_eq!(h.total_sheds(), 0);
        drop(h);
    }

    #[test]
    fn warm_respawn_adopts_surviving_cache() {
        let (net, pfs) = setup();
        let h =
            ServerHandle::spawn(NodeId(0), &net, Arc::clone(&pfs), u64::MAX).expect("spawn server");
        h.cache().insert("warm.bin", synth_bytes("warm.bin", 16));
        let cache = h.cache();
        net.kill(NodeId(0));
        drop(h);

        // Respawn over the surviving NVMe: contents must be served as
        // hits, not refetched from the PFS.
        net.revive(NodeId(0));
        let h2 = ServerHandle::spawn_with_cache(NodeId(0), &net, pfs, cache).expect("respawn");
        let ep = net.endpoint(NodeId(1));
        let r = ep
            .call(
                NodeId(0),
                CacheRequest::Read {
                    path: "warm.bin".into(),
                },
                TTL,
            )
            .unwrap();
        assert!(matches!(
            r,
            CacheResponse::Data {
                source: ServeSource::NvmeHit,
                ..
            }
        ));
        drop(h2);
    }

    #[test]
    fn handle_direct_without_thread() {
        // HvacServer::handle is usable synchronously (DES-mode parity).
        let (net, pfs) = setup();
        let server = HvacServer::new(NodeId(0), Arc::clone(&pfs), u64::MAX).expect("build server");
        let mbox = net.register(NodeId(0));
        let ep = net.endpoint(NodeId(2));
        let t = std::thread::spawn(move || {
            ep.call(
                NodeId(0),
                CacheRequest::Read {
                    path: "train/s1.bin".into(),
                },
                TTL,
            )
        });
        let inc = mbox.recv().unwrap();
        server.handle(inc);
        let r = t.join().unwrap().unwrap();
        assert!(matches!(
            r,
            CacheResponse::Data {
                source: ServeSource::PfsFetch,
                ..
            }
        ));
        let d = synth_bytes("train/s1.bin", 64);
        if let CacheResponse::Data { bytes, .. } = r {
            assert_eq!(bytes, d);
        }
    }
}
