//! Runtime policy controller — adaptive fault-tolerance (ROADMAP item 4).
//!
//! The paper (and every static configuration of this reproduction) picks
//! one recovery posture at startup, but PR 4's lazy-vs-proactive tables
//! show the right choice depends on the failure regime the cluster is
//! actually in. Chameleon-style real-time policy selection closes that
//! gap: a [`PolicyController`] is a clock-injected background worker that
//! watches the client's failure-detector signals through an online
//! rate estimator (with ftc-slurm-calibrated priors) and switches the
//! *live* configuration at runtime — recovery posture (lazy ↔ proactive),
//! replication factor, and the recache token-bucket rate.
//!
//! Three properties make the switching safe:
//!
//! * **Epoch fencing** — every installed decision bumps a *policy epoch*
//!   on the shared [`LivePolicy`]. Recovery jobs capture the epoch at
//!   admission; a job that outlives its epoch is rejected-and-counted
//!   (`policy_fenced` in the recovery stats) instead of running under
//!   assumptions the controller has retired. Traced runs record
//!   `PolicyChange` / `PolicyRead` events so the happens-before checker
//!   can prove no read was served under a retired policy's assumptions.
//! * **Hysteresis** — escalation and de-escalation use separate
//!   thresholds with a gap, so an estimator hovering near one boundary
//!   cannot oscillate the posture.
//! * **Cooldown** — after any switch the controller refuses further
//!   switches for a configured window; suppressed attempts are counted
//!   (`flaps_suppressed`), which the `--sabotage-flap` self-test asserts.

use crate::client::HvacClient;
use crate::policy::DEFAULT_RECACHE_RATE;
use ftc_time::{ClockHandle, ClockSender, RecvTimeoutError, TaskHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

/// The runtime-mutable policy knobs, shared between the client's read
/// path, the recovery engine, and the controller.
///
/// Every mutation goes through [`LivePolicy::install`], which bumps the
/// policy epoch; readers consult the knobs at use time (not at
/// construction), so a change takes effect without restarting anything.
#[derive(Debug)]
pub struct LivePolicy {
    /// Monotone policy epoch; bumped once per installed decision.
    epoch: AtomicU64,
    /// Cache copies per file (see [`crate::policy::FtConfig::replication`]).
    replication: AtomicU32,
    /// True when the recovery engine may recache proactively.
    proactive: AtomicBool,
    /// Recache token-bucket rate, stored as `f64::to_bits`.
    recache_rate_bits: AtomicU64,
    /// True while the cluster is under sustained shed pressure: optional
    /// load (hedged reads) is suppressed until the surge clears.
    brownout: AtomicBool,
}

impl LivePolicy {
    /// A live policy seeded from the client's static configuration.
    /// Posture starts proactive: an engine without a controller keeps the
    /// pre-controller behaviour (always recache); the controller installs
    /// its quiet-regime decision at start.
    pub fn new(replication: u32, recache_rate: f64) -> Self {
        LivePolicy {
            epoch: AtomicU64::new(0),
            replication: AtomicU32::new(replication),
            proactive: AtomicBool::new(true),
            recache_rate_bits: AtomicU64::new(recache_rate.to_bits()),
            brownout: AtomicBool::new(false),
        }
    }

    /// The current policy epoch.
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire — pairs with the Release bump in install() so
        // a reader that observes epoch e also observes the knob values
        // installed with it.
        self.epoch.load(Ordering::Acquire)
    }

    /// The live replication factor (≥ 1).
    pub fn replication(&self) -> u32 {
        // ordering: Acquire — pairs with install()'s Release stores.
        self.replication.load(Ordering::Acquire).max(1)
    }

    /// True when proactive recache is currently allowed.
    pub fn proactive(&self) -> bool {
        // ordering: Acquire — pairs with install()'s Release stores.
        self.proactive.load(Ordering::Acquire)
    }

    /// The live recache token-bucket rate, tokens per second.
    pub fn recache_rate(&self) -> f64 {
        // ordering: Acquire — pairs with install()'s Release stores.
        f64::from_bits(self.recache_rate_bits.load(Ordering::Acquire))
    }

    /// True while the brownout posture is on (sustained shed pressure):
    /// clients must not add optional load such as hedged reads.
    pub fn brownout(&self) -> bool {
        // ordering: Acquire — pairs with set_brownout()'s Release store.
        self.brownout.load(Ordering::Acquire)
    }

    /// Flip the brownout posture and bump the policy epoch (the flag is a
    /// policy knob like any other: readers that observe the new epoch see
    /// the posture installed with it). Returns `(old_epoch, new_epoch)`.
    pub fn set_brownout(&self, on: bool) -> (u64, u64) {
        // ordering: Release on the flag, AcqRel on the epoch bump — same
        // publication protocol as install().
        self.brownout.store(on, Ordering::Release);
        let old = self.epoch.fetch_add(1, Ordering::AcqRel);
        (old, old + 1)
    }

    /// Install `d` and bump the policy epoch. Returns
    /// `(old_epoch, new_epoch)`.
    pub fn install(&self, d: &PolicyDecision) -> (u64, u64) {
        // ordering: Release on the knob stores, AcqRel on the epoch bump —
        // the epoch is the publication point: a reader that Acquire-loads
        // the new epoch sees the knobs installed with (or after) it.
        self.replication.store(d.replication, Ordering::Release);
        self.proactive.store(d.proactive, Ordering::Release);
        self.recache_rate_bits
            .store(d.recache_rate.to_bits(), Ordering::Release);
        let old = self.epoch.fetch_add(1, Ordering::AcqRel);
        (old, old + 1)
    }
}

/// Failure-detector signal counters, bumped by the client's read path and
/// delta-polled by the controller each tick. Shared atomics avoid a
/// controller↔client callback cycle.
#[derive(Debug, Default)]
pub struct PolicySignals {
    suspects: AtomicU64,
    declares: AtomicU64,
    sheds: AtomicU64,
}

impl PolicySignals {
    /// The detector counted a timeout below the declare limit.
    pub fn note_suspect(&self) {
        // ordering: Relaxed — monotone event tally, delta-read by one
        // poller; no other state is published through it.
        self.suspects.fetch_add(1, Ordering::Relaxed);
    }

    /// The detector declared a node failed.
    pub fn note_declare(&self) {
        // ordering: Relaxed — see note_suspect.
        self.declares.fetch_add(1, Ordering::Relaxed);
    }

    /// A server answered `Overloaded` — it shed the request instead of
    /// serving it. Liveness, not failure; tallied separately so the
    /// controller can tell a surge from a fault burst.
    pub fn note_shed(&self) {
        // ordering: Relaxed — see note_suspect.
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Total shed replies observed so far.
    pub fn sheds_total(&self) -> u64 {
        // ordering: Relaxed — see note_suspect.
        self.sheds.load(Ordering::Relaxed)
    }

    /// Current `(suspects, declares)` totals.
    pub fn totals(&self) -> (u64, u64) {
        // ordering: Relaxed — see note_suspect.
        (
            self.suspects.load(Ordering::Relaxed),
            self.declares.load(Ordering::Relaxed),
        )
    }
}

/// One complete runtime configuration the controller can install.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDecision {
    /// Recovery posture: proactive recache on declare, or lazy
    /// (demand-driven) recovery only.
    pub proactive: bool,
    /// Cache copies per file.
    pub replication: u32,
    /// Recache token-bucket rate, tokens per second.
    pub recache_rate: f64,
}

/// Controller tuning: estimator priors, switch thresholds, pacing.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Worker tick interval.
    pub tick: Duration,
    /// Minimum time between installed switches; attempts inside the
    /// window are suppressed and counted.
    pub cooldown: Duration,
    /// Estimator decay time constant (exponential forgetting window).
    pub decay: Duration,
    /// Failure-rate prior, events/second (Gamma-prior mean; calibrate
    /// from the ftc-slurm census via [`ControllerConfig::calibrated`]).
    pub prior_rate: f64,
    /// Prior weight, in pseudo-seconds of observation.
    pub prior_weight: f64,
    /// Estimated rate (events/s) at or above which the controller
    /// escalates to the burst decision.
    pub escalate: f64,
    /// Estimated rate (events/s) at or below which it de-escalates to the
    /// quiet decision. Must be `< escalate`; the gap is the hysteresis.
    pub deescalate: f64,
    /// Decision installed in the quiet regime.
    pub quiet: PolicyDecision,
    /// Decision installed in the burst regime.
    pub burst: PolicyDecision,
    /// Shed rate (shed replies/second, across the cluster as seen by this
    /// client) at or above which the controller enters brownout —
    /// suppressing optional load such as hedged reads. `0.0` disables
    /// brownout entirely (the default: pre-armor behaviour).
    pub shed_enter: f64,
    /// Shed rate at or below which brownout exits. Must be `< shed_enter`
    /// when enabled; the gap is the hysteresis.
    pub shed_exit: f64,
    /// Self-test hook: force a posture-flip attempt every tick so the
    /// cooldown's flap suppression is observable (`--sabotage-flap`).
    pub sabotage_flap: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            tick: Duration::from_millis(100),
            cooldown: Duration::from_secs(2),
            decay: Duration::from_secs(10),
            prior_rate: 0.001,
            prior_weight: 1.0,
            escalate: 0.5,
            deescalate: 0.1,
            quiet: PolicyDecision {
                proactive: false,
                replication: 1,
                recache_rate: DEFAULT_RECACHE_RATE,
            },
            burst: PolicyDecision {
                proactive: true,
                replication: 2,
                recache_rate: 4.0 * DEFAULT_RECACHE_RATE,
            },
            shed_enter: 0.0,
            shed_exit: 0.0,
            sabotage_flap: false,
        }
    }
}

impl ControllerConfig {
    /// Calibrate the estimator prior from a SLURM failure census: the
    /// cache-killing classes (node-fail + timeout) over the observation
    /// window give the prior event rate, weighted lightly so live
    /// detector evidence dominates within a few windows.
    pub fn calibrated(census: &ftc_slurm::FailureCensus, observation: Duration) -> Self {
        let fails = (census.node_fail + census.timeout) as f64;
        let secs = observation.as_secs_f64().max(1.0);
        ControllerConfig {
            prior_rate: fails / secs,
            ..Default::default()
        }
    }
}

/// Online failure-rate estimator: exponentially-decayed event mass over
/// exponentially-decayed observation time, blended with a Gamma prior.
/// The posterior mean `(α₀ + events) / (β₀ + seconds)` starts at the
/// calibrated prior and converges to the observed rate as evidence
/// accumulates.
#[derive(Debug, Clone, Copy)]
struct RateEstimator {
    events: f64,
    seconds: f64,
    decay: f64,
    prior_rate: f64,
    prior_weight: f64,
}

impl RateEstimator {
    fn new(config: &ControllerConfig) -> Self {
        RateEstimator {
            events: 0.0,
            seconds: 0.0,
            decay: config.decay.as_secs_f64().max(1e-6),
            prior_rate: config.prior_rate.max(0.0),
            prior_weight: config.prior_weight.max(0.0),
        }
    }

    fn observe(&mut self, dt: Duration, events: f64) {
        let dts = dt.as_secs_f64();
        let a = (-dts / self.decay).exp();
        self.events = self.events * a + events;
        self.seconds = self.seconds * a + dts;
    }

    fn rate(&self) -> f64 {
        (self.prior_rate * self.prior_weight + self.events) / (self.prior_weight + self.seconds)
    }
}

/// Mutable controller state shared by the worker tick and the synchronous
/// [`PolicyController::set_policy`] override.
struct CtlState {
    est: RateEstimator,
    /// Shed-rate estimator for the brownout posture. Prior mass zero: a
    /// cluster that never shed anything has shed rate exactly 0.
    shed_est: RateEstimator,
    last_tick: Instant,
    last_suspects: u64,
    last_declares: u64,
    last_sheds: u64,
    cooldown_until: Option<Instant>,
}

/// Registry handles for the controller's exposition, captured once at
/// start when the client has an observability hub attached.
struct CtlObs {
    hub: Arc<ftc_obs::ObsHub>,
    actor: String,
    epoch: Arc<ftc_obs::Gauge>,
    proactive: Arc<ftc_obs::Gauge>,
    replication: Arc<ftc_obs::Gauge>,
    recache_rate: Arc<ftc_obs::Gauge>,
    failure_rate_milli: Arc<ftc_obs::Gauge>,
    switches: Arc<ftc_obs::Counter>,
    flaps_suppressed: Arc<ftc_obs::Counter>,
    brownout: Arc<ftc_obs::Gauge>,
}

enum CtlMsg {
    Stop,
}

/// The adaptive fault-tolerance controller: one per client, started via
/// [`HvacClient::enable_controller`].
pub struct PolicyController {
    config: ControllerConfig,
    clock: ClockHandle,
    client: Weak<HvacClient>,
    live: Arc<LivePolicy>,
    signals: Arc<PolicySignals>,
    state: Mutex<CtlState>,
    tx: ClockSender<CtlMsg>,
    worker: Mutex<Option<TaskHandle>>,
    /// Set by the worker as its first action; stop() reads it to detect a
    /// self-join (same pattern as the recovery engine).
    worker_thread: Arc<OnceLock<std::thread::ThreadId>>,
    switches: AtomicU64,
    flaps_suppressed: AtomicU64,
    brownout_entries: AtomicU64,
    brownout_exits: AtomicU64,
    obs: OnceLock<CtlObs>,
}

impl PolicyController {
    /// Spawn the controller for `client`. Installs the quiet-regime
    /// decision immediately (policy epoch 0 → 1), so a governed engine
    /// starts lazy and escalates only on evidence.
    pub(crate) fn start(
        client: &Arc<HvacClient>,
        config: ControllerConfig,
    ) -> Result<Arc<Self>, crate::error::CoreError> {
        let clock = client.clock().clone();
        let (tx, rx) = clock.channel::<CtlMsg>();
        let live = Arc::clone(client.live_policy());
        let signals = Arc::clone(client.policy_signals());
        let (s0, d0) = signals.totals();
        let sh0 = signals.sheds_total();
        let controller = Arc::new(PolicyController {
            state: Mutex::new(CtlState {
                est: RateEstimator::new(&config),
                shed_est: RateEstimator::new(&ControllerConfig {
                    prior_rate: 0.0,
                    ..config
                }),
                last_tick: clock.now(),
                last_suspects: s0,
                last_declares: d0,
                last_sheds: sh0,
                cooldown_until: None,
            }),
            config,
            client: Arc::downgrade(client),
            live,
            signals,
            tx,
            worker: Mutex::new(None),
            worker_thread: Arc::new(OnceLock::new()),
            switches: AtomicU64::new(0),
            flaps_suppressed: AtomicU64::new(0),
            brownout_entries: AtomicU64::new(0),
            brownout_exits: AtomicU64::new(0),
            obs: OnceLock::new(),
            clock,
        });
        if let Some(hub) = client.obs_hub() {
            let _ = controller.obs.set(CtlObs {
                actor: format!("controller:{}", client.node()),
                epoch: hub.registry.gauge("ftc_policy_epoch"),
                proactive: hub.registry.gauge("ftc_policy_proactive"),
                replication: hub.registry.gauge("ftc_policy_replication"),
                recache_rate: hub.registry.gauge("ftc_policy_recache_rate"),
                failure_rate_milli: hub.registry.gauge("ftc_policy_failure_rate_milli"),
                switches: hub.registry.counter("ftc_policy_switches_total"),
                flaps_suppressed: hub.registry.counter("ftc_policy_flap_suppressed_total"),
                brownout: hub.registry.gauge("ftc_policy_brownout"),
                hub,
            });
        }
        // Boot transition: adopt the quiet regime silently (no switch
        // counter, no cooldown) so the governed engine starts lazy.
        controller.live.install(&controller.config.quiet);
        controller.push_gauges(controller.config.prior_rate);
        let weak = Arc::downgrade(&controller);
        let wt = Arc::clone(&controller.worker_thread);
        let tick = controller.config.tick;
        let join = controller
            .clock
            .spawn(&format!("ftc-policy-{}", client.node()), move || {
                let _ = wt.set(std::thread::current().id());
                loop {
                    match rx.recv_timeout(tick) {
                        Ok(CtlMsg::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                    let Some(ctl) = weak.upgrade() else { break };
                    if !ctl.tick() {
                        break;
                    }
                }
            })
            .map_err(|source| crate::error::CoreError::Spawn {
                what: "policy controller",
                node: client.node(),
                source,
            })?;
        *controller.worker.lock() = Some(join);
        Ok(controller)
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The shared live policy this controller governs.
    pub fn live(&self) -> &Arc<LivePolicy> {
        &self.live
    }

    /// Installed switches so far (boot install excluded).
    pub fn switches(&self) -> u64 {
        // ordering: Relaxed — monotone counter, read for reporting.
        self.switches.load(Ordering::Relaxed)
    }

    /// Switch attempts suppressed by the cooldown window.
    pub fn flaps_suppressed(&self) -> u64 {
        // ordering: Relaxed — monotone counter, read for reporting.
        self.flaps_suppressed.load(Ordering::Relaxed)
    }

    /// Brownout postures entered / exited so far.
    pub fn brownout_transitions(&self) -> (u64, u64) {
        // ordering: Relaxed — monotone counters, read for reporting.
        (
            self.brownout_entries.load(Ordering::Relaxed),
            self.brownout_exits.load(Ordering::Relaxed),
        )
    }

    /// The shed-rate posterior, shed replies/second.
    pub fn shed_rate(&self) -> f64 {
        self.state.lock().shed_est.rate()
    }

    /// The estimator's current failure-rate posterior, events/second.
    pub fn failure_rate(&self) -> f64 {
        self.state.lock().est.rate()
    }

    /// Install `d` now, epoch-fenced like an automatic switch but
    /// bypassing the estimator and the cooldown (the override *resets*
    /// the cooldown, so automatic switching stays quiet afterwards).
    pub fn set_policy(&self, d: PolicyDecision) {
        let Some(cli) = self.client.upgrade() else {
            return;
        };
        let now = self.clock.now();
        self.state.lock().cooldown_until = Some(now + self.config.cooldown);
        self.apply(&cli, &d);
    }

    /// One estimator/decision step. Returns false when the client is
    /// gone and the worker should exit.
    fn tick(&self) -> bool {
        let Some(cli) = self.client.upgrade() else {
            return false;
        };
        let now = self.clock.now();
        let (suspects, declares) = self.signals.totals();
        let sheds = self.signals.sheds_total();
        let (rate, shed_rate, decision, in_cooldown) = {
            let mut st = self.state.lock();
            let dt = now.saturating_duration_since(st.last_tick);
            st.last_tick = now;
            // Declares are the calibrated event class; suspects are
            // weighted low as leading evidence.
            let events =
                (declares - st.last_declares) as f64 + 0.25 * (suspects - st.last_suspects) as f64;
            st.last_suspects = suspects;
            st.last_declares = declares;
            st.est.observe(dt, events);
            let shed_events = (sheds - st.last_sheds) as f64;
            st.shed_est.observe(dt, shed_events);
            st.last_sheds = sheds;
            let rate = st.est.rate();
            let shed_rate = st.shed_est.rate();
            let proactive = self.live.proactive();
            let desired = if self.config.sabotage_flap {
                // Forced oscillation: want the opposite posture every
                // tick, so the cooldown's suppression is exercised.
                Some(if proactive {
                    self.config.quiet
                } else {
                    self.config.burst
                })
            } else if rate >= self.config.escalate && !proactive {
                Some(self.config.burst)
            } else if rate <= self.config.deescalate && proactive {
                Some(self.config.quiet)
            } else {
                None
            };
            let in_cooldown = st.cooldown_until.is_some_and(|until| now < until);
            if desired.is_some() && !in_cooldown {
                st.cooldown_until = Some(now + self.config.cooldown);
            }
            (rate, shed_rate, desired, in_cooldown)
        };
        match decision {
            Some(d) if !in_cooldown => self.apply(&cli, &d),
            Some(_) => {
                // ordering: Relaxed — monotone counter.
                self.flaps_suppressed.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = self.obs.get() {
                    o.flaps_suppressed.inc();
                }
            }
            None => {}
        }
        // Brownout: its own hysteresis band, deliberately outside the
        // switch cooldown — load posture must track the surge, not the
        // recovery-policy pacing. shed_enter = 0 disables it entirely.
        if self.config.shed_enter > 0.0 {
            let in_brownout = self.live.brownout();
            if shed_rate >= self.config.shed_enter && !in_brownout {
                self.flip_brownout(&cli, true, shed_rate);
            } else if shed_rate <= self.config.shed_exit && in_brownout {
                self.flip_brownout(&cli, false, shed_rate);
            }
        }
        self.push_gauges(rate);
        true
    }

    /// Enter or exit brownout: flip the live flag (epoch-fenced), count
    /// the transition, and stamp every observability surface.
    fn flip_brownout(&self, cli: &HvacClient, on: bool, shed_rate: f64) {
        let (old_epoch, new_epoch) = self.live.set_brownout(on);
        let counter = if on {
            &self.brownout_entries
        } else {
            &self.brownout_exits
        };
        // ordering: Relaxed — monotone counter.
        counter.fetch_add(1, Ordering::Relaxed);
        cli.trace_policy_change(old_epoch, new_epoch);
        if let Some(o) = self.obs.get() {
            o.hub.timeline.mark_policy_changed(old_epoch, new_epoch);
            o.hub.flight.record(
                &o.actor,
                "brownout",
                format!(
                    "{} at {shed_rate:.1} sheds/s (epoch {old_epoch}->{new_epoch})",
                    if on { "enter" } else { "exit" }
                ),
            );
        }
    }

    /// Install a decision: bump the policy epoch, retune the recovery
    /// engine, and stamp the switch on every observability surface.
    fn apply(&self, cli: &HvacClient, d: &PolicyDecision) {
        let (old_epoch, new_epoch) = self.live.install(d);
        if let Some(engine) = cli.recovery() {
            engine.set_recache_rate(d.recache_rate);
        }
        // ordering: Relaxed — monotone counter.
        self.switches.fetch_add(1, Ordering::Relaxed);
        cli.trace_policy_change(old_epoch, new_epoch);
        if let Some(o) = self.obs.get() {
            o.switches.inc();
            o.hub.timeline.mark_policy_changed(old_epoch, new_epoch);
            o.hub.flight.record(
                &o.actor,
                "policy_change",
                format!(
                    "epoch {old_epoch}->{new_epoch} proactive={} rf={} rate={}",
                    d.proactive, d.replication, d.recache_rate
                ),
            );
        }
    }

    fn push_gauges(&self, rate: f64) {
        if let Some(o) = self.obs.get() {
            o.epoch.set(self.live.epoch() as i64);
            o.proactive.set(i64::from(self.live.proactive()));
            o.replication.set(i64::from(self.live.replication()));
            o.recache_rate.set(self.live.recache_rate() as i64);
            o.failure_rate_milli.set((rate * 1e3) as i64);
            o.brownout.set(i64::from(self.live.brownout()));
        }
    }

    /// Stop the worker. Safe to call twice; safe to call from the worker
    /// thread itself (detaches instead of self-joining).
    pub fn stop(&self) {
        let _ = self.tx.send(CtlMsg::Stop);
        if self.worker_thread.get() == Some(&std::thread::current().id()) {
            return;
        }
        if let Some(j) = self.worker.lock().take() {
            let _ = j.join();
        }
    }
}

impl Drop for PolicyController {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for PolicyController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyController")
            .field("epoch", &self.live.epoch())
            .field("proactive", &self.live.proactive())
            .field("switches", &self.switches())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControllerConfig {
        ControllerConfig::default()
    }

    #[test]
    fn live_policy_install_bumps_epoch_and_knobs() {
        let live = LivePolicy::new(1, 100.0);
        assert_eq!(live.epoch(), 0);
        assert!(live.proactive(), "ungoverned default is proactive");
        let d = PolicyDecision {
            proactive: false,
            replication: 3,
            recache_rate: 250.0,
        };
        assert_eq!(live.install(&d), (0, 1));
        assert_eq!(live.epoch(), 1);
        assert_eq!(live.replication(), 3);
        assert!(!live.proactive());
        assert_eq!(live.recache_rate(), 250.0);
    }

    #[test]
    fn replication_floor_is_one() {
        let live = LivePolicy::new(0, 1.0);
        assert_eq!(live.replication(), 1);
    }

    #[test]
    fn estimator_starts_at_prior_and_tracks_evidence() {
        let mut c = cfg();
        c.prior_rate = 0.2;
        c.prior_weight = 1.0;
        let mut est = RateEstimator::new(&c);
        assert!((est.rate() - 0.2).abs() < 1e-9, "no evidence → prior");
        // 10 seconds with one event per second swamps the prior.
        for _ in 0..10 {
            est.observe(Duration::from_secs(1), 1.0);
        }
        let r = est.rate();
        assert!(r > 0.5, "evidence dominates: {r}");
        // A long silent stretch decays back toward the prior.
        for _ in 0..100 {
            est.observe(Duration::from_secs(1), 0.0);
        }
        assert!(est.rate() < 0.25, "decay forgets old bursts");
    }

    #[test]
    fn calibrated_prior_uses_cache_killing_classes() {
        let census = ftc_slurm::FailureCensus {
            total_jobs: 1000,
            total_failures: 300,
            node_fail: 100,
            timeout: 80,
            job_fail: 120,
        };
        let c = ControllerConfig::calibrated(&census, Duration::from_secs(180));
        assert!((c.prior_rate - 1.0).abs() < 1e-9, "{}", c.prior_rate);
        // Job-fail is excluded: it does not kill cache nodes.
        assert!(c.prior_rate < (300.0 / 180.0));
    }

    #[test]
    fn signals_accumulate() {
        let s = PolicySignals::default();
        s.note_suspect();
        s.note_suspect();
        s.note_declare();
        assert_eq!(s.totals(), (2, 1));
        assert_eq!(s.sheds_total(), 0);
        s.note_shed();
        s.note_shed();
        s.note_shed();
        assert_eq!(s.sheds_total(), 3);
        assert_eq!(s.totals(), (2, 1), "sheds are tallied separately");
    }

    #[test]
    fn brownout_flag_roundtrips_and_bumps_epoch() {
        let live = LivePolicy::new(1, 100.0);
        assert!(!live.brownout(), "boots clear");
        assert_eq!(live.set_brownout(true), (0, 1));
        assert!(live.brownout());
        assert_eq!(live.set_brownout(false), (1, 2));
        assert!(!live.brownout());
    }

    #[test]
    fn default_config_disables_brownout() {
        let c = cfg();
        assert_eq!(c.shed_enter, 0.0, "brownout is opt-in");
        assert_eq!(c.shed_exit, 0.0);
    }
}
